"""EXP-APPS — the domain applications under failure, quantified.

The paper argues its ring lessons generalize ("a common set of issues
that application developers must address ... regardless of their research
domain").  These rows measure the three bundled applications with and
without failures:

* heat diffusion: accuracy degradation (L2 error vs the failure-free
  reference on surviving subdomains) as ranks die;
* ring allreduce: contributor shrinkage and agreement;
* manager/worker: completion and reassignment cost as workers die.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.apps import (
    AbftConfig,
    AllreduceConfig,
    FarmConfig,
    HeatConfig,
    expected_results,
    expected_sum,
    make_abft_main,
    make_allreduce_main,
    make_farm_mains,
    make_heat_main,
    reference_result,
)
from repro.faults import KillAtProbe, KillAtTime
from repro.simmpi import Simulation, greenlet_available, resolve_backend
from conftest import emit, timed

N = 6


def _heat_fields(result) -> dict[int, np.ndarray]:
    return {
        i: np.array(result.value(i)["field"]) for i in result.completed_ranks
    }


def _bench_heat_degradation(benchmark, fibers: str) -> None:
    """Handoff-heavy end-to-end series (halo exchanges every step),
    runnable on either fiber backend — the application tables must be
    identical; only wall time may differ."""
    cfg = HeatConfig(cells_per_rank=8, steps=20)
    rows = []

    def run_all():
        rows.clear()
        ref = Simulation(nprocs=N, fibers=fibers).run(make_heat_main(cfg))
        ref_fields = _heat_fields(ref)
        for kills in ([], [(2, 8.5e-6)], [(2, 8.5e-6), (4, 14.5e-6)]):
            sim = Simulation(nprocs=N, fibers=fibers)
            for rank, t in kills:
                sim.kill(rank, at_time=t)
            r = sim.run(make_heat_main(cfg), on_deadlock="return")
            fields = _heat_fields(r)
            err = 0.0
            for i, f in fields.items():
                err += float(np.sum((f - ref_fields[i]) ** 2))
            err = float(np.sqrt(err))
            rows.append([len(kills), not r.hung, len(fields), err])
        return rows

    timed(benchmark, run_all, fibers=fibers)
    emit(
        "Heat diffusion: survivors' L2 deviation from failure-free "
        f"reference ({fibers} fibers)",
        ascii_table(
            ["failures", "ran through", "survivors", "L2 error"], rows
        ),
    )
    assert rows[0][3] == 0.0  # no failure, no deviation
    assert rows[1][3] > 0.0   # degraded, not destroyed
    assert all(through for _f, through, _s, _e in rows)
    assert rows[1][3] <= rows[2][3] + 1e-9  # more failures, no less error


def bench_apps_heat_degradation(benchmark):
    _bench_heat_degradation(benchmark, resolve_backend(None))


def bench_apps_heat_degradation_threaded(benchmark):
    _bench_heat_degradation(benchmark, "thread")


def bench_apps_heat_degradation_greenlet(benchmark):
    if not greenlet_available():
        pytest.skip("greenlet not installed (pip install repro[fast])")
    _bench_heat_degradation(benchmark, "greenlet")


def bench_apps_allreduce_contributors(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for nfail in (0, 1, 2):
            cfg = AllreduceConfig(vector_len=8)
            sim = Simulation(nprocs=N)
            injectors = [
                KillAtProbe(rank=2 + j, probe="post_recv", hit=1)
                for j in range(nfail)
            ]
            for inj in injectors:
                sim.add_injector(inj)
            r = sim.run(make_allreduce_main(cfg), on_deadlock="return")
            recs = [r.value(i)["allreduce"][0] for i in r.completed_ranks]
            contributors = recs[0]["contributors"]
            agreed = all(rec["sum"] == recs[0]["sum"] for rec in recs)
            correct = recs[0]["sum"] == expected_sum(contributors, 8)
            rows.append([nfail, not r.hung, len(contributors), agreed,
                         correct])
        return rows

    timed(benchmark, run_all)
    emit(
        "FT ring allreduce: contributors and agreement vs failures",
        ascii_table(
            ["failures", "ran through", "contributors", "survivors agree",
             "sum matches contributors"],
            rows,
        ),
    )
    assert all(through and agreed and correct
               for _f, through, _c, agreed, correct in rows)
    assert [c for _f, _t, c, _a, _co in rows] == [N, N - 1, N - 2]


def bench_apps_abft_recovery(benchmark):
    rows = []
    cfg = AbftConfig(iterations=5)
    nprocs = 5  # 4 compute + 1 parity

    def _exact(r) -> bool:
        rep = r.value(min(r.completed_ranks))
        for it in range(cfg.iterations):
            ref = reference_result(cfg, nprocs, it)
            got = rep["results"][it]["blocks"]
            if not all(
                k in got and np.allclose(got[k], ref[k]) for k in ref
            ):
                return False
        return True

    def run_all():
        rows.clear()
        scenarios = [
            ("failure-free", []),
            ("1 compute dies", [KillAtProbe(rank=2, probe="computed", hit=3)]),
            ("parity dies", [KillAtProbe(rank=4, probe="computed", hit=3)]),
            ("2 compute die", [
                KillAtProbe(rank=1, probe="computed", hit=3),
                KillAtProbe(rank=2, probe="computed", hit=3),
            ]),
        ]
        for name, injectors in scenarios:
            sim = Simulation(nprocs=nprocs)
            for inj in injectors:
                sim.add_injector(inj)
            r = sim.run(make_abft_main(cfg), on_deadlock="return")
            rep = r.value(min(r.completed_ranks))
            rows.append([name, not r.hung, _exact(r), rep["recoveries"],
                         rep["degraded"]])
        return rows

    timed(benchmark, run_all)
    emit(
        "ABFT matvec: parity recovery vs failure scenarios (4+1 ranks)",
        ascii_table(
            ["scenario", "ran through", "all blocks exact", "recoveries",
             "degraded"],
            rows,
        ),
    )
    by = {row[0]: row for row in rows}
    assert by["failure-free"][2] and by["failure-free"][3] == 0
    assert by["1 compute dies"][2] and by["1 compute dies"][3] >= 1
    assert by["parity dies"][2]          # data intact, redundancy gone
    assert by["2 compute die"][4]        # beyond the code's strength


def bench_apps_farm_reassignment(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for nfail in (0, 1, 2):
            cfg = FarmConfig(num_tasks=18, work_per_task=1e-6)
            sim = Simulation(nprocs=N)
            for j in range(nfail):
                sim.add_injector(
                    KillAtProbe(rank=1 + j, probe="task_computed", hit=2)
                )
            r = sim.run(make_farm_mains(cfg, N), on_deadlock="return")
            rep = r.value(0)
            rows.append([
                nfail, not r.hung,
                rep["results"] == expected_results(cfg),
                rep["reassignments"], r.final_time,
            ])
        return rows

    timed(benchmark, run_all)
    emit(
        "Manager/worker farm: completeness and reassignments vs failures",
        ascii_table(
            ["worker deaths", "ran through", "all tasks correct",
             "reassignments", "virt time"],
            rows,
        ),
    )
    assert all(through and correct for _f, through, correct, _r, _t in rows)
    # Losing workers costs time, never answers.
    assert rows[-1][4] >= rows[0][4]
