"""EXP-VAL — cost and resilience of the ``MPI_Comm_validate_all`` consensus.

Characterizes the FloodSet agreement behind the collective validate:

* message cost vs communicator size, full vs early-deciding mode (the
  ablation DESIGN.md calls out);
* resilience: agreement and termination with up to n-1 ranks dying
  *during* the protocol;
* monotone count: successive validates report the accumulated total,
  per the paper's "total number of failures" contract.

The size/mode and failure-count sweeps are independent simulations, so
they run as picklable job batches on the :mod:`repro.parallel` sweep
engine (serial by default; ``REPRO_BENCH_WORKERS=N`` fans them out).
Each job reduces its run to one table row inside the worker — traces
never cross the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_table
from repro.ft import comm_validate_all
from repro.simmpi import ErrorHandler, Simulation, TraceKind
from conftest import emit, sweep_runner, timed

SIZES = [2, 4, 8, 16]


def _validate_run(n: int, mode: str, kills=()):
    def main(mpi):
        comm = mpi.comm_world
        comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
        if kills and comm.rank in {k for k, _ in kills}:
            mpi.compute(1.0)
            return
        return comm_validate_all(comm, mode=mode)

    sim = Simulation(nprocs=n)
    for rank, t in kills:
        sim.kill(rank, at_time=t)
    return sim.run(main, on_deadlock="return")


@dataclass(frozen=True)
class MessageCostJob:
    """One failure-free validate: reduce to a (n, mode, msgs, time) row."""

    n: int
    mode: str

    def __call__(self):
        r = _validate_run(self.n, self.mode)
        msgs = len(r.trace.filter(kind=TraceKind.SEND_POST))
        return [self.n, self.mode, msgs, r.final_time]


@dataclass(frozen=True)
class ResilienceJob:
    """Validate with ranks dying mid-protocol: reduce to one row."""

    n: int
    nfail: int
    mode: str

    def __call__(self):
        kills = [(i, 1e-7 * (i + 1)) for i in range(1, 1 + self.nfail)]
        r = _validate_run(self.n, self.mode, kills=kills)
        counts = {v for v in r.values().values() if v is not None}
        return [self.n, self.nfail, self.mode, not r.hung,
                len(counts) <= 1, sorted(counts)]


def bench_validate_message_cost(benchmark):
    rows = []
    runner = sweep_runner()
    jobs = [MessageCostJob(n, mode)
            for n in SIZES for mode in ("full", "early")]

    def run_all():
        rows.clear()
        rows.extend(runner.run(jobs))
        return rows

    timed(benchmark, run_all)
    emit(
        "validate_all consensus cost, failure-free",
        ascii_table(["ranks", "mode", "messages", "virt time"], rows),
    )
    by = {}
    for n, mode, msgs, _t in rows:
        by.setdefault(n, {})[mode] = msgs
    for n, d in by.items():
        if n >= 4:
            # Early stopping decides after ~2 stable rounds instead of n.
            assert d["early"] < d["full"]


def bench_validate_resilience(benchmark):
    rows = []
    runner = sweep_runner()
    jobs = [ResilienceJob(6, nfail, mode)
            for nfail in (1, 2, 3, 5) for mode in ("full", "early")]

    def run_all():
        rows.clear()
        rows.extend(runner.run(jobs))
        return rows

    timed(benchmark, run_all)
    emit(
        "validate_all with ranks dying mid-protocol (n=6)",
        ascii_table(
            ["ranks", "dying", "mode", "terminated", "survivors agree",
             "agreed count"],
            rows,
        ),
    )
    assert all(term and agree for _n, _f, _m, term, agree, _c in rows)


def bench_validate_accumulates(benchmark):
    def run():
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            if comm.rank == 2:
                mpi.compute(3.0)
                return
            mpi.compute(2.0)
            first = comm_validate_all(comm)
            mpi.compute(2.0)
            second = comm_validate_all(comm)
            return (first, second)

        sim = Simulation(nprocs=5)
        sim.kill(1, at_time=0.5)
        sim.kill(2, at_time=2.5)
        return sim.run(main, on_deadlock="return")

    r = timed(benchmark, run)
    emit(
        "validate_all total-failure accounting",
        f"rank0 saw counts {r.value(0)} across two validates "
        f"(failures at t=0.5 and t=2.5)",
    )
    assert r.value(0) == (1, 2)
