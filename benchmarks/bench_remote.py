"""EXP-REMOTE — distributed dispatch overhead vs the in-process pool.

The distributed transport's promise is that moving sweep chunks over a
socket instead of a ``ProcessPoolExecutor`` pipe costs, at worst, a
modest constant factor — the simulations dominate and the wire carries
only compressed job/outcome pickles.  Two series pin that on loopback:

* ``bench_campaign_pool`` — a one-worker in-process pool (the fairest
  local analogue of a one-worker fleet: same chunking, same
  submission-order merge, one process executing);
* ``bench_campaign_remote_loopback`` — the same campaign through a
  ``repro worker serve`` subprocess on 127.0.0.1; the bench asserts the
  reports are byte-identical and that loopback dispatch costs at most
  ``OVERHEAD_CEILING`` of the pool (it is usually *cheaper*: the worker
  is already warm, while the pool forks fresh processes per sweep).

Both series land in ``BENCH_simperf.json``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import ascii_table
from repro.faults import run_campaign
from repro.obs.spans import SpanRecorder, recording
from repro.parallel import (
    ProcessPoolRunner,
    RemoteRunner,
    RingScenario,
    StandardRingInvariants,
)
from conftest import _PERF, emit, timed

N = 4
ITERS = 3
RUNS = 80
SCENARIO = RingScenario(nprocs=N, iters=ITERS)
INVARIANTS = StandardRingInvariants(ITERS, N)
#: Loopback socket dispatch may not cost more than this over the pool.
OVERHEAD_CEILING = 1.5
#: With no recorder installed the span hooks must be free: the spans-off
#: campaign may not cost more than this over the plain loopback series.
SPANS_DISABLED_CEILING = 1.05

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def worker_addr():
    """One warm ``repro worker serve`` subprocess on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve",
         "--bind", "127.0.0.1:0"],
        cwd=REPO_ROOT,
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stderr.readline()
    assert "listening on" in line, f"worker failed to start: {line!r}"
    hostport = line.split("listening on ")[1].split()[0]
    host, port = hostport.rsplit(":", 1)
    yield (host, int(port))
    proc.terminate()
    proc.stderr.close()
    proc.wait(timeout=10)


def _campaign(runner):
    return run_campaign(
        SCENARIO,
        seeds=range(RUNS),
        horizon=2e-5,
        invariants=INVARIANTS,
        runner=runner,
    )


def bench_campaign_pool(benchmark):
    reports = []
    timed(
        benchmark,
        lambda: reports.append(_campaign(ProcessPoolRunner(workers=1))),
    )
    s = reports[-1].summary()
    emit(
        f"campaign via one-worker pool ({RUNS} runs, fig2 ring n={N})",
        ascii_table(
            ["runs", "ok", "hangs", "violations", "aborts"],
            [[s["runs"], s["ok"], s["hangs"], s["violations"], s["aborts"]]],
        ),
    )
    assert s["runs"] == RUNS


def bench_campaign_remote_loopback(benchmark, worker_addr):
    reports = []
    runners = []

    def once():
        runner = RemoteRunner(addresses=[worker_addr])
        runners.append(runner)
        reports.append(_campaign(runner))

    timed(benchmark, once)
    remote = reports[-1]
    assert remote.format() == _campaign(ProcessPoolRunner(workers=1)).format()

    remote_s = min(_PERF["bench_campaign_remote_loopback"])
    stats = runners[-1].worker_stats()[0]
    rows = [["remote (loopback)", f"{remote_s:.4f}", "-"]]
    pool_series = _PERF.get("bench_campaign_pool")
    if pool_series:
        pool_s = min(pool_series)
        ratio = remote_s / pool_s if pool_s > 0 else float("inf")
        rows.insert(0, ["pool (1 worker)", f"{pool_s:.4f}", "-"])
        rows[-1][-1] = f"{ratio:.2f}x"
        assert ratio <= OVERHEAD_CEILING, (
            f"loopback dispatch cost {ratio:.2f}x the in-process pool "
            f"(ceiling: {OVERHEAD_CEILING}x)"
        )
    emit(
        "campaign, remote loopback (same runs over the socket transport)",
        ascii_table(["mode", "min wall s", "overhead"], rows),
    )
    emit(
        "remote transport wire profile (one sweep)",
        ascii_table(
            ["chunks", "jobs", "wire bytes", "compression"],
            [[
                stats["chunks"],
                stats["jobs"],
                stats["bytes_out"] + stats["bytes_in"],
                f"{stats['compression']}x",
            ]],
        ),
    )


def bench_campaign_remote_spans(benchmark, worker_addr):
    """The same loopback campaign with span recording off vs on.

    Each round interleaves three passes — a plain reference campaign,
    the spans-*off* path (hooks compiled in, no recorder installed),
    and the spans-*on* path (a :class:`SpanRecorder` active, worker
    spans shipped back in every done frame).  Interleaving keeps the
    comparison warmth-matched: cross-bench mins drift far more than the
    hooks cost.  The spans-off and spans-on wall times land as their
    own ``BENCH_simperf.json`` series (so the *trajectory* of the
    disabled path is pinned across commits), and the bench asserts
    in-bench that the disabled path stays within
    ``SPANS_DISABLED_CEILING`` of the reference pass: tracing must be
    opt-in and free when off.
    """
    walls: dict[str, list[float]] = {"plain": [], "off": [], "on": []}

    def one_pass(label):
        runner = RemoteRunner(addresses=[worker_addr])
        t0 = time.perf_counter()
        if label == "on":
            recorder = SpanRecorder(kind="campaign")
            with recording(recorder):
                report = _campaign(runner)
            wall = time.perf_counter() - t0
            jobs = sum(
                1 for s in recorder.export_raw() if s.get("cat") == "job"
            )
            assert jobs == RUNS
        else:
            report = _campaign(runner)
            wall = time.perf_counter() - t0
        walls[label].append(wall)
        assert report.summary()["runs"] == RUNS

    def once():
        for label in ("plain", "off", "on"):
            one_pass(label)

    timed(benchmark, once)
    plain_s = min(walls["plain"])
    off_s, on_s = min(walls["off"]), min(walls["on"])
    _PERF.setdefault("bench_campaign_remote_spans_off", []).extend(
        walls["off"]
    )
    _PERF.setdefault("bench_campaign_remote_spans_on", []).extend(
        walls["on"]
    )
    disabled = off_s / plain_s if plain_s > 0 else float("inf")
    enabled = on_s / off_s if off_s > 0 else float("inf")
    emit(
        "campaign, remote loopback: span recording overhead",
        ascii_table(
            ["mode", "min wall s", "vs reference"],
            [
                ["reference (no recorder)", f"{plain_s:.4f}", "-"],
                ["spans off", f"{off_s:.4f}", f"{disabled:.2f}x"],
                ["spans on", f"{on_s:.4f}", f"{enabled:.2f}x vs off"],
            ],
        ),
    )
    assert disabled <= SPANS_DISABLED_CEILING, (
        f"spans-off campaign cost {disabled:.2f}x the interleaved "
        f"reference pass (ceiling: {SPANS_DISABLED_CEILING}x) — the "
        f"disabled span path is supposed to be free"
    )
