"""Shared helpers for the benchmark harness.

Each ``bench_figN_*.py`` regenerates one figure of the paper: it runs the
corresponding scenario(s), prints the rows/series as an ASCII table (these
tables are embedded in EXPERIMENTS.md), asserts the *shape* the paper
reports, and times the simulation through pytest-benchmark.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import pytest

from repro.core import RingConfig, make_ring_main, make_rootft_main
from repro.simmpi import Simulation, SimulationResult


def run_ring_scenario(
    cfg: RingConfig,
    nprocs: int,
    *,
    injectors: Sequence[Any] = (),
    rootft: bool = False,
    detection_latency: float = 0.0,
    seed: int = 0,
) -> SimulationResult:
    """Build and run one ring simulation (deadlocks reported, not raised)."""
    sim = Simulation(
        nprocs=nprocs, seed=seed, detection_latency=detection_latency
    )
    for inj in injectors:
        sim.add_injector(inj)
    main = make_rootft_main(cfg) if rootft else make_ring_main(cfg)
    return sim.run(main, on_deadlock="return")


def timed(benchmark: Any, fn: Callable[[], Any]) -> Any:
    """Run *fn* under pytest-benchmark with a small fixed round count.

    The simulations are deterministic, so a handful of rounds measures
    harness wall-time without wasting the suite's budget.
    """
    return benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)


def emit(title: str, body: str) -> None:
    """Print a table block (captured into bench_output.txt by the runner)."""
    print(f"\n=== {title} ===\n{body}")
