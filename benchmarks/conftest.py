"""Shared helpers for the benchmark harness.

Each ``bench_figN_*.py`` regenerates one figure of the paper: it runs the
corresponding scenario(s), prints the rows/series as an ASCII table (these
tables are embedded in EXPERIMENTS.md), asserts the *shape* the paper
reports, and times the simulation through pytest-benchmark.

Two cross-cutting services live here:

* **sweep fan-out** — :func:`sweep_runner` gives every sweep-style bench
  a :class:`repro.parallel.SweepRunner`.  Serial by default (CI-friendly
  on small machines); set ``REPRO_BENCH_WORKERS=N`` to fan the
  independent simulations of each sweep across ``N`` worker processes.
  The tables are identical either way — only wall time changes.
* **perf trajectory** — every series timed through :func:`timed` also
  lands in ``benchmarks/BENCH_simperf.json`` (series name → mean/min
  wall seconds and throughput) so future changes can be compared against
  a machine-readable baseline, not just the human tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Sequence

import pytest

from repro.core import RingConfig, make_ring_main, make_rootft_main
from repro.parallel import SweepRunner, make_runner
from repro.perf import CACHE, SESSION
from repro.simmpi import Simulation, SimulationResult, resolve_backend

#: series name -> list of observed wall-clock durations (seconds).
_PERF: dict[str, list[float]] = {}

#: series name -> kernel counter delta of the series' best (last) round.
_COUNTERS: dict[str, dict[str, Any]] = {}

_PERF_PATH = Path(__file__).resolve().parent / "BENCH_simperf.json"


def sweep_runner() -> SweepRunner:
    """The runner sweep-style benches execute their job batches on.

    ``REPRO_BENCH_WORKERS`` (default ``1`` → serial, in-process) selects
    the process-pool fan-out width.  Results are merged in submission
    order, so tables and assertions never depend on the setting.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    return make_runner(workers)


def run_ring_scenario(
    cfg: RingConfig,
    nprocs: int,
    *,
    injectors: Sequence[Any] = (),
    rootft: bool = False,
    detection_latency: float = 0.0,
    seed: int = 0,
    trace: bool = True,
) -> SimulationResult:
    """Build and run one ring simulation (deadlocks reported, not raised).

    ``trace=False`` uses the kernel's zero-cost disabled-trace path —
    for benches that classify by result fields only and never read
    ``result.trace``.
    """
    sim = Simulation(
        nprocs=nprocs, seed=seed, detection_latency=detection_latency,
        trace_enabled=trace,
    )
    for inj in injectors:
        sim.add_injector(inj)
    main = make_rootft_main(cfg) if rootft else make_ring_main(cfg)
    return sim.run(main, on_deadlock="return")


def _series_name() -> str:
    """Name of the currently executing bench (from pytest's env marker)."""
    current = os.environ.get("PYTEST_CURRENT_TEST", "unknown")
    # "benchmarks/bench_x.py::bench_name (call)" -> "bench_name"
    return current.split("::")[-1].split(" ")[0]


def timed(
    benchmark: Any, fn: Callable[[], Any], *, fibers: str | None = None
) -> Any:
    """Run *fn* under pytest-benchmark with a small fixed round count.

    The simulations are deterministic, so a handful of rounds measures
    harness wall-time without wasting the suite's budget.  Durations are
    also recorded for the ``BENCH_simperf.json`` perf trajectory, along
    with the kernel counter deltas (handoffs, events, matches — see
    :class:`repro.perf.PerfCounters`) observed across one round: the
    counters explain *why* a wall time moved (e.g. the same time with
    fewer handoffs means per-handoff cost went up).

    Every series is stamped with the fiber backend it ran on (*fibers*,
    or the process default when not given) — ``repro bench-diff``
    refuses to compare series recorded under different backends, since
    the handoff mechanism dominates kernel wall time.
    """
    name = _series_name()
    durations = _PERF.setdefault(name, [])
    backend = fibers if fibers is not None else resolve_backend(None)

    def instrumented() -> Any:
        before = SESSION.snapshot()
        cache_before = CACHE.snapshot()
        t0 = time.perf_counter()
        out = fn()
        durations.append(time.perf_counter() - t0)
        # Deterministic runs: every round's counters are identical, so
        # keeping the last round's delta loses nothing.
        counters = SESSION.delta(before)
        counters["fibers"] = backend
        # Run-cache traffic rides along (prefixed, only when nonzero) so
        # cold/warm series in BENCH_simperf.json are self-describing.
        counters.update(
            (f"cache_{k}", v)
            for k, v in CACHE.delta(cache_before).items()
            if v
        )
        _COUNTERS[name] = counters
        return out

    return benchmark.pedantic(instrumented, rounds=3, iterations=1,
                              warmup_rounds=1)


def emit(title: str, body: str) -> None:
    """Print a table block (captured into bench_output.txt by the runner)."""
    print(f"\n=== {title} ===\n{body}")


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Write the machine-readable perf summary for the series that ran."""
    if not _PERF:
        return
    summary: dict[str, Any] = {}
    if _PERF_PATH.exists():  # partial runs update, not clobber, the file
        try:
            summary = json.loads(_PERF_PATH.read_text())
        except (OSError, ValueError):
            summary = {}
    updated = False
    for name, durations in sorted(_PERF.items()):
        if not durations:
            continue
        mean = sum(durations) / len(durations)
        summary[name] = {
            "mean_wall_s": mean,
            "min_wall_s": min(durations),
            "rounds": len(durations),
            "throughput_per_s": (1.0 / mean) if mean > 0 else None,
        }
        counters = _COUNTERS.get(name)
        if counters is not None:
            # Per-series kernel counters (one round's delta); wall_s here
            # is kernel-loop time, a subset of the harness wall time.
            summary[name]["counters"] = {
                k: round(v, 6) if isinstance(v, float) else v
                for k, v in counters.items()
            }
        updated = True
    if updated:
        _PERF_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True)
                              + "\n")
