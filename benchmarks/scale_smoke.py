"""Campaign-scale smoke: streamed memory is independent of campaign size.

The streaming pipeline's claim (``docs/performance.md``) is that
``run_campaign(..., stream=True)`` holds a bounded window of jobs and
results no matter how many seeds the campaign samples.  This driver
pins it the only way that is honest: run two streamed campaigns that
differ 10x in size, *each in a fresh child process* (peak RSS is
monotone within a process), and assert the larger one's peak RSS is
within a small tolerance of the smaller one's.  A materialized campaign
fails this immediately — its job and run lists grow linearly.

CI runs it as the ``campaign-scale`` job::

    python benchmarks/scale_smoke.py --small 10000 --large 100000

Exit status 0 iff both campaigns completed every run and the RSS ratio
stays under the ceiling.  ``--child N`` is the internal re-entry point.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys


def child(runs: int, nprocs: int, iters: int) -> None:
    """Run one streamed campaign and report summary + peak RSS as JSON."""
    from repro.faults import run_campaign
    from repro.parallel import RingScenario, StandardRingInvariants

    summary = run_campaign(
        RingScenario(nprocs=nprocs, iters=iters),
        seeds=range(runs),
        horizon=2e-5,
        invariants=StandardRingInvariants(iters, nprocs),
        stream=True,
    ).summary()
    summary["peak_rss_kb"] = resource.getrusage(
        resource.RUSAGE_SELF
    ).ru_maxrss
    print(json.dumps(summary))


def run_child(runs: int, args: argparse.Namespace) -> dict:
    proc = subprocess.run(
        [sys.executable, __file__, "--child", str(runs),
         "--nprocs", str(args.nprocs), "--iters", str(args.iters)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--small", type=int, default=10_000)
    p.add_argument("--large", type=int, default=100_000)
    p.add_argument("--nprocs", type=int, default=4)
    p.add_argument("--iters", type=int, default=3)
    p.add_argument("--ratio-ceiling", type=float, default=1.15,
                   help="max peak-RSS growth allowed across the 10x size "
                        "step (default: 1.15)")
    p.add_argument("--child", type=int, default=None, help=argparse.SUPPRESS)
    args = p.parse_args()

    if args.child is not None:
        child(args.child, args.nprocs, args.iters)
        return 0

    results = {}
    for label, runs in (("small", args.small), ("large", args.large)):
        results[label] = s = run_child(runs, args)
        print(f"{label}: {runs} runs -> {s['ok']} ok, {s['hangs']} hangs, "
              f"{s['violations']} violating, peak RSS {s['peak_rss_kb']} kB")
        if s["runs"] != runs:
            print(f"FAIL: {label} campaign ran {s['runs']} of {runs}")
            return 1

    ratio = results["large"]["peak_rss_kb"] / results["small"]["peak_rss_kb"]
    verdict = "OK" if ratio <= args.ratio_ceiling else "FAIL"
    print(f"{verdict}: peak RSS ratio across a "
          f"{args.large // max(args.small, 1)}x size step = {ratio:.3f} "
          f"(ceiling {args.ratio_ceiling})")
    return 0 if ratio <= args.ratio_ceiling else 1


if __name__ == "__main__":
    sys.exit(main())
