"""EXP-F6 — paper Fig. 6: the naive receive *hangs* when control is lost.

Regenerates the figure's scenario: a middle rank dies after receiving the
buffer but before forwarding it.  With the naive (send-mirrored) receive
the job deadlocks — proven by the simulator's global deadlock detector —
in 100% of the control-loss windows; the FT receive (Fig. 9 machinery)
hangs in none of them.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, timed

N = 4
ITERS = 4


def _hang_rate(variant: RingVariant) -> tuple[int, int]:
    """(hangs, windows) across every post-recv (control-loss) window."""
    hangs = windows = 0
    for rank in range(1, N):
        for hit in range(1, ITERS + 1):
            cfg = RingConfig(max_iter=ITERS, variant=variant,
                             termination=Termination.ROOT_BCAST)
            r = run_ring_scenario(
                cfg, N, trace=False,  # classification reads result fields only
                injectors=[KillAtProbe(rank=rank, probe="post_recv", hit=hit)],
            )
            windows += 1
            hangs += bool(r.hung)
    return hangs, windows


def bench_fig6_hang_rate(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for variant in (RingVariant.NAIVE, RingVariant.FT_MARKER):
            hangs, windows = _hang_rate(variant)
            rows.append([variant.value, windows, hangs,
                         f"{100 * hangs / windows:.0f}%"])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 6: failure in the post-recv (control-loss) window",
        ascii_table(["receive design", "windows", "hangs", "hang rate"], rows),
    )
    naive, ft = rows
    # The naive design hangs in the overwhelming majority of windows (a
    # couple of final-iteration windows recover by accident when the dying
    # rank's forward was the ring's last act); the FT design never hangs.
    assert naive[2] >= 0.8 * naive[1]
    assert ft[2] == 0


def bench_fig6_blocked_parties(benchmark):
    # The canonical 4-rank scenario of the figure: P2 dies holding the
    # buffer; P1 waits for the next iteration, P3 waits for P1's resend
    # that the naive design cannot produce.
    def run():
        cfg = RingConfig(max_iter=4, variant=RingVariant.NAIVE,
                         termination=Termination.ROOT_BCAST)
        return run_ring_scenario(
            cfg, N,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
        )

    r = timed(benchmark, run)
    blocked = sorted(rank for rank, _ in r.deadlock.blocked)
    emit(
        "Fig. 6 canonical scenario (P2 dies holding iteration 1)",
        f"deadlock proven at t={r.final_time:.3e}; blocked ranks: {blocked}",
    )
    assert r.hung
    assert set(blocked) == {0, 1, 3}  # every survivor is stuck
