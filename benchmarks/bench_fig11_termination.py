"""EXP-F11 — paper Fig. 11: root-broadcast termination detection.

Regenerates the scheme's contract across ring sizes and failure counts:

* with 0..k non-root failures, every survivor leaves the termination
  phase (the watchdog keeps servicing resends while waiting for ``T_D``);
* root death during the termination wait makes the survivors abort
  (Fig. 11 line 24) — the scheme's documented limitation;
* message cost: the root sends exactly ``size - 1`` termination messages
  (linear broadcast), measured from the trace.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.core.messages import TAG_DONE
from repro.faults import KillAtProbe
from repro.simmpi import TraceKind
from conftest import emit, run_ring_scenario, timed

ITERS = 3


def _done_msgs(result) -> int:
    return result.trace.count(TraceKind.SEND_POST, tag=TAG_DONE)


def bench_fig11_nonroot_failures(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in (4, 8, 12):
            for nfail in (0, 1, 2):
                cfg = RingConfig(max_iter=ITERS,
                                 variant=RingVariant.FT_MARKER,
                                 termination=Termination.ROOT_BCAST)
                injectors = [
                    KillAtProbe(rank=1 + 2 * j, probe="post_recv", hit=2)
                    for j in range(nfail)
                ]
                r = run_ring_scenario(cfg, n, injectors=injectors)
                survivors = set(range(n)) - r.failed_ranks
                rows.append([
                    n, len(r.failed_ranks), not r.hung,
                    set(r.completed_ranks) == survivors,
                    _done_msgs(r),
                ])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 11 root-broadcast termination under non-root failures",
        ascii_table(
            ["ranks", "failures", "ran through", "all survivors finished",
             "T_D messages"],
            rows,
        ),
    )
    for n, nfail, through, finished, msgs in rows:
        assert through and finished
        # Linear broadcast to every *reachable* rank: sends to known-dead
        # ranks fail locally ("Ignore fail.") and never hit the wire.
        assert msgs == n - 1 - nfail


def bench_fig11_root_death_aborts(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in (4, 8):
            cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                             termination=Termination.ROOT_BCAST)
            r = run_ring_scenario(
                cfg, n,
                injectors=[KillAtProbe(rank=0, probe="pre_termination",
                                       hit=1)],
            )
            rows.append([n, r.aborted is not None])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 11 root dies before broadcasting T_D",
        ascii_table(["ranks", "survivors abort (by design)"], rows),
    )
    assert all(aborted for _n, aborted in rows)
