"""EXP-F4 — paper Fig. 4: fault-aware neighbor selection.

Regenerates the behaviour of ``to_left_of`` / ``to_right_of``: the walk
skips exactly the failed ranks (any count, any placement), and a process
that finds itself alone aborts the job.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import to_left_of, to_right_of
from repro.simmpi import ErrorHandler, Simulation
from conftest import emit, timed

N = 12


def _run_with_failed(failed: list[int]):
    def main(mpi):
        comm = mpi.comm_world
        comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
        if comm.rank in failed:
            mpi.compute(1.0)
            return
        mpi.compute(2.0)
        return (to_right_of(comm, comm.rank), to_left_of(comm, comm.rank))

    sim = Simulation(nprocs=N)
    for i, rank in enumerate(failed):
        # Stagger kills inside every victim's compute window (< 1.0).
        sim.kill(rank, at_time=0.01 * (i + 1))
    return sim.run(main, on_deadlock="return")


def bench_fig4_skip_patterns(benchmark):
    patterns = {
        "one failure": [5],
        "pair adjacent": [5, 6],
        "run of four": [3, 4, 5, 6],
        "alternating": [1, 3, 5, 7, 9, 11],
        "all but two": [r for r in range(N) if r not in (0, 7)],
    }
    rows = []

    def run_all():
        rows.clear()
        for name, failed in patterns.items():
            r = _run_with_failed(failed)
            alive = sorted(set(range(N)) - set(failed))
            ok = True
            for rank in alive:
                right, left = r.value(rank)
                i = alive.index(rank)
                ok &= right == alive[(i + 1) % len(alive)]
                ok &= left == alive[(i - 1) % len(alive)]
            rows.append([name, len(failed), len(alive), ok])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 4 neighbor selection over failure patterns",
        ascii_table(["pattern", "failed", "alive", "ring closed correctly"],
                    rows),
    )
    assert all(ok for *_rest, ok in rows)


def bench_fig4_alone_aborts(benchmark):
    def run():
        r = _run_with_failed(list(range(1, N)))
        return r

    r = timed(benchmark, run)
    emit(
        "Fig. 4 sole survivor",
        f"survivor rank 0 called MPI_Abort: {r.aborted is not None}",
    )
    assert r.aborted is not None
