"""EXP-F13 — paper Fig. 13: consensus-based termination detection.

Regenerates the scheme the paper builds to escape the fragile reliable
broadcast: every rank (root included) enters the non-blocking collective
validate and services resends while it waits.  Rows:

* survives 0..k non-root failures, and — combined with the §III-D driver
  — root failure too (the case Fig. 11 aborts on);
* side-by-side with Fig. 11 on the same failure scenarios.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, timed

ITERS = 3


def bench_fig13_nonroot_failures(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in (4, 8, 12):
            for nfail in (0, 1, 2):
                cfg = RingConfig(max_iter=ITERS,
                                 variant=RingVariant.FT_MARKER,
                                 termination=Termination.VALIDATE_ALL)
                injectors = [
                    KillAtProbe(rank=1 + 2 * j, probe="post_recv", hit=2)
                    for j in range(nfail)
                ]
                r = run_ring_scenario(cfg, n, injectors=injectors,
                                      trace=False)
                survivors = set(range(n)) - r.failed_ranks
                rows.append([n, nfail, not r.hung,
                             set(r.completed_ranks) == survivors])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 13 validate_all termination under non-root failures",
        ascii_table(
            ["ranks", "failures", "ran through", "all survivors finished"],
            rows,
        ),
    )
    assert all(through and fin for _n, _f, through, fin in rows)


def bench_fig13_root_failure_with_rootft(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for window, hit in (("root_post_send", 2), ("root_post_recv", 2),
                            ("pre_termination", 1)):
            cfg = RingConfig(max_iter=4)
            r = run_ring_scenario(
                cfg, 5, rootft=True, trace=False,  # reads result fields only
                injectors=[KillAtProbe(rank=0, probe=window, hit=hit)],
            )
            markers = []
            for i in r.completed_ranks:
                markers.extend(m for m, _v in r.value(i)["root_completions"])
            # Full progress: the last iteration either completed at a
            # surviving root, or every survivor forwarded all 4 markers
            # (its record died with the old root — §III-D semantics).
            progressed = max(markers, default=-1) == 3 or all(
                r.value(i)["cur_marker"] == 4 for i in r.completed_ranks
            )
            rows.append([f"{window}#{hit}", not r.hung,
                         r.aborted is None, progressed])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 13 + §III-D: root dies, ring still terminates",
        ascii_table(
            ["root death window", "ran through", "no abort",
             "full progress"],
            rows,
        ),
    )
    assert all(through and no_abort and progressed
               for _w, through, no_abort, progressed in rows)


def bench_fig13_vs_fig11_contract(benchmark):
    # The two schemes on the same root-death scenario: Fig. 11 aborts,
    # Fig. 13 (+ §III-D) runs through.
    def run_pair():
        out = {}
        cfg11 = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                           termination=Termination.ROOT_BCAST)
        r11 = run_ring_scenario(
            cfg11, 4,
            injectors=[KillAtProbe(rank=0, probe="pre_termination", hit=1)],
        )
        out["fig11 root_bcast"] = ("aborted" if r11.aborted else
                                   "hung" if r11.hung else "ran through")
        cfg13 = RingConfig(max_iter=ITERS)
        r13 = run_ring_scenario(
            cfg13, 4, rootft=True,
            injectors=[KillAtProbe(rank=0, probe="pre_termination", hit=1)],
        )
        out["fig13 validate_all"] = ("aborted" if r13.aborted else
                                     "hung" if r13.hung else "ran through")
        return out

    out = timed(benchmark, run_pair)
    emit(
        "Root dies at termination: Fig. 11 vs Fig. 13 termination",
        ascii_table(["scheme", "outcome"], list(out.items())),
    )
    assert out["fig11 root_bcast"] == "aborted"
    assert out["fig13 validate_all"] == "ran through"
