"""EXP-SWEEP — paper §III-E: exhaustive failure-window coverage.

The paper asks how a developer can know they have addressed *all*
problematic fault scenarios.  This bench is this repository's answer:
enumerate every reachable failure window of the ring (every rank, every
iteration, every receive/send boundary) from the deterministic reference
run, inject a fail-stop at each — and at each *pair* — and check the full
invariant battery.  The table reports the complete coverage map per
design variant.

The per-window re-runs execute through the :mod:`repro.parallel` sweep
engine: serial by default, fanned over ``REPRO_BENCH_WORKERS`` processes
when set.  Scenario factories are picklable
:class:`~repro.parallel.RingScenario` specs, so the same bench measures
both the serial and the pooled path; the coverage tables are identical
either way.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingVariant
from repro.parallel import RingScenario, StandardRingInvariants
from repro.faults import explore
from conftest import emit, sweep_runner, timed

N = 4
ITERS = 3


def _scenario(variant=RingVariant.FT_MARKER, rootft=False) -> RingScenario:
    return RingScenario(
        nprocs=N, iters=ITERS, variant=variant.value, rootft=rootft
    )


def bench_sweep_single_failures(benchmark):
    rows = []
    runner = sweep_runner()

    def run_all():
        rows.clear()
        specs = [
            ("naive", RingVariant.NAIVE, False, [1, 2, 3], False),
            ("ft_no_marker", RingVariant.FT_NO_MARKER, False, [1, 2, 3], False),
            ("ft_marker", RingVariant.FT_MARKER, False, [1, 2, 3], False),
            ("ft_tagged", RingVariant.FT_TAGGED, False, [1, 2, 3], False),
            ("rootft", RingVariant.FT_MARKER, True, None, True),
        ]
        for name, variant, rootft, ranks, root_loss in specs:
            rep = explore(
                _scenario(variant, rootft),
                invariants=StandardRingInvariants(
                    ITERS, N, allow_root_loss=root_loss
                ),
                ranks=ranks,
                runner=runner,
                trace=False,  # the battery never reads result.trace
            )
            s = rep.summary()
            rows.append([name, s["windows"], s["ok"], s["hangs"],
                         s["violations"]])
        return rows

    timed(benchmark, run_all)
    emit(
        "§III-E exhaustive single-failure sweep "
        f"(n={N}, {ITERS} iterations; rootft sweeps the root too)",
        ascii_table(
            ["design", "windows", "ok", "hangs", "violations"], rows
        ),
    )
    by = {row[0]: row for row in rows}
    assert by["naive"][3] > 0               # hangs (Fig. 6)
    assert by["ft_marker"][2] == by["ft_marker"][1]  # fully clean
    assert by["ft_tagged"][2] == by["ft_tagged"][1]
    assert by["rootft"][2] == by["rootft"][1]


def bench_sweep_double_failures(benchmark):
    rows = []
    runner = sweep_runner()

    def run_all():
        rows.clear()
        for name, rootft, root_loss in (("ft_marker", False, False),
                                        ("rootft", True, True)):
            rep = explore(
                _scenario(RingVariant.FT_MARKER, rootft),
                invariants=StandardRingInvariants(
                    ITERS, N, allow_root_loss=root_loss
                ),
                ranks=None if rootft else [1, 2, 3],
                pairs=True,
                runner=runner,
                trace=False,  # the battery never reads result.trace
            )
            s = rep.summary()
            rows.append([name, s["runs"], s["ok"], s["hangs"],
                         s["violations"]])
        return rows

    timed(benchmark, run_all)
    emit(
        "§III-E exhaustive double-failure sweep (every window pair)",
        ascii_table(["design", "runs", "ok", "hangs", "violations"], rows),
    )
    assert all(ok == runs for _n, runs, ok, _h, _v in rows)
