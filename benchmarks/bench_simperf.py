"""EXP-PERF — raw simulator performance (regression guard).

Not a paper figure: these benches track the substrate's wall-clock cost so
protocol-level additions don't silently degrade the harness.  Reported
series: simulated messages per wall second for a ping-ring workload, event
throughput under pure timers, fiber context-switch cost, and scaling of a
full FT-ring run with ring size.
"""

from __future__ import annotations

from repro.core import RingConfig, Termination, make_ring_main
from repro.simmpi import Simulation
from conftest import emit, timed


def bench_simperf_ring_messages(benchmark):
    """Throughput: a 16-rank ring circulating 50 iterations (~800 msgs)."""

    def run():
        cfg = RingConfig(max_iter=50, termination=Termination.NONE)
        return Simulation(nprocs=16).run(make_ring_main(cfg))

    result = timed(benchmark, run)
    msgs = 16 * 50
    emit(
        "simulator throughput (ring workload)",
        f"{msgs} messages simulated; mean wall time in the benchmark table "
        f"gives msgs/sec",
    )
    assert result.value(0)["root_completions"][-1][0] == 49


def bench_simperf_timer_events(benchmark):
    """Event-loop throughput: 4 ranks x 500 compute slices."""

    def main(mpi):
        for _ in range(500):
            mpi.compute(1e-9)
        return "done"

    def run():
        return Simulation(nprocs=4, trace_enabled=False).run(main)

    result = timed(benchmark, run)
    assert all(v == "done" for v in result.values().values())


def bench_simperf_fiber_switches(benchmark):
    """Handoff cost: two ranks ping-ponging 300 times (600 switches+)."""

    def main(mpi):
        comm = mpi.comm_world
        other = 1 - comm.rank
        for i in range(300):
            if comm.rank == i % 2:
                comm.send(i, dest=other)
            else:
                comm.recv(source=other)
        return "done"

    def run():
        return Simulation(nprocs=2, trace_enabled=False).run(main)

    result = timed(benchmark, run)
    assert all(v == "done" for v in result.values().values())


def bench_simperf_scaling(benchmark):
    """Wall time vs ring size at constant per-rank work."""
    rows = []

    def run_all():
        rows.clear()
        import time

        for n in (8, 16, 32, 64):
            cfg = RingConfig(max_iter=5, termination=Termination.NONE)
            t0 = time.perf_counter()
            Simulation(nprocs=n, trace_enabled=False).run(make_ring_main(cfg))
            rows.append([n, time.perf_counter() - t0])
        return rows

    timed(benchmark, run_all)
    from repro.analysis import ascii_table

    emit(
        "simulator wall-time scaling (5-iteration ring)",
        ascii_table(["ranks", "wall seconds"], rows),
    )
    # Roughly linear in total messages: 8x the ranks < 40x the time.
    assert rows[-1][1] < 40 * max(rows[0][1], 1e-4)
