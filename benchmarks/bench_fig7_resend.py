"""EXP-F7 — paper Fig. 7: the watchdog notices and resends.

Regenerates the repaired scenario: same control-loss failure as Fig. 6,
but the Fig. 9 receive posts a watchdog ``Irecv`` on the right neighbor.
The upstream rank notices the death, resends its last buffer past the
gap, and the ring completes every iteration.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, timed

N = 4
ITERS = 4


def bench_fig7_recovery(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for victim in (1, 2, 3):
            for hit in (1, 2, 3):
                cfg = RingConfig(max_iter=ITERS,
                                 variant=RingVariant.FT_MARKER,
                                 termination=Termination.ROOT_BCAST)
                r = run_ring_scenario(
                    cfg, N,
                    injectors=[KillAtProbe(rank=victim, probe="post_recv",
                                           hit=hit)],
                )
                markers = [m for m, _v in r.value(0)["root_completions"]]
                resends = sum(
                    r.value(i)["resends"] for i in r.completed_ranks
                )
                rows.append([f"r{victim}", hit, not r.hung,
                             markers == list(range(ITERS)), resends])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 7: FT receive recovers the Fig. 6 scenario",
        ascii_table(
            ["victim", "iteration", "ran through", "all iters complete",
             "resends"],
            rows,
        ),
    )
    for _v, _h, through, complete, resends in rows:
        assert through and complete
        assert resends >= 1  # the upstream neighbor re-drove the ring


def bench_fig7_recovery_latency(benchmark):
    # Recovery cost: virtual completion time with one mid-ring failure vs
    # failure-free, same configuration.
    def run_pair():
        cfg = RingConfig(max_iter=6, variant=RingVariant.FT_MARKER,
                         termination=Termination.ROOT_BCAST)
        clean = run_ring_scenario(cfg, N)
        cfg2 = RingConfig(max_iter=6, variant=RingVariant.FT_MARKER,
                          termination=Termination.ROOT_BCAST)
        failed = run_ring_scenario(
            cfg2, N,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=3)],
        )
        return clean.final_time, failed.final_time

    clean_t, failed_t = timed(benchmark, run_pair)
    emit(
        "Fig. 7 recovery latency",
        f"failure-free: {clean_t:.3e}s virtual; with one mid-ring failure: "
        f"{failed_t:.3e}s ({failed_t / clean_t:.2f}x)",
    )
    assert failed_t < 3 * clean_t  # local recovery, not a global restart
