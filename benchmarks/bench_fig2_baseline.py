"""EXP-F2 — paper Fig. 2: the traditional fault-unaware ring.

Regenerates the baseline's two defining behaviours:

* failure-free, the ring completes with the full accumulated value
  (``value == nprocs`` at the root every iteration), and per-iteration
  virtual latency scales linearly with the ring size;
* with any single failure, the whole job aborts
  (``MPI_ERRORS_ARE_FATAL``), at every size.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant
from repro.faults import KillAtTime
from conftest import emit, run_ring_scenario, timed

SIZES = [4, 8, 16, 32]
ITERS = 10


def bench_fig2_failure_free(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in SIZES:
            cfg = RingConfig(max_iter=ITERS, variant=RingVariant.BASELINE)
            r = run_ring_scenario(cfg, n)
            comp = r.value(0)["root_completions"]
            rows.append(
                [n, ITERS, comp[-1][1], r.final_time / ITERS, r.final_time]
            )
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 2 baseline ring, failure-free",
        ascii_table(
            ["ranks", "iters", "final value", "virt time/iter", "virt total"],
            rows,
        ),
    )
    for (n, _it, value, per_iter, _tot), (n2, _it2, _v2, per_iter2, _t2) in zip(
        rows, rows[1:]
    ):
        assert value == n  # full circle accumulates one increment per rank
        assert per_iter2 > per_iter  # latency grows with ring size


def bench_fig2_single_failure_aborts(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in SIZES:
            cfg = RingConfig(
                max_iter=50, variant=RingVariant.BASELINE, work_per_iter=1e-6
            )
            r = run_ring_scenario(
                cfg, n, injectors=[KillAtTime(rank=n // 2, time=5e-6)]
            )
            rows.append([n, r.aborted is not None, r.failed_ranks and True])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 2 baseline ring, one failure (ERRORS_ARE_FATAL)",
        ascii_table(["ranks", "job aborted", "failure injected"], rows),
    )
    assert all(aborted for _n, aborted, _f in rows)
