"""EXP-F12 — paper Fig. 12: the leader election algorithm.

Regenerates the election's contract — the new root is the lowest alive
rank — over failure prefixes of increasing length and scattered failure
sets, and measures the (local, communication-free) cost of an election
call as MPI-call counts.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import get_current_root
from repro.simmpi import ErrorHandler, Simulation
from conftest import emit, timed

N = 10


def _elect_with_failed(failed: list[int]):
    def main(mpi):
        comm = mpi.comm_world
        comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
        if comm.rank in failed:
            mpi.compute(1.0)
            return
        mpi.compute(2.0)
        return get_current_root(comm)

    sim = Simulation(nprocs=N)
    for i, rank in enumerate(failed):
        sim.kill(rank, at_time=0.01 * (i + 1))
    return sim.run(main, on_deadlock="return")


def bench_fig12_lowest_alive_wins(benchmark):
    cases = {
        "no failures": [],
        "root only": [0],
        "prefix of 3": [0, 1, 2],
        "scattered": [0, 3, 7],
        "all but highest": list(range(N - 1)),
    }
    rows = []

    def run_all():
        rows.clear()
        for name, failed in cases.items():
            r = _elect_with_failed(failed)
            expected = min(set(range(N)) - set(failed))
            elected = {r.value(i) for i in r.completed_ranks}
            rows.append([name, failed, expected,
                         elected == {expected}])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 12 leader election (lowest alive rank)",
        ascii_table(
            ["failure set", "failed ranks", "expected root",
             "all survivors agree"],
            rows,
        ),
    )
    assert all(agree for *_x, agree in rows)


def bench_fig12_election_is_local(benchmark):
    # The election consults only local failure knowledge: no messages.
    def run():
        r = _elect_with_failed([0, 1])
        from repro.simmpi import TraceKind

        return len(r.trace.filter(kind=TraceKind.SEND_POST))

    sends = timed(benchmark, run)
    emit("Fig. 12 election message cost", f"messages sent by election: {sends}")
    assert sends == 0
