"""EXP-OV — failure-free overhead of the fault-tolerant ring.

The paper's design adds, per iteration: one posted watchdog ``Irecv``, the
marker field on the buffer, and neighbor-state queries.  This bench
quantifies the failure-free cost across ring sizes, in virtual time and in
message counts, against the Fig. 2 baseline — the "what does FT cost when
nothing fails" row every ABFT evaluation needs.
"""

from __future__ import annotations

from repro.analysis import ascii_table, message_stats
from repro.core import RingConfig, RingVariant, Termination
from conftest import emit, run_ring_scenario, timed

SIZES = [4, 8, 16, 32]
ITERS = 10


def bench_overhead_ft_vs_baseline(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in SIZES:
            base = run_ring_scenario(
                RingConfig(max_iter=ITERS, variant=RingVariant.BASELINE), n
            )
            ft = run_ring_scenario(
                RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                           termination=Termination.NONE), n
            )
            rows.append([
                n,
                base.final_time,
                ft.final_time,
                ft.final_time / base.final_time,
                message_stats(base).sends,
                message_stats(ft).sends,
            ])
        return rows

    timed(benchmark, run_all)
    emit(
        "Failure-free overhead: FT ring (markers, no termination) vs baseline",
        ascii_table(
            ["ranks", "baseline virt", "FT virt", "slowdown",
             "baseline msgs", "FT msgs"],
            rows,
        ),
    )
    for _n, _bt, _ft, slowdown, bmsg, fmsg in rows:
        # Same wire messages (watchdogs are receives, not sends); small
        # constant-factor virtual-time overhead.
        assert fmsg == bmsg
        assert slowdown < 1.5


def bench_overhead_termination_schemes(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in SIZES:
            for term, label in ((Termination.NONE, "none"),
                                (Termination.ROOT_BCAST, "root_bcast"),
                                (Termination.VALIDATE_ALL, "validate_all")):
                r = run_ring_scenario(
                    RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                               termination=term), n
                )
                rows.append([n, label, r.final_time,
                             message_stats(r).sends])
        return rows

    timed(benchmark, run_all)
    emit(
        "Termination-scheme cost (failure-free)",
        ascii_table(["ranks", "termination", "virt time", "messages"], rows),
    )
    # validate_all termination (n consensus rounds of all-to-all) costs
    # more messages than the linear root broadcast; both more than none.
    by = {}
    for n, label, _t, msgs in rows:
        by.setdefault(n, {})[label] = msgs
    for n, d in by.items():
        assert d["none"] < d["root_bcast"] < d["validate_all"]
