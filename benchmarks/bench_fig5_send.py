"""EXP-F5 — paper Fig. 5: ``FT_Send_right`` re-targeting.

Regenerates the send-side repair: with ``k`` consecutive failed right
neighbors, the sender retargets exactly ``k`` times and the ring still
completes every iteration.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, timed

N = 8
ITERS = 4


def bench_fig5_retarget_k_failures(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for k in (1, 2, 3, 4):
            cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                             termination=Termination.VALIDATE_ALL)
            injectors = [
                KillAtProbe(rank=2 + j, probe="post_send", hit=1)
                for j in range(k)
            ]
            r = run_ring_scenario(cfg, N, injectors=injectors)
            rep1 = r.value(1)  # the rank immediately left of the dead run
            markers = [m for m, _v in r.value(0)["root_completions"]]
            rows.append(
                [k, rep1["right"], rep1["right_retargets"],
                 markers == list(range(ITERS)), r.hung]
            )
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 5 FT_Send_right across k consecutive failures (ranks 2..2+k-1)",
        ascii_table(
            ["k failed", "rank1 new right", "rank1 retargets",
             "all iters complete", "hung"],
            rows,
        ),
    )
    for k, new_right, retargets, complete, hung in rows:
        assert new_right == 2 + k  # skipped the whole dead run
        assert retargets >= k
        assert complete and not hung
