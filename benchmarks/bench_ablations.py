"""EXP-ABL — ablations of the design choices DESIGN.md calls out.

* **Dedup scheme**: iteration markers vs the §III-B separate-resend-tag
  channel — correctness is identical for the ring; the table compares
  message counts and discarded-duplicate work under the Fig. 8 scenario.
* **Detection latency**: how the detector's lag changes the repair
  pattern (preempted in-flight message vs consumed-then-deduped
  duplicate) while end-to-end correctness stays intact.
* **Watchdog**: the Fig. 9 receive with the watchdog suppressed is
  exactly the naive receive — quantifying what the single posted Irecv
  buys (hang rate goes from majority to zero).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import ascii_table, message_stats
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, sweep_runner, timed

N = 4
ITERS = 4
SCENARIO = dict(rank=2, probe="post_send", hit=2)


@dataclass(frozen=True)
class DedupJob:
    """Fig. 8 scenario under one dedup scheme, reduced to a table row."""

    label: str
    variant: str

    def __call__(self):
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant(self.variant),
                         termination=Termination.ROOT_BCAST)
        r = run_ring_scenario(
            cfg, N, injectors=[KillAtProbe(**SCENARIO)],
            detection_latency=2e-6,
        )
        markers = [m for m, _v in r.value(0)["root_completions"]]
        discarded = sum(r.value(i)["duplicates_discarded"]
                        for i in r.completed_ranks)
        return [self.label, markers == list(range(ITERS)), discarded,
                message_stats(r).sends]


def bench_ablation_dedup_scheme(benchmark):
    rows = []
    runner = sweep_runner()
    jobs = [
        DedupJob("markers (same tag)", RingVariant.FT_MARKER.value),
        DedupJob("split resend tag", RingVariant.FT_TAGGED.value),
    ]

    def run_all():
        rows.clear()
        rows.extend(runner.run(jobs))
        return rows

    timed(benchmark, run_all)
    emit(
        "Ablation: marker dedup vs separate resend tag (Fig. 8 scenario)",
        ascii_table(
            ["dedup scheme", "clean completions", "dups discarded",
             "messages"],
            rows,
        ),
    )
    assert all(clean for _l, clean, _d, _m in rows)


@dataclass(frozen=True)
class LatencyJob:
    """Fig. 8 scenario at one detector latency, reduced to a table row."""

    latency: float

    def __call__(self):
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                         termination=Termination.VALIDATE_ALL)
        r = run_ring_scenario(
            cfg, N, injectors=[KillAtProbe(**SCENARIO)],
            detection_latency=self.latency,
        )
        resends = sum(r.value(i)["resends"] for i in r.completed_ranks)
        discarded = sum(r.value(i)["duplicates_discarded"]
                        for i in r.completed_ranks)
        drops = message_stats(r).drops
        return [self.latency, not r.hung, resends, discarded, drops,
                r.final_time]


def bench_ablation_detection_latency(benchmark):
    rows = []
    runner = sweep_runner()
    jobs = [LatencyJob(lat) for lat in (0.0, 1e-6, 2e-6, 4e-6)]

    def run_all():
        rows.clear()
        rows.extend(runner.run(jobs))
        return rows

    timed(benchmark, run_all)
    emit(
        "Ablation: perfect-detector latency (Fig. 8 scenario, markers on)",
        ascii_table(
            ["detect latency", "ran through", "resends", "dups discarded",
             "msgs dropped", "virt time"],
            rows,
        ),
    )
    assert all(through for _l, through, *_rest in rows)
    # Slower detection shifts work from preemption (dropped messages /
    # erroring receives) to dedup (consumed duplicates).
    assert rows[-1][3] >= rows[0][3]


def bench_ablation_ibarrier_termination(benchmark):
    """§III-C's rejected ibarrier-retry termination, demonstrated.

    Failure-free it works (and beats validate_all on messages); a
    mid-loop failure forces the consensus fallback; a failure during the
    termination phase splits the ranks between paths and *hangs* — the
    paper's reason to reject the scheme, proven by the deadlock detector.
    """
    rows = []

    def run_all():
        rows.clear()
        # Failure-free.
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                         termination=Termination.IBARRIER)
        r = run_ring_scenario(cfg, N)
        rows.append(["failure-free", not r.hung,
                     {r.value(i)["termination_path"]
                      for i in r.completed_ranks},
                     message_stats(r).sends])
        # Mid-loop failure: consensus fallback.
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                         termination=Termination.IBARRIER)
        r = run_ring_scenario(
            cfg, N, injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)]
        )
        rows.append(["mid-loop failure", not r.hung,
                     {r.value(i)["termination_path"]
                      for i in r.completed_ranks},
                     message_stats(r).sends])
        # Termination-phase failure: split paths, proven hang.
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                         termination=Termination.IBARRIER)
        r = run_ring_scenario(
            cfg, N,
            injectors=[KillAtProbe(rank=2, probe="pre_termination", hit=1)],
        )
        rows.append(["termination-phase failure", not r.hung,
                     "(split)" if r.hung else "-", message_stats(r).sends])
        return rows

    timed(benchmark, run_all)
    emit(
        "Ablation: ibarrier-retry termination (the §III-C rejected scheme)",
        ascii_table(
            ["scenario", "ran through", "termination paths", "messages"],
            rows,
        ),
    )
    assert rows[0][1] and rows[0][2] == {"ibarrier"}
    assert rows[1][1] and rows[1][2] == {"fallback"}
    assert not rows[2][1]  # the split hang — why the paper rejects it


@dataclass(frozen=True)
class WatchdogJob:
    """One control-loss window under one receive design: did it hang?"""

    variant: str
    rank: int
    hit: int

    def __call__(self) -> bool:
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant(self.variant),
                         termination=Termination.ROOT_BCAST)
        r = run_ring_scenario(
            cfg, N,
            injectors=[KillAtProbe(rank=self.rank, probe="post_recv",
                                   hit=self.hit)],
        )
        return bool(r.hung)


def bench_ablation_watchdog(benchmark):
    rows = []
    runner = sweep_runner()
    designs = [("with watchdog (Fig. 9)", RingVariant.FT_MARKER.value),
               ("without watchdog (naive)", RingVariant.NAIVE.value)]
    jobs = [WatchdogJob(variant, rank, hit)
            for _label, variant in designs
            for rank in (1, 2, 3)
            for hit in range(1, ITERS + 1)]
    per_design = len(jobs) // len(designs)

    def run_all():
        rows.clear()
        hung = runner.run(jobs)
        for i, (label, _variant) in enumerate(designs):
            chunk = hung[i * per_design : (i + 1) * per_design]
            rows.append([label, len(chunk), sum(chunk)])
        return rows

    timed(benchmark, run_all)
    emit(
        "Ablation: the watchdog Irecv (hang rate over control-loss windows)",
        ascii_table(["receive design", "windows", "hangs"], rows),
    )
    with_wd, without_wd = rows
    assert with_wd[2] == 0
    assert without_wd[2] > 0
