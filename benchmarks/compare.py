#!/usr/bin/env python
"""Compare two ``BENCH_simperf.json`` files and flag regressions.

Thin script wrapper over :func:`repro.perf.diff_benchmarks` for use
without an installed package (CI, ad-hoc checks)::

    python benchmarks/compare.py BASELINE.json CURRENT.json [--threshold 0.2]

Prints a per-series table and exits 1 when any series regressed by more
than the threshold (relative, on ``min_wall_s`` by default).  CI runs
this as a *soft* step: regressions annotate the build but do not fail it
(wall-clock noise on shared runners makes a hard gate flaky).

Exits 2 without a table when the two files were recorded under
different fiber backends (``counters.fibers`` disagrees on a shared
series) — those wall times are not comparable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf import (  # noqa: E402
    BackendMismatch,
    diff_benchmarks,
    format_diff,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_simperf.json")
    ap.add_argument("current", help="current BENCH_simperf.json")
    ap.add_argument("--metric", default="min_wall_s")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative regression that flags a series")
    args = ap.parse_args(argv)
    try:
        deltas = diff_benchmarks(
            args.baseline, args.current, metric=args.metric
        )
    except BackendMismatch as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    text, flagged = format_diff(deltas, threshold=args.threshold)
    print(text)
    return 1 if flagged else 0


if __name__ == "__main__":
    sys.exit(main())
