"""EXP-F10 — paper Fig. 10: iteration markers discard the duplicates.

Same scenario sweep as EXP-F8, with the marker check of Fig. 9 lines
24–28 enabled: every detection latency yields a duplicate-free, complete,
in-order completion sequence, and the discarded-duplicate counters show
the marker check actually firing (not the scenario silently missing).
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, timed

N = 4
ITERS = 4
LATENCIES = [0.0, 5e-7, 1e-6, 2e-6, 3e-6]


def bench_fig10_marker_dedup(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for lat in LATENCIES:
            cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_MARKER,
                             termination=Termination.ROOT_BCAST)
            r = run_ring_scenario(
                cfg, N,
                injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
                detection_latency=lat,
            )
            markers = [m for m, _v in r.value(0)["root_completions"]]
            discarded = sum(
                r.value(i)["duplicates_discarded"] for i in r.completed_ranks
            )
            rows.append([lat, markers, discarded, markers == list(range(ITERS))])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 10 (markers): completions at root vs detection latency",
        ascii_table(
            ["detect latency", "completion markers", "dups discarded",
             "clean & complete"],
            rows,
        ),
    )
    assert all(clean for _l, _m, _d, clean in rows)
    # In the laggy-detector regime the duplicate was *produced and
    # discarded* (the marker check did real work).
    assert any(d >= 1 for lat, _m, d, _c in rows if lat >= 1e-6)


def bench_fig10_vs_fig8_side_by_side(benchmark):
    lat = 2e-6

    def run_pair():
        out = {}
        for name, variant in (("no markers", RingVariant.FT_NO_MARKER),
                              ("markers", RingVariant.FT_MARKER)):
            cfg = RingConfig(max_iter=ITERS, variant=variant,
                             termination=Termination.ROOT_BCAST)
            r = run_ring_scenario(
                cfg, N,
                injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
                detection_latency=lat,
            )
            out[name] = [m for m, _v in r.value(0)["root_completions"]]
        return out

    out = timed(benchmark, run_pair)
    emit(
        "Fig. 8 vs Fig. 10, same failure, same latency",
        ascii_table(
            ["design", "completion markers", "duplicate-free"],
            [[k, v, len(v) == len(set(v))] for k, v in out.items()],
        ),
    )
    assert len(out["no markers"]) != len(set(out["no markers"]))
    assert out["markers"] == list(range(ITERS))
