"""EXP-STREAM — the streaming sweep pipeline vs materialized batches.

``run_campaign(..., stream=True)`` folds runs into a summary as they
complete instead of building the full job and result lists, holding
O(window + failures) memory however large the campaign.  Its cost model
must be a wash: the same simulations execute either way, so streaming
may only add windowing overhead.  Two series pin that:

* ``bench_campaign_materialized`` — the classic list-in/list-out path;
* ``bench_campaign_streamed`` — the bounded-window generator path; the
  bench asserts the reports are byte-identical and that streaming costs
  at most a modest constant factor over materializing (it is usually
  within noise of 1.0x — the simulations dominate).

Both land in ``BENCH_simperf.json``; ``REPRO_BENCH_WORKERS`` fans the
runs across a pool in either mode.
"""

from __future__ import annotations

import time

from repro.analysis import ascii_table
from repro.faults import run_campaign
from repro.parallel import RingScenario, StandardRingInvariants
from conftest import _PERF, emit, sweep_runner, timed

N = 4
ITERS = 3
RUNS = 300
SCENARIO = RingScenario(nprocs=N, iters=ITERS)
INVARIANTS = StandardRingInvariants(ITERS, N)
#: Streaming may not cost more than this over the materialized path.
OVERHEAD_CEILING = 1.25


def _campaign(stream: bool):
    return run_campaign(
        SCENARIO,
        seeds=range(RUNS),
        horizon=2e-5,
        invariants=INVARIANTS,
        runner=sweep_runner(),
        stream=stream,
    )


def bench_campaign_materialized(benchmark):
    reports = []
    timed(benchmark, lambda: reports.append(_campaign(stream=False)))
    s = reports[-1].summary()
    emit(
        f"campaign, materialized ({RUNS} runs, fig2 ring n={N})",
        ascii_table(
            ["runs", "ok", "hangs", "violations", "aborts"],
            [[s["runs"], s["ok"], s["hangs"], s["violations"], s["aborts"]]],
        ),
    )
    assert s["runs"] == RUNS


def bench_campaign_streamed(benchmark):
    reports = []
    timed(benchmark, lambda: reports.append(_campaign(stream=True)))
    streamed = reports[-1]
    assert streamed.format() == _campaign(stream=False).format()

    streamed_s = min(_PERF["bench_campaign_streamed"])
    rows = [["streamed", f"{streamed_s:.4f}", "-"]]
    mat_series = _PERF.get("bench_campaign_materialized")
    if mat_series:
        # The two series above were timed minutes apart in a full bench
        # session; machine-load drift between them exceeds the windowing
        # overhead being gated.  Assert on a warmth-matched ratio
        # instead: alternate materialized/streamed passes back-to-back
        # and compare the best of each.
        best = {False: float("inf"), True: float("inf")}
        for _ in range(3):
            for stream in (False, True):
                t0 = time.perf_counter()
                _campaign(stream=stream)
                best[stream] = min(best[stream], time.perf_counter() - t0)
        ratio = best[True] / best[False] if best[False] > 0 else float("inf")
        rows.insert(0, ["materialized", f"{min(mat_series):.4f}", "-"])
        rows[-1][-1] = f"{ratio:.2f}x"
        assert ratio <= OVERHEAD_CEILING, (
            f"streaming cost {ratio:.2f}x the materialized sweep "
            f"(ceiling: {OVERHEAD_CEILING}x, interleaved best-of-3)"
        )
    emit(
        "campaign, streamed (same runs through bounded windows; overhead "
        "from interleaved best-of-3)",
        ascii_table(["mode", "min wall s", "overhead"], rows),
    )
