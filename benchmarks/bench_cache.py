"""EXP-CACHE — the content-addressed run cache: cold vs warm sweeps.

The incremental-sweep claim of :mod:`repro.cache` is purely about wall
time: a warm re-run of an unchanged exploration answers every job from
its content-addressed key instead of executing the simulation, and the
report is byte-identical.  This bench pins both halves on the paper's
ring (the Fig. 2 scenario, explored exhaustively in its fault-tolerant
marker variant):

* ``bench_explore_cache_cold`` — every round sweeps into a **fresh**
  cache directory: full simulation cost plus key/store overhead (the
  honest price of turning the cache on for the first time);
* ``bench_explore_cache_warm`` — the directory is pre-populated once,
  every timed round is all hits.  The bench asserts the warm report
  equals the cold one and, when the cold series ran in the same
  session, that warm is at least **5x** faster.

PR 7's backend split adds the campaign-scale series: a synthetic store
of 10^4 entries, warm-looked-up via one ``get_many`` per round, once
per backend.  ``bench_cache_lookup_sqlite`` asserts the WAL database
answers the batch at least **5x** faster than the sharded-JSON layout —
the number that makes million-run campaigns practical (JSON pays one
``open``/``read``/``parse`` per key; SQLite pays ~20 indexed queries).
The gate measures the two backends interleaved, back-to-back, so
machine-load drift between the independently-timed series cannot fail
it, and with the cyclic collector quiesced so gen-2 sweeps of a full
test session's heap don't land inside the short sqlite window.

All series land in ``BENCH_simperf.json`` with their ``cache_*``
counter deltas (see ``conftest.timed``), so the trajectory file records
the hit/miss traffic alongside the wall times.
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro.analysis import ascii_table
from repro.cache import RunCache
from repro.faults import explore
from repro.parallel import RingScenario, StandardRingInvariants
from conftest import _PERF, emit, timed

# The Fig. 2 ring, in the fault-tolerant marker variant the sweep
# engine exists to interrogate (the baseline variant aborts on the
# first kill, which would make most windows trivially identical).
N = 8
ITERS = 10
SCENARIO = RingScenario(nprocs=N, iters=ITERS)
INVARIANTS = StandardRingInvariants(ITERS, N)
SPEEDUP_FLOOR = 5.0


def _explore(cache_dir: Path):
    return explore(
        SCENARIO,
        invariants=INVARIANTS,
        ranks=list(range(1, N)),
        cache=cache_dir,
    )


def bench_explore_cache_cold(benchmark):
    dirs: list[str] = []
    reports = []

    def run_cold():
        # A fresh directory per round: every job misses and stores.
        d = tempfile.mkdtemp(prefix="repro-bench-cache-")
        dirs.append(d)
        reports.append(_explore(Path(d)))
        return reports[-1]

    try:
        timed(benchmark, run_cold)
    finally:
        for d in dirs:
            shutil.rmtree(d, ignore_errors=True)
    s = reports[-1].summary()
    emit(
        f"run-cache cold sweep (fig2 ring, n={N}, {ITERS} iterations)",
        ascii_table(
            ["windows", "runs", "ok", "hangs", "violations"],
            [[s["windows"], s["runs"], s["ok"], s["hangs"], s["violations"]]],
        ),
    )
    assert s["ok"] == s["runs"] > 0  # the marker ring survives every window


def bench_explore_cache_warm(benchmark):
    d = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        populate = _explore(Path(d))  # untimed cold pass fills the store
        reports = []

        def run_warm():
            reports.append(_explore(Path(d)))
            return reports[-1]

        timed(benchmark, run_warm)
    finally:
        shutil.rmtree(d, ignore_errors=True)
    warm = reports[-1]
    assert warm.format() == populate.format()  # byte-identical report
    rows = [["warm", f"{min(_PERF['bench_explore_cache_warm']):.4f}", "-"]]
    cold_series = _PERF.get("bench_explore_cache_cold")
    if cold_series:
        cold_s = min(cold_series)
        warm_s = min(_PERF["bench_explore_cache_warm"])
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        rows.insert(0, ["cold", f"{cold_s:.4f}", "-"])
        rows[-1][-1] = f"{speedup:.1f}x"
        assert speedup >= SPEEDUP_FLOOR, (
            f"warm sweep only {speedup:.1f}x faster than cold "
            f"(floor: {SPEEDUP_FLOOR}x)"
        )
    emit(
        "run-cache warm sweep (same store, all hits)",
        ascii_table(["mode", "min wall s", "speedup"], rows),
    )


# ---------------------------------------------------------------------------
# Backend lookup series: sharded JSON vs SQLite WAL at campaign scale
# ---------------------------------------------------------------------------

LOOKUP_ENTRIES = 10_000
LOOKUP_SPEEDUP_FLOOR = 5.0


def _synthetic_store(backend: str, root: Path) -> tuple[RunCache, list[str]]:
    """10^4 entries with campaign-shaped payloads, stored untimed."""
    cache = RunCache(root, backend=backend)
    keys = [f"{i:064x}" for i in range(LOOKUP_ENTRIES)]
    cache.put_many(
        (
            key,
            {"hung": False, "violations": [], "digest": key[:16], "seed": i},
            ("bench-entry", i),
        )
        for i, key in enumerate(keys)
    )
    return cache, keys


@pytest.fixture(scope="module")
def lookup_stores():
    """One pre-populated store per backend, shared by the lookup benches
    so the speedup gate can re-measure both back-to-back."""
    dirs: list[str] = []
    stores: dict[str, tuple[RunCache, list[str]]] = {}
    for backend in ("json", "sqlite"):
        d = tempfile.mkdtemp(prefix=f"repro-bench-{backend}-")
        dirs.append(d)
        stores[backend] = _synthetic_store(backend, Path(d))
    yield stores
    for d in dirs:
        shutil.rmtree(d, ignore_errors=True)


def _bench_lookup(benchmark, stores, backend: str):
    cache, keys = stores[backend]

    def lookup():
        got = cache.get_many(keys)
        assert all(status == "hit" for status, _ in got)
        return got

    timed(benchmark, lookup)


def bench_cache_lookup_json(benchmark, lookup_stores):
    _bench_lookup(benchmark, lookup_stores, "json")


def bench_cache_lookup_sqlite(benchmark, lookup_stores):
    _bench_lookup(benchmark, lookup_stores, "sqlite")
    sqlite_s = min(_PERF["bench_cache_lookup_sqlite"])
    rows = [["sqlite", f"{sqlite_s:.4f}", "-"]]
    json_series = _PERF.get("bench_cache_lookup_json")
    if json_series:
        # The two series above were timed minutes apart in a full bench
        # session, and machine-load drift between them dwarfs the
        # backend gap's error bars.  Gate on a warmth-matched ratio
        # instead: alternate json/sqlite batches back-to-back and
        # compare the best of each.  The collector is quiesced for the
        # comparison: one get_many materializes ~3 objects per key, so
        # in a full-suite run a gen-2 sweep of the accumulated heap
        # lands inside the ~40ms sqlite window often enough to double
        # it (json's ~200ms window absorbs the same pause in the
        # noise).
        best = {"json": float("inf"), "sqlite": float("inf")}
        gc.collect()
        gc.disable()
        try:
            for _ in range(3):
                for backend in ("json", "sqlite"):
                    cache, keys = lookup_stores[backend]
                    t0 = time.perf_counter()
                    cache.get_many(keys)
                    best[backend] = min(
                        best[backend], time.perf_counter() - t0
                    )
        finally:
            gc.enable()
        speedup = (
            best["json"] / best["sqlite"]
            if best["sqlite"] > 0 else float("inf")
        )
        rows.insert(0, ["json", f"{min(json_series):.4f}", "-"])
        rows[-1][-1] = f"{speedup:.1f}x"
        assert speedup >= LOOKUP_SPEEDUP_FLOOR, (
            f"sqlite warm lookup only {speedup:.1f}x faster than json "
            f"at {LOOKUP_ENTRIES} entries (floor: {LOOKUP_SPEEDUP_FLOOR}x, "
            f"interleaved best-of-3: json {best['json'] * 1e3:.1f}ms / "
            f"sqlite {best['sqlite'] * 1e3:.1f}ms)"
        )
    emit(
        f"cache backend warm lookup ({LOOKUP_ENTRIES} entries, one "
        f"get_many per round; speedup from interleaved best-of-3)",
        ascii_table(["backend", "min wall s", "speedup"], rows),
    )
