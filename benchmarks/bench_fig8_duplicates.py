"""EXP-F8 — paper Fig. 8: resends duplicate messages without dedup control.

Regenerates the duplicate-completion pathology: the victim dies *after*
forwarding; the upstream watchdog (correctly) resends; the downstream rank
has already forwarded the original and — without iteration markers —
forwards the resend as if it were the next iteration.  The root then
completes the same iteration twice and the final iteration is starved.

The duplicate needs the failure detector to lag the wire (the paper's
sequence has P3 consume P2's message before P1 notices P2's death), so
the scenario is swept over detection latencies: at zero latency the
pending-receive sweep preempts the in-flight message and no duplicate can
form; past one hop latency the duplicate appears consistently.
"""

from __future__ import annotations

from repro.analysis import ascii_table
from repro.core import RingConfig, RingVariant, Termination
from repro.faults import KillAtProbe
from conftest import emit, run_ring_scenario, timed

N = 4
ITERS = 4
LATENCIES = [0.0, 5e-7, 1e-6, 2e-6, 3e-6]


def _dup_stats(lat: float) -> tuple[list[int], int]:
    cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_NO_MARKER,
                     termination=Termination.ROOT_BCAST)
    r = run_ring_scenario(
        cfg, N,
        injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
        detection_latency=lat,
    )
    markers = [m for m, _v in r.value(0)["root_completions"]]
    dupes = len(markers) - len(set(markers))
    return markers, dupes


def bench_fig8_duplicates_vs_detection_latency(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for lat in LATENCIES:
            markers, dupes = _dup_stats(lat)
            rows.append([lat, markers, dupes, ITERS - 1 not in set(markers)])
        return rows

    timed(benchmark, run_all)
    emit(
        "Fig. 8 (no markers): completions at root vs detection latency",
        ascii_table(
            ["detect latency", "completion markers", "duplicates",
             "final iter starved"],
            rows,
        ),
    )
    # Once detection lags the wire by more than one full hop (~1.3 us at
    # the default cost model), the duplicate appears consistently.
    assert any(d > 0 for _l, _m, d, _s in rows)
    laggy = [row for row in rows if row[0] >= 2e-6]
    assert all(d > 0 for _l, _m, d, _s in laggy)
    assert all(starved for _l, _m, d, starved in laggy if d)


def bench_fig8_canonical_sequence(benchmark):
    # The figure's exact cast: P1 resends, P3 forwards the duplicate.
    def run():
        cfg = RingConfig(max_iter=ITERS, variant=RingVariant.FT_NO_MARKER,
                         termination=Termination.ROOT_BCAST)
        return run_ring_scenario(
            cfg, N,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            detection_latency=2e-6,
        )

    r = timed(benchmark, run)
    markers = [m for m, _v in r.value(0)["root_completions"]]
    emit(
        "Fig. 8 canonical sequence",
        f"root completions (marker,value): {r.value(0)['root_completions']}\n"
        f"rank1 resends: {r.value(1)['resends']}  "
        f"rank3 forwards: {r.value(3)['forwards']}",
    )
    assert markers.count(1) == 2  # iteration 1 completed twice
    assert r.value(1)["resends"] == 1
