"""KERNEL — microbenchmarks of the simulator's hot primitives.

Where the ``bench_fig*`` files measure paper scenarios end to end, these
series isolate the four kernel mechanisms the scenarios are built from,
so a regression can be attributed to the mechanism that caused it:

* ``handoff`` — the raw fiber suspend/resume round-trip, measured once
  on the active backend and once per available backend
  (``_threaded``/``_greenlet``): the thread-baton fallback pays an OS
  context switch (~10µs/handoff) where the greenlet backend does a
  single-threaded C stack switch (zero locks) that must come in at
  least 10x faster — asserted whenever greenlet is importable;
* ``event_queue`` — schedule/pop/cancel throughput of the tuple-keyed
  binary heap;
* ``matching`` — posted-receive lookup, indexed ``(source, tag)`` fast
  path vs the wildcard fallback scan;
* ``trace_overhead`` — an identical simulation with tracing on vs off
  (off must cost nothing per event).

All four land in ``BENCH_simperf.json`` like every other series.
"""

from __future__ import annotations

import time

import pytest

from repro.simmpi import (
    Simulation,
    greenlet_available,
    make_fiber,
    resolve_backend,
)
from repro.simmpi.clock import EventQueue
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.matching import MatchingEngine, Message
from conftest import emit, timed


def _handoff_us(backend: str, n: int) -> float:
    """Microseconds per suspend/resume round-trip on *backend*."""
    fiber = None

    def target() -> None:
        for _ in range(n):
            fiber.yield_to_scheduler()

    fiber = make_fiber(backend, name="bench-handoff", index=0, target=target)
    t0 = time.perf_counter()
    fiber.start()
    for _ in range(n + 1):  # n yields + the final return
        fiber.resume_and_wait()
    per_us = (time.perf_counter() - t0) / n * 1e6
    fiber.join()
    fiber.release()
    assert fiber.finished() and fiber.error is None
    return per_us


def _bench_handoff(benchmark, backend: str, title: str) -> None:
    N = 2000
    stats = {}

    def run() -> None:
        stats["per_handoff_us"] = _handoff_us(backend, N)

    timed(benchmark, run, fibers=backend)
    emit(
        title,
        f"{N} handoffs, {stats['per_handoff_us']:.2f} us per round-trip "
        f"({backend} backend)",
    )


def bench_kernel_handoff(benchmark):
    """Raw suspend/resume round-trips on the *active* backend."""
    _bench_handoff(benchmark, resolve_backend(None),
                   "kernel: fiber handoff round-trip")


def bench_kernel_handoff_threaded(benchmark):
    """The thread-baton fallback, pinned regardless of the default."""
    _bench_handoff(benchmark, "thread",
                   "kernel: fiber handoff round-trip (thread)")


def bench_kernel_handoff_greenlet(benchmark):
    """The greenlet backend, plus the >=10x-vs-thread acceptance gate."""
    if not greenlet_available():
        pytest.skip("greenlet not installed (pip install repro[fast])")
    _bench_handoff(benchmark, "greenlet",
                   "kernel: fiber handoff round-trip (greenlet)")
    # Acceptance gate: zero-lock stack switches must beat the OS
    # context switch by an order of magnitude on the same machine.
    thread_us = min(_handoff_us("thread", 2000) for _ in range(3))
    greenlet_us = min(_handoff_us("greenlet", 2000) for _ in range(3))
    speedup = thread_us / greenlet_us
    emit(
        "kernel: handoff backend speedup",
        (f"thread {thread_us:.2f} us vs greenlet {greenlet_us:.2f} us "
         f"per round-trip -> {speedup:.1f}x"),
    )
    assert speedup >= 10.0, (
        f"greenlet handoff only {speedup:.1f}x faster than thread "
        f"({greenlet_us:.2f} vs {thread_us:.2f} us); expected >= 10x"
    )


def bench_kernel_event_queue(benchmark):
    """Heap throughput: schedule+pop, plus a cancellation-heavy mix."""
    N = 20_000
    stats = {}

    def run() -> None:
        q = EventQueue()
        fn = lambda: None  # noqa: E731 - body cost is not the point
        t0 = time.perf_counter()
        for i in range(N):
            q.schedule(i * 1e-9, fn)
        while q:
            q.pop()
        stats["sched_pop_us"] = (time.perf_counter() - t0) / N * 1e6

        events = [q.schedule(i * 1e-9, fn) for i in range(N)]
        t0 = time.perf_counter()
        for ev in events[::2]:
            ev.cancel()
        popped = 0
        while q:  # pop() skips cancelled entries internally
            q.pop()
            popped += 1
        stats["cancel_mix_us"] = (time.perf_counter() - t0) / N * 1e6
        assert popped == N // 2
        assert q.cancelled_total == N // 2

    timed(benchmark, run)
    emit(
        "kernel: event queue",
        (f"schedule+pop {stats['sched_pop_us']:.3f} us/event; "
         f"50% cancelled mix {stats['cancel_mix_us']:.3f} us/event"),
    )


class _FakeRecv:
    """Just enough of a Request for the matching engine (peer + tag)."""

    __slots__ = ("peer", "tag")

    def __init__(self, peer: int, tag: int) -> None:
        self.peer = peer
        self.tag = tag


def _msg(src: int, tag: int, context: int = 0) -> Message:
    return Message(src=src, dst=0, tag=tag, context=context,
                   payload=None, nbytes=32)


def bench_kernel_matching(benchmark):
    """Indexed concrete (source, tag) lookup vs the wildcard fallback."""
    N = 5_000
    SRCS = 8
    stats = {}

    def run() -> None:
        # Concrete receives: one dict hit per deliver / post_recv.
        eng = MatchingEngine(rank=0)
        t0 = time.perf_counter()
        for i in range(N):
            src = i % SRCS
            eng.post_recv(_FakeRecv(src, tag=7), context=0)
            assert eng.deliver(_msg(src, tag=7)) is not None
        stats["concrete_us"] = (time.perf_counter() - t0) / N * 1e6

        # Wildcard receives: the fallback scans candidate buckets and
        # picks the oldest post — the worst case for the index.
        eng = MatchingEngine(rank=0)
        t0 = time.perf_counter()
        for i in range(N):
            eng.post_recv(_FakeRecv(ANY_SOURCE, ANY_TAG), context=0)
            assert eng.deliver(_msg(i % SRCS, tag=i % 3)) is not None
        stats["wildcard_us"] = (time.perf_counter() - t0) / N * 1e6

        # Unexpected-queue wildcard probe across several buckets.
        eng = MatchingEngine(rank=0)
        for i in range(SRCS):
            eng.deliver(_msg(i, tag=i))
        t0 = time.perf_counter()
        for _ in range(N):
            assert eng.probe(ANY_SOURCE, ANY_TAG, context=0) is not None
        stats["probe_us"] = (time.perf_counter() - t0) / N * 1e6

    timed(benchmark, run)
    emit(
        "kernel: matching engine",
        (f"concrete post+deliver {stats['concrete_us']:.3f} us; "
         f"wildcard post+deliver {stats['wildcard_us']:.3f} us; "
         f"wildcard probe over {SRCS} buckets {stats['probe_us']:.3f} us"),
    )


def bench_kernel_trace_overhead(benchmark):
    """The same message-heavy run with tracing on vs off."""
    stats = {}

    def _ping(mpi) -> None:
        comm = mpi.comm_world
        other = 1 - comm.rank
        for i in range(400):
            if comm.rank == i % 2:
                comm.send(i, dest=other)
            else:
                comm.recv(source=other)

    def run() -> None:
        for label, enabled in (("on", True), ("off", False)):
            t0 = time.perf_counter()
            sim = Simulation(nprocs=2, trace_enabled=enabled)
            r = sim.run(_ping)
            stats[label] = time.perf_counter() - t0
            assert (len(r.trace) > 0) == enabled
            # Observability is strictly opt-in: without metrics=True the
            # kernel must allocate no obs state at all (regardless of
            # the trace switch).
            assert sim.runtime.obs is None
            assert r.metrics is None

    timed(benchmark, run)
    ratio = stats["on"] / stats["off"] if stats["off"] else float("inf")
    emit(
        "kernel: trace overhead (800 sends)",
        (f"trace on {stats['on'] * 1e3:.2f} ms, "
         f"off {stats['off'] * 1e3:.2f} ms ({ratio:.2f}x)"),
    )
