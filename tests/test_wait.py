"""Completion-operation semantics: wait/waitany/waitall/waitsome/test."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    ErrorHandler,
    RankFailStopError,
    Simulation,
    test as mpi_test,
    testany as mpi_testany,
    wait,
    waitall,
    waitany,
    waitsome,
)
from tests.conftest import run_sim


class TestWaitany:
    def test_returns_first_completed_index(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("b", dest=1, tag=2)
            else:
                r1 = comm.irecv(source=0, tag=1)
                r2 = comm.irecv(source=0, tag=2)
                idx, status = waitany([r1, r2])
                return (idx, r2.data)

        assert run_sim(main, 2).value(1) == (1, "b")

    def test_error_carries_index(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                r_data = comm.irecv(source=1, tag=1)
                r_watch = comm.irecv(source=2, tag=1)
                try:
                    waitany([r_data, r_watch])
                except RankFailStopError as e:
                    return e.index
            elif comm.rank == 1:
                mpi.compute(2.0)
                comm.send("late", dest=0, tag=1)
            else:
                mpi.compute(0.5)  # killed at 0.2

        r = run_sim(main, 3, kills=[(2, 0.2)])
        assert r.value(0) == 1

    def test_mixed_owner_rejected(self):
        def main(mpi):
            comm = mpi.comm_world
            return comm.irecv(source=0, tag=1)

        # Construct two sims is overkill; check the guard directly:
        def main2(mpi):
            comm = mpi.comm_world
            r = comm.irecv(source=0, tag=1)
            with pytest.raises(ValueError):
                waitany([])
            r.cancel()
            return "ok"

        assert run_sim(main2, 1).value(0) == "ok"


class TestWaitall:
    def test_collects_all(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                for t in range(3):
                    comm.send(t * 10, dest=1, tag=t)
            else:
                reqs = [comm.irecv(source=0, tag=t) for t in range(3)]
                statuses = waitall(reqs)
                assert len(statuses) == 3
                return [r.data for r in reqs]

        assert run_sim(main, 2).value(1) == [0, 10, 20]

    def test_raises_lowest_failed_index_after_all_complete(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                r1 = comm.irecv(source=1, tag=1)  # will error (1 dies)
                r2 = comm.irecv(source=2, tag=1)  # will complete
                try:
                    waitall([r1, r2])
                except RankFailStopError as e:
                    return (e.index, r2.done, r2.data)
            elif comm.rank == 1:
                mpi.compute(1.0)
            else:
                comm.send("ok", dest=0, tag=1)

        r = run_sim(main, 3, kills=[(1, 0.1)])
        assert r.value(0) == (0, True, "ok")


class TestWaitsome:
    def test_returns_completed_subset(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(1, dest=1, tag=1)
                comm.send(2, dest=1, tag=2)
            else:
                reqs = [comm.irecv(source=0, tag=t) for t in (1, 2, 3)]
                done = waitsome(reqs)
                indices = sorted(i for i, _ in done)
                for _, s in done:
                    assert s.error.name == "SUCCESS"
                reqs[2].cancel()
                return indices

        out = run_sim(main, 2).value(1)
        assert out and set(out) <= {0, 1}


class TestTest:
    def test_test_returns_none_then_status(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.compute(1e-6)
                comm.send("x", dest=1)
            else:
                req = comm.irecv(source=0)
                first = mpi_test(req)
                while mpi_test(req) is None:
                    pass
                return (first, req.data)

        first, data = run_sim(main, 2).value(1)
        assert first is None and data == "x"

    def test_testany(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("y", dest=1, tag=7)
            else:
                reqs = [comm.irecv(source=0, tag=t) for t in (6, 7)]
                while (hit := mpi_testany(reqs)) is None:
                    pass
                idx, _status = hit
                reqs[0].cancel()
                return (idx, reqs[1].data)

        assert run_sim(main, 2).value(1) == (1, "y")

    def test_test_loop_advances_virtual_time(self):
        # A test() spin across an idle gap must terminate (bounded polls
        # in virtual time), not livelock.
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.compute(1e-4)
                comm.send("late", dest=1)
            else:
                req = comm.irecv(source=0)
                polls = 0
                while mpi_test(req) is None:
                    polls += 1
                return polls

        polls = run_sim(main, 2).value(1)
        assert polls > 0


class TestWaitTiming:
    def test_wait_advances_to_completion_time(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.compute(1.0)
                comm.send("x", dest=1)
            else:
                req = comm.irecv(source=0)
                wait(req)
                return mpi.now

        assert run_sim(main, 2).value(1) >= 1.0
