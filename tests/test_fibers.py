"""The pluggable fiber backend layer: selection, parity, and lifecycle.

Three groups of guarantees:

* **selection** — ``Simulation(fibers=...)`` beats ``$REPRO_FIBERS``
  beats ``auto``; unknown names fail loudly; a known-but-uninstalled
  backend (greenlet on a stdlib-only install) fails with instructions.
* **parity** — traces, digests, and sweep reports are byte-identical
  across backends and across the serial/pooled boundary with
  ``REPRO_FIBERS`` exported; the backend label itself stays out of
  digests and ``perf_dict`` (host detail, like ``wall_s``).
* **lifecycle** — kill-before-first-slice never runs user code, a kill
  mid-slice unwinds ``finally`` blocks, shutdown unwinds a blocked
  fiber, and ``release`` drops the application target; all asserted per
  importable backend through the raw fiber API.
"""

from __future__ import annotations

import inspect

import pytest

from repro.faults import run_campaign
from repro.parallel import RingScenario, StandardRingInvariants
from repro.perf import BackendMismatch, PerfCounters, diff_benchmarks
from repro.simmpi import (
    FIBER_BACKENDS,
    BaseFiber,
    Simulation,
    available_backends,
    default_backend,
    greenlet_available,
    make_fiber,
    resolve_backend,
)
from repro.simmpi.errors import ProcessKilled, SimShutdown
from repro.simmpi.fibers import FiberState, _released

BACKENDS = available_backends()


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


class TestResolution:
    def test_registry_names(self):
        assert FIBER_BACKENDS == ("thread", "greenlet")
        assert "thread" in BACKENDS  # the stdlib fallback always works

    def test_auto_resolves_to_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIBERS", raising=False)
        assert resolve_backend("auto") == default_backend()
        assert resolve_backend(None) == default_backend()

    def test_env_var_consulted_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIBERS", "thread")
        assert resolve_backend(None) == "thread"
        monkeypatch.setenv("REPRO_FIBERS", "")  # empty means auto
        assert resolve_backend(None) == default_backend()

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIBERS", "bogus")  # would raise if read
        assert resolve_backend("thread") == "thread"
        sim = Simulation(nprocs=2, fibers="thread")
        assert sim.runtime.fiber_backend == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown fiber backend"):
            resolve_backend("bogus")

    def test_known_but_uninstalled_backend_rejected(self):
        if greenlet_available():
            pytest.skip("greenlet installed; the import gate cannot trip")
        with pytest.raises(RuntimeError, match="repro\\[fast\\]"):
            resolve_backend("greenlet")

    def test_simulation_records_backend_in_perf(self):
        r = Simulation(nprocs=2, fibers="thread").run(
            lambda mpi: mpi.comm_world.rank
        )
        assert r.perf is not None
        assert r.perf.fibers == "thread"

    def test_env_var_drives_simulation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIBERS", "thread")
        sim = Simulation(nprocs=2)
        assert sim.runtime.fiber_backend == "thread"

    def test_join_has_no_timeout_parameter(self):
        # Satellite: the dead `timeout` parameter is gone for good.
        assert list(inspect.signature(BaseFiber.join).parameters) == ["self"]


# ----------------------------------------------------------------------
# Parity (host details out of digests; backends interchangeable)
# ----------------------------------------------------------------------


def _ring_run(fibers: str):
    _, main = RingScenario(nprocs=4, iters=3)()
    sim = Simulation(nprocs=4, fibers=fibers)
    sim.kill(2, at_time=5e-6)  # a failure makes the trace interesting
    return sim.run(main, on_deadlock="return")


class TestParity:
    def test_perf_dict_excludes_host_details(self):
        from repro.analysis.digest import perf_dict

        r = Simulation(nprocs=2, fibers="thread").run(
            lambda mpi: mpi.comm_world.rank
        )
        d = perf_dict(r)
        assert "wall_s" not in d
        assert "fibers" not in d
        assert d["handoffs"] > 0

    @pytest.mark.parametrize("fibers", BACKENDS)
    def test_trace_and_digest_match_thread_baseline(self, fibers):
        from repro.analysis.digest import result_digest

        base = _ring_run("thread")
        other = _ring_run(fibers)
        assert other.trace.format() == base.trace.format()
        assert result_digest(other) == result_digest(base)

    def test_serial_and_pooled_campaign_reports_identical(self, monkeypatch):
        # Satellite: REPRO_FIBERS exported, report byte-identical across
        # the worker-pool boundary (workers inherit the environment).
        monkeypatch.setenv("REPRO_FIBERS", "thread")

        def campaign(workers):
            return run_campaign(
                RingScenario(nprocs=4, iters=3),
                seeds=range(8),
                horizon=8e-6,
                invariants=StandardRingInvariants(3, 4),
                workers=workers,
            ).format()

        assert campaign(None) == campaign(2)


# ----------------------------------------------------------------------
# PerfCounters backend label semantics
# ----------------------------------------------------------------------


class TestPerfLabel:
    def test_add_adopts_and_mixes(self):
        a, b = PerfCounters(), PerfCounters()
        b.fibers = "thread"
        a.add(b)
        assert a.fibers == "thread"  # "" adopts the other side
        c = PerfCounters()
        c.fibers = "greenlet"
        a.add(c)
        assert a.fibers == "mixed"  # conflicting labels collapse

    def test_delta_is_numeric_only(self):
        a, b = PerfCounters(), PerfCounters()
        a.fibers = "thread"
        a.handoffs = 5
        d = a.delta(b)
        assert "fibers" not in d
        assert d["handoffs"] == 5

    def test_format_reports_backend(self):
        a = PerfCounters()
        a.fibers = "thread"
        assert "thread" in a.format()


# ----------------------------------------------------------------------
# bench-diff refusal across backends
# ----------------------------------------------------------------------


def _series(name, wall, backend):
    return {
        name: {"min_wall_s": wall, "counters": {"fibers": backend}}
    }


class TestBenchDiffRefusal:
    def test_mismatched_backends_refused(self):
        with pytest.raises(BackendMismatch, match="not comparable"):
            diff_benchmarks(
                _series("s", 1.0, "thread"), _series("s", 0.1, "greenlet")
            )

    def test_same_backend_compares(self):
        deltas = diff_benchmarks(
            _series("s", 1.0, "thread"), _series("s", 0.5, "thread")
        )
        assert deltas[0].rel_change == pytest.approx(-0.5)

    def test_unlabeled_legacy_series_compare_freely(self):
        deltas = diff_benchmarks(
            {"s": {"min_wall_s": 1.0}}, _series("s", 0.5, "greenlet")
        )
        assert deltas[0].rel_change == pytest.approx(-0.5)

    def test_disjoint_series_never_conflict(self):
        deltas = diff_benchmarks(
            _series("old", 1.0, "thread"), _series("new", 0.5, "greenlet")
        )
        assert {d.status for d in deltas} == {"removed", "added"}


# ----------------------------------------------------------------------
# Lifecycle through the raw fiber API, per backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestLifecycle:
    def test_kill_before_first_slice_never_runs_user_code(self, backend):
        ran = []
        f = make_fiber(backend, name="t", index=0,
                       target=lambda: ran.append(1))
        f.start()
        f.kill_pending = True
        f.resume_and_wait()
        assert ran == []
        assert f.state is FiberState.FAILED
        f.join()
        f.release()

    def test_kill_mid_slice_unwinds_finally_blocks(self, backend):
        log = []
        f = None

        def target():
            try:
                log.append("enter")
                f.yield_to_scheduler()
                log.append("unreachable")
            finally:
                log.append("finally")

        f = make_fiber(backend, name="t", index=0, target=target)
        f.start()
        f.resume_and_wait()  # runs to the yield
        assert log == ["enter"]
        f.kill_pending = True
        f.resume_and_wait()  # unwinds with ProcessKilled
        assert log == ["enter", "finally"]
        assert f.state is FiberState.FAILED
        assert f.error is None  # kill is not an application error
        f.join()

    def test_shutdown_unwinds_blocked_fiber(self, backend):
        f = None

        def target():
            f.yield_to_scheduler()

        f = make_fiber(backend, name="t", index=0, target=target)
        f.start()
        f.resume_and_wait()
        f.shutdown_pending = True
        f.resume_and_wait()
        assert f.state is FiberState.DONE  # shutdown is a clean exit
        assert f.error is None
        f.join()

    def test_pending_exceptions_reach_the_fiber(self, backend):
        seen = []
        f = None

        def target():
            try:
                f.yield_to_scheduler()
            except ProcessKilled:
                seen.append("killed")
                raise
            except SimShutdown:  # pragma: no cover - not this test
                seen.append("shutdown")
                raise

        f = make_fiber(backend, name="t", index=0, target=target)
        f.start()
        f.resume_and_wait()
        f.kill_pending = True
        f.resume_and_wait()
        assert seen == ["killed"]

    def test_release_after_finish_drops_target(self, backend):
        f = make_fiber(backend, name="t", index=0, target=lambda: None)
        f.start()
        f.resume_and_wait()
        assert f.finished()
        f.release()
        assert f._target is _released

    def test_release_while_running_is_a_safe_noop(self, backend):
        f = None

        def target():
            f.yield_to_scheduler()

        f = make_fiber(backend, name="t", index=0, target=target)
        f.start()
        f.resume_and_wait()
        target_ref = f._target
        f.release()  # still blocked: must not drop the target
        assert f._target is target_ref
        f.shutdown_pending = True
        f.resume_and_wait()
        f.release()
        assert f._target is _released
