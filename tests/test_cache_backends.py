"""The pluggable cache store backends (:mod:`repro.cache.store`).

PR 7 split :class:`~repro.cache.RunCache` from its storage: sharded
JSON files (the original layout) and a single SQLite WAL database now
sit behind one :class:`~repro.cache.CacheStore` interface.  This suite
pins the *contract* both must satisfy — byte-identical warm sweeps
(serial and pooled), sorted backend-independent key listings, the full
``stats``/``gc``/``verify`` maintenance surface, concurrent-writer
safety — plus the selection precedence (explicit > env > auto-detect)
and ``migrate`` in both directions.  Every behavioural test is
parameterized over both backends; a backend that cannot pass this file
cannot be selected.
"""

from __future__ import annotations

import base64
import pickle
import threading

import pytest

from repro import perf
from repro.cache import (
    BACKENDS,
    CachedRunner,
    RunCache,
    detect_backend,
    job_key,
    make_store,
)
from repro.cache.store import CORRUPT, KEY_FORMAT
from repro.cli import main
from repro.faults import run_campaign
from repro.parallel import ProcessPoolRunner
from tests.conftest import RING_INVARIANTS, RING_SCENARIO


@pytest.fixture(params=list(BACKENDS))
def backend(request):
    return request.param


@pytest.fixture
def cache(tmp_path, backend):
    return RunCache(tmp_path / "cache", backend=backend)


def _campaign(cache=None, runner=None, runs=6):
    return run_campaign(
        RING_SCENARIO,
        seeds=range(runs),
        horizon=2e-5,
        invariants=RING_INVARIANTS,
        cache=cache,
        runner=runner,
    )


def _fill(cache, n=5):
    """Store n synthetic entries; returns their keys (sorted)."""
    jobs = [("probe", i) for i in range(n)]
    keys = [f"{i:02x}" * 32 for i in range(n)]
    cache.put_many(
        (key, {"value": i}, job) for i, (key, job) in enumerate(zip(keys, jobs))
    )
    return sorted(keys)


# ---------------------------------------------------------------------------
# The sweep-facing contract: warm results identical, serial and pooled
# ---------------------------------------------------------------------------


class TestSweepContract:
    def test_cold_warm_byte_identical(self, cache):
        off = _campaign()
        before = perf.CACHE.snapshot()
        cold = _campaign(cache=cache)
        d = perf.CACHE.delta(before)
        assert d["hits"] == 0 and d["misses"] == d["stores"] > 0
        before = perf.CACHE.snapshot()
        warm = _campaign(cache=cache)
        d = perf.CACHE.delta(before)
        assert d["misses"] == d["stores"] == 0 and d["hits"] > 0
        assert off.format() == cold.format() == warm.format()

    def test_warm_pooled_identical(self, cache):
        serial = _campaign(cache=cache)
        pooled = _campaign(
            cache=cache,
            runner=CachedRunner(cache=cache, inner=ProcessPoolRunner(workers=2)),
        )
        assert serial.format() == pooled.format()


# ---------------------------------------------------------------------------
# Store primitives: batched ops, sorted keys, stats
# ---------------------------------------------------------------------------


class TestStorePrimitives:
    def test_get_many_preserves_order_and_misses(self, cache):
        keys = _fill(cache)
        probe = [keys[3], "ff" * 32, keys[0]]
        statuses = [s for s, _ in cache.get_many(probe)]
        assert statuses == ["hit", "miss", "hit"]

    def test_keys_sorted_and_backend_independent(self, tmp_path):
        listings = []
        for name in BACKENDS:
            c = RunCache(tmp_path / name, backend=name)
            expected = _fill(c)
            listing = list(c.keys())
            assert listing == expected
            listings.append(listing)
        assert listings[0] == listings[1]

    def test_corrupt_entry_classified_stale(self, cache, backend):
        (key,) = _fill(cache, n=1)
        if backend == "json":
            cache._path(key).write_text("not json {")
        else:
            conn = cache.store._conn()
            conn.execute(
                "UPDATE entries SET data = 'not json {', "
                "payload = 'not json {'", ()
            )
            conn.commit()
        assert cache.store.read(key) is CORRUPT
        assert cache.fetch(key) == ("stale", None)
        assert cache.get_many([key]) == [("stale", None)]

    def test_stats(self, cache, backend):
        _fill(cache)
        s = cache.stats()
        assert s["backend"] == backend
        assert s["format"] == KEY_FORMAT
        assert s["entries"] == 5
        assert s["total_bytes"] > 0
        assert s["oldest_mtime"] <= s["newest_mtime"]

    def test_clear_then_detect_fresh(self, cache, backend):
        _fill(cache)
        cache.store.clear()
        assert list(cache.keys()) == []
        assert detect_backend(cache.root) is None


# ---------------------------------------------------------------------------
# Maintenance: gc and verify
# ---------------------------------------------------------------------------


class TestMaintenance:
    def test_gc_drops_stale_format_and_old(self, cache):
        keys = _fill(cache, n=3)
        # Stale format: rewrite one raw entry under an older format tag.
        entry = cache.entry(keys[0])
        entry["format"] = "repro.cache/0"
        cache.store.write(keys[0], entry)
        # Old entry: push one stored_at into the distant past.
        entry = cache.entry(keys[1])
        entry["stored_at"] = 1.0
        cache.store.write(keys[1], entry)
        counts = cache.gc(max_age_s=86400.0)
        assert counts == {"removed_stale": 1, "removed_old": 1}
        assert list(cache.keys()) == [keys[2]]

    def test_verify_catches_payload_corruption(self, cache):
        _campaign(cache=cache, runs=2)
        key = next(iter(cache.keys()))
        entry = cache.entry(key)
        entry["payload"]["hung"] = not entry["payload"]["hung"]
        cache.store.write(key, entry)
        results = {r.key: r for r in cache.verify()}
        assert not results[key].ok
        assert any("hung" in d for d in results[key].diffs)
        assert all(r.ok for k, r in results.items() if k != key)

    def test_verify_catches_key_drift(self, cache):
        _campaign(cache=cache, runs=1)
        key = next(iter(cache.keys()))
        drifted = "ab" * 32
        cache.store.write(drifted, cache.entry(key))
        bad = [r for r in cache.verify() if r.key == drifted]
        assert len(bad) == 1 and not bad[0].ok
        assert "key drift" in (bad[0].error or "")

    def test_verify_catches_unpicklable_job(self, cache):
        _campaign(cache=cache, runs=1)
        key = next(iter(cache.keys()))
        entry = cache.entry(key)
        entry["job_pickle"] = base64.b64encode(b"junk").decode("ascii")
        cache.store.write(key, entry)
        (r,) = cache.verify()
        assert not r.ok and "unpicklable" in (r.error or "")


# ---------------------------------------------------------------------------
# Concurrency: parallel writers may interleave, never tear
# ---------------------------------------------------------------------------


class TestConcurrentWriters:
    def test_parallel_put_many_batches(self, cache):
        def writer(wid: int) -> None:
            cache.put_many(
                (f"{wid}{i:01x}" * 32, {"w": wid, "i": i}, ("job", wid, i))
                for i in range(8)
            )

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        keys = list(cache.keys())
        assert len(keys) == 32
        statuses = [s for s, _ in cache.get_many(keys)]
        assert statuses == ["hit"] * 32


# ---------------------------------------------------------------------------
# Selection precedence and migration
# ---------------------------------------------------------------------------


class TestSelection:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "json")
        c = RunCache(tmp_path / "c", backend="sqlite")
        assert c.backend == "sqlite"

    def test_env_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert RunCache(tmp_path / "c").backend == "sqlite"

    def test_auto_detect_on_reopen(self, tmp_path, backend):
        root = tmp_path / "c"
        _fill(RunCache(root, backend=backend))
        assert detect_backend(root) == backend
        assert RunCache(root).backend == backend

    def test_fresh_dir_defaults_to_json(self, tmp_path):
        assert RunCache(tmp_path / "nothing-here").backend == "json"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            RunCache(tmp_path / "c", backend="parquet")


class TestMigrate:
    def test_round_trip_preserves_raw_entries(self, tmp_path):
        cache = RunCache(tmp_path / "c", backend="json")
        _campaign(cache=cache, runs=3)
        originals = {k: cache.entry(k) for k in cache.keys()}

        counts = cache.migrate("sqlite")
        assert counts["migrated"] == len(originals)
        assert cache.backend == "sqlite"
        assert RunCache(tmp_path / "c").backend == "sqlite"  # detection flips
        assert {k: cache.entry(k) for k in cache.keys()} == originals

        cache.migrate("json")
        assert cache.backend == "json"
        assert {k: cache.entry(k) for k in cache.keys()} == originals
        # Migrated entries still verify: stored_at/job_pickle survived raw.
        assert all(r.ok for r in cache.verify())

    def test_migrate_to_dest_leaves_source(self, tmp_path):
        cache = RunCache(tmp_path / "src", backend="json")
        keys = _fill(cache)
        counts = cache.migrate("sqlite", dest=tmp_path / "dst")
        assert counts == {"migrated": 5, "skipped": 0, "backend": "sqlite"}
        assert cache.backend == "json" and list(cache.keys()) == keys
        dst = RunCache(tmp_path / "dst")
        assert dst.backend == "sqlite" and list(dst.keys()) == keys

    def test_corrupt_entries_do_not_survive(self, tmp_path):
        cache = RunCache(tmp_path / "c", backend="json")
        keys = _fill(cache, n=3)
        cache._path(keys[0]).write_text("not json {")
        counts = cache.migrate("sqlite")
        assert counts["migrated"] == 2 and counts["skipped"] == 1
        assert list(cache.keys()) == keys[1:]

    def test_same_backend_in_place_is_noop(self, cache, backend):
        _fill(cache)
        assert cache.migrate(backend)["migrated"] == 0
        assert len(list(cache.keys())) == 5


# ---------------------------------------------------------------------------
# CLI: stats names the backend; migrate converts in place
# ---------------------------------------------------------------------------


class TestCli:
    def test_stats_names_backend(self, tmp_path, capsys, backend):
        root = tmp_path / "c"
        _fill(RunCache(root, backend=backend), n=2)
        assert main(["cache", "--cache-dir", str(root), "stats"]) == 0
        out = capsys.readouterr().out
        assert f"backend:  {backend}" in out
        assert "entries:  2" in out
        assert "bytes" in out

    def test_migrate_cli(self, tmp_path, capsys):
        root = tmp_path / "c"
        _fill(RunCache(root, backend="json"), n=4)
        rc = main(["cache", "--cache-dir", str(root), "migrate",
                   "--to", "sqlite"])
        assert rc == 0
        assert "migrated 4 entr(ies) to sqlite" in capsys.readouterr().out
        assert detect_backend(root) == "sqlite"

    def test_cache_backend_flag_publishes_env(self, tmp_path, capsys,
                                              monkeypatch):
        # setenv (not delenv) so teardown restores the pre-test state even
        # though main() itself rewrites the variable ("" is falsy to the
        # precedence chain, so it does not select a backend).
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "")
        root = tmp_path / "c"
        rc = main(["campaign", "--nprocs", "4", "--iters", "3",
                   "--runs", "4", "--cache", "--cache-dir", str(root),
                   "--cache-backend", "sqlite"])
        assert rc == 0
        capsys.readouterr()
        assert detect_backend(root) == "sqlite"


# ---------------------------------------------------------------------------
# Protocol participation in the key surface (PR 8 regression)
# ---------------------------------------------------------------------------


class TestProtocolKeying:
    """``protocol`` is a determinism-relevant spec field: jobs that
    differ only in the recovery family must never share a cache entry —
    a cached RTS outcome served for a shrink/repair run would be a
    silent wrong answer at campaign scale."""

    def _job(self, protocol, **kw):
        from repro.protocols import ProtocolCompareJob

        base = dict(nprocs=5, iters=4, seed=1, horizon=2e-5)
        base.update(kw)
        return ProtocolCompareJob(protocol=protocol, **base)

    def test_protocol_distinguishes_job_keys(self):
        from repro.protocols import PROTOCOLS

        keys = {job_key(self._job(p)) for p in PROTOCOLS}
        assert len(keys) == len(PROTOCOLS)

    def test_ring_scenario_protocol_distinguishes_job_keys(self):
        from repro.faults.campaign import CampaignJob
        from repro.parallel import RingScenario

        def key_for(protocol):
            return job_key(
                CampaignJob(
                    factory=RingScenario(
                        nprocs=5, iters=4, protocol=protocol
                    ),
                    seed=1,
                    horizon=2e-5,
                    kills_per_run=1,
                    eligible_ranks=(1, 2, 3, 4),
                )
            )

        assert key_for("rts") != key_for("shrink_repair")
        # ...while everything else equal still dedups.
        assert key_for("rts") == key_for("rts")

    def test_spares_distinguish_job_keys(self):
        assert job_key(
            self._job("partial_restart", spares=2)
        ) != job_key(self._job("partial_restart", spares=3))

    def test_cached_rts_outcome_not_served_for_other_protocol(self, cache):
        from repro.parallel import make_runner

        runner = CachedRunner(cache=cache, inner=make_runner(None))
        (rts_rec,) = runner.run([self._job("rts")])
        before = perf.CACHE.snapshot()
        (sr_rec,) = runner.run([self._job("shrink_repair")])
        d = perf.CACHE.delta(before)
        assert d["hits"] == 0 and d["misses"] == 1 and d["stores"] == 1
        assert sr_rec.protocol == "shrink_repair"
        assert rts_rec.kills == sr_rec.kills  # same schedule, fresh run
        # And the warm hit goes to the *right* entry.
        before = perf.CACHE.snapshot()
        (again,) = runner.run([self._job("shrink_repair")])
        assert perf.CACHE.delta(before)["hits"] == 1
        assert again == sr_rec


def test_make_store_rejects_unknown(tmp_path):
    with pytest.raises(ValueError):
        make_store("tar", tmp_path)


def test_job_key_still_covers_pickled_jobs(tmp_path):
    """Sanity anchor: entries written through the public API recompute
    to their own key (the property `verify` leans on)."""
    cache = RunCache(tmp_path / "c", backend="sqlite")
    _campaign(cache=cache, runs=2)
    for key in cache.keys():
        entry = cache.entry(key)
        job = pickle.loads(base64.b64decode(entry["job_pickle"]))
        assert job_key(job) == key
