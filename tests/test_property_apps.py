"""Property-based tests for the domain apps and jittered detectors."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import (
    AbftConfig,
    HeatConfig,
    make_abft_main,
    make_heat_main,
    reference_result,
)
from repro.ft import comm_validate_all
from repro.simmpi import ErrorHandler, Simulation

COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHeatProperties:
    @given(
        victim=st.integers(1, 4),
        kill_time=st.floats(min_value=1e-7, max_value=1.4e-5,
                            allow_nan=False),
        lat=st.sampled_from([0.0, 5e-7]),
    )
    @settings(**COMMON)
    def test_survivors_finite_bounded_and_done(self, victim, kill_time, lat):
        cfg = HeatConfig(cells_per_rank=6, steps=12)
        sim = Simulation(nprocs=6, detection_latency=lat)
        sim.kill(victim, at_time=kill_time)
        r = sim.run(make_heat_main(cfg), on_deadlock="return")
        assert not r.hung
        assert set(r.completed_ranks) == set(range(6)) - r.failed_ranks
        for i in r.completed_ranks:
            f = np.array(r.value(i)["field"])
            assert np.all(np.isfinite(f))
            # Maximum principle: values stay within [boundary, initial max].
            assert np.all(f >= -1e-12) and np.all(f <= 1.0 + 1e-12)

    @given(
        victims=st.sets(st.integers(0, 5), min_size=1, max_size=3),
        data=st.data(),
        lat=st.sampled_from([0.0, 5e-7, 2e-6]),
        seed=st.integers(0, 2),
    )
    @settings(**COMMON)
    def test_multi_victim_exchange_never_hangs(self, victims, data, lat, seed):
        cfg = HeatConfig(cells_per_rank=4, steps=10)
        sim = Simulation(nprocs=6, seed=seed, policy="random",
                         detection_latency=lat)
        for v in sorted(victims):
            t = data.draw(st.floats(min_value=1e-7, max_value=1.2e-5,
                                    allow_nan=False))
            sim.kill(v, at_time=t)
        r = sim.run(make_heat_main(cfg), on_deadlock="return")
        assert not r.hung, (victims, lat, seed, r.deadlock)
        assert set(r.completed_ranks) == set(range(6)) - r.failed_ranks
        for i in r.completed_ranks:
            f = np.array(r.value(i)["field"])
            assert np.all(np.isfinite(f))

    @given(kill_time=st.floats(min_value=1e-7, max_value=1.4e-5,
                               allow_nan=False))
    @settings(**COMMON)
    def test_heat_never_increases(self, kill_time):
        # Total heat on surviving subdomains can only decrease relative to
        # the failure-free total (loss of a subdomain + diffusion out).
        cfg = HeatConfig(cells_per_rank=6, steps=12)
        clean = Simulation(nprocs=6).run(make_heat_main(cfg))
        clean_total = sum(
            clean.value(i)["total_heat"] for i in clean.completed_ranks
        )
        sim = Simulation(nprocs=6)
        sim.kill(3, at_time=kill_time)
        r = sim.run(make_heat_main(cfg), on_deadlock="return")
        total = sum(r.value(i)["total_heat"] for i in r.completed_ranks)
        assert total <= clean_total + 1e-9


class TestAbftProperties:
    @given(
        victim=st.integers(0, 3),
        hit=st.integers(1, 4),
        probe=st.sampled_from(["iter_top", "computed", "iter_done"]),
    )
    @settings(**COMMON)
    def test_single_failure_always_exact(self, victim, hit, probe):
        from repro.faults import KillAtProbe

        cfg = AbftConfig(iterations=4)
        sim = Simulation(nprocs=5)
        sim.add_injector(KillAtProbe(rank=victim, probe=probe, hit=hit))
        r = sim.run(make_abft_main(cfg), on_deadlock="return")
        assert not r.hung
        rep = r.value(min(r.completed_ranks))
        assert not rep["degraded"]
        for it in range(cfg.iterations):
            ref = reference_result(cfg, 5, it)
            got = rep["results"][it]["blocks"]
            assert all(
                k in got and np.allclose(got[k], ref[k]) for k in ref
            ), (victim, probe, hit, it)


class TestJitteredDetector:
    @given(
        jitter_seed=st.integers(0, 50),
        victims=st.sets(st.integers(1, 5), min_size=1, max_size=3),
    )
    @settings(**COMMON)
    def test_consensus_agreement_under_jitter(self, jitter_seed, victims):
        # Per-(observer, failed) pseudo-random detection latencies: the
        # detector stays accurate and complete but wildly asymmetric.
        import random

        rng = random.Random(jitter_seed)
        table: dict[tuple[int, int], float] = {}

        def lat(observer: int, failed: int) -> float:
            key = (observer, failed)
            if key not in table:
                table[key] = rng.uniform(0.0, 5e-6)
            return table[key]

        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            return comm_validate_all(comm)

        sim = Simulation(nprocs=6, detection_latency=lat)
        for i, v in enumerate(sorted(victims)):
            sim.kill(v, at_time=1e-7 * (i + 1))
        r = sim.run(main, on_deadlock="return")
        assert not r.hung
        counts = set(r.values().values())
        assert len(counts) <= 1
