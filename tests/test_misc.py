"""Odds and ends: error objects, request lifecycle, cost models in situ."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    ErrorClass,
    ErrorHandler,
    HierarchicalCostModel,
    MPIError,
    RankFailStopError,
    Simulation,
    Status,
    TraceKind,
    wait,
)
from repro.simmpi.request import Request, RequestKind
from tests.conftest import run_sim


class TestErrorObjects:
    def test_mpi_error_defaults(self):
        e = MPIError("boom")
        assert e.error_class is ErrorClass.ERR_OTHER
        assert e.rank is None and e.peer is None and e.index is None
        assert "boom" in repr(e)

    def test_rank_fail_stop_class(self):
        e = RankFailStopError(peer=3)
        assert e.error_class is ErrorClass.ERR_RANK_FAIL_STOP
        assert e.peer == 3

    def test_error_class_str(self):
        assert str(ErrorClass.ERR_RANK_FAIL_STOP) == "ERR_RANK_FAIL_STOP"

    def test_status_repr(self):
        s = Status(source=1, tag=2, count=3)
        text = repr(s)
        assert "source=1" in text and "count=3" in text


class TestRequestLifecycle:
    def test_double_complete_rejected(self):
        def main(mpi):
            req = Request(RequestKind.GENERIC, mpi)
            req.complete(0.0)
            with pytest.raises(RuntimeError):
                req.complete(1.0)
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"

    def test_on_complete_fires_immediately_when_done(self):
        def main(mpi):
            req = Request(RequestKind.GENERIC, mpi)
            req.complete(0.0, data=42)
            seen = []
            req.on_complete(lambda r: seen.append(r.data))
            return seen

        assert run_sim(main, 1).value(0) == [42]

    def test_failed_helper_and_repr(self):
        def main(mpi):
            req = Request(RequestKind.RECV, mpi, mpi.comm_world, peer=1, tag=9)
            assert "pending" in repr(req)
            req.complete(0.0, error=ErrorClass.ERR_RANK_FAIL_STOP)
            assert req.failed()
            assert "error" in repr(req)
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_success_error_normalized_to_none(self):
        def main(mpi):
            req = Request(RequestKind.GENERIC, mpi)
            req.complete(0.0, error=ErrorClass.SUCCESS)
            assert req.error is None and not req.failed()
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"


class TestProcessHelpers:
    def test_log_records_user_trace(self):
        def main(mpi):
            mpi.log("hello from rank", extra=1)
            return "ok"

        r = run_sim(main, 2)
        users = r.trace.filter(kind=TraceKind.USER)
        assert len(users) == 2
        assert users[0].detail["message"] == "hello from rank"

    def test_sleep_is_compute(self):
        def main(mpi):
            mpi.sleep(1.5)
            return mpi.now

        assert run_sim(main, 1).value(0) >= 1.5

    def test_repr(self):
        def main(mpi):
            return repr(mpi)

        assert "rank=0" in run_sim(main, 1).value(0)


class TestHierarchicalCostInSitu:
    def test_intra_vs_inter_node_latency_observed(self):
        cost = HierarchicalCostModel(
            latency=1e-7, remote_latency=1e-4, ranks_per_node=2,
            byte_cost=0.0, remote_byte_cost=0.0, overhead=0.0,
        )

        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("near", dest=1)   # same node (0,1)
                comm.send("far", dest=2)    # different node
            elif comm.rank in (1, 2):
                _, status = comm.recv(source=0)
                return mpi.now

        r = Simulation(nprocs=4, cost=cost).run(main)
        near, far = r.value(1), r.value(2)
        assert far > near
        assert far >= 1e-4

    def test_message_size_affects_remote_cost(self):
        cost = HierarchicalCostModel(
            latency=1e-7, remote_latency=1e-7,
            byte_cost=0.0, remote_byte_cost=1e-6,
            ranks_per_node=1, overhead=0.0,
        )

        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(b"x" * 1000, dest=1)
            else:
                comm.recv(source=0)
                return mpi.now

        r = Simulation(nprocs=2, cost=cost).run(main)
        assert r.value(1) >= 1000 * 1e-6


class TestSendrecvUnderFailure:
    def test_sendrecv_raises_when_source_dies(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                with pytest.raises(RankFailStopError):
                    comm.sendrecv("out", dest=2, source=1)
                return "caught"
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            comm.recv(source=0)

        r = run_sim(main, 3, kills=[(1, 0.5)])
        assert r.value(0) == "caught"


class TestIprobeFailurePaths:
    def test_iprobe_raises_on_failed_specific_source(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            with pytest.raises(RankFailStopError):
                comm.iprobe(source=1)
            return "ok"

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == "ok"

    def test_probe_unblocked_by_failure_detection(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            with pytest.raises(RankFailStopError):
                comm.probe(source=1)
            return mpi.now

        r = run_sim(main, 2, kills=[(1, 0.5)])
        assert r.value(0) == pytest.approx(0.5)


class TestValidateRankAfterCollectiveValidate:
    def test_state_is_null_everywhere_after_validate_all(self):
        from repro.ft import RankState, comm_validate_all, rank_state

        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_all(comm)
            return rank_state(comm, 2)

        r = run_sim(main, 4, kills=[(2, 0.5)])
        from repro.ft import RankState

        assert all(
            r.value(i) is RankState.NULL for i in (0, 1, 3)
        )
