"""Collective operations over the simulated point-to-point layer."""

from __future__ import annotations

import pytest

from repro.simmpi import ErrorHandler, InvalidArgumentError, RankFailStopError
from repro.simmpi.collectives import OPS, _binomial_children, _binomial_parent
from repro.ft import comm_validate_all
from tests.conftest import run_sim

SIZES = [1, 2, 3, 4, 5, 8, 13]


class TestBinomialTree:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 7, 8, 16, 33])
    @pytest.mark.parametrize("root", [0, 1])
    def test_tree_is_consistent(self, m, root):
        if root >= m:
            pytest.skip("root outside tree")
        # Every non-root node's parent lists it as a child; the tree spans.
        seen = {root}
        for node in range(m):
            if node == root:
                assert _binomial_parent(node, root, m) is None
                continue
            parent = _binomial_parent(node, root, m)
            assert parent is not None
            assert node in _binomial_children(parent, root, m)
            seen.add(node)
        assert seen == set(range(m))

    @pytest.mark.parametrize("m", [2, 5, 9, 16])
    def test_no_cycles(self, m):
        for node in range(1, m):
            hops = 0
            cur: int | None = node
            while cur is not None:
                cur = _binomial_parent(cur, 0, m)
                hops += 1
                assert hops <= m
            assert hops <= m.bit_length() + 1


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_barrier_synchronizes(self, n):
        def main(mpi):
            comm = mpi.comm_world
            mpi.compute(comm.rank * 1e-6)  # staggered arrival
            comm.barrier()
            return mpi.now

        r = run_sim(main, n)
        times = [r.value(i) for i in range(n)]
        # Nobody leaves before the last arrival.
        assert min(times) >= (n - 1) * 1e-6


class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_bcast_from_zero(self, n):
        def main(mpi):
            comm = mpi.comm_world
            return comm.bcast("payload" if comm.rank == 0 else None, root=0)

        r = run_sim(main, n)
        assert all(v == "payload" for v in r.values().values())

    def test_bcast_from_nonzero_root(self):
        def main(mpi):
            comm = mpi.comm_world
            return comm.bcast(comm.rank if comm.rank == 3 else None, root=3)

        r = run_sim(main, 6)
        assert all(v == 3 for v in r.values().values())

    def test_bcast_invalid_root(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            with pytest.raises(InvalidArgumentError):
                comm.bcast("x", root=77)
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"


class TestReduceFamily:
    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_sum(self, n):
        def main(mpi):
            comm = mpi.comm_world
            return comm.reduce(comm.rank + 1, "sum", root=0)

        r = run_sim(main, n)
        assert r.value(0) == n * (n + 1) // 2
        for i in range(1, n):
            assert r.value(i) is None

    @pytest.mark.parametrize("op,expect", [("max", 4), ("min", 0), ("prod", 0)])
    def test_reduce_ops(self, op, expect):
        def main(mpi):
            return mpi.comm_world.reduce(mpi.rank, op, root=0)

        assert run_sim(main, 5).value(0) == expect

    def test_reduce_custom_callable_order(self):
        # Non-commutative op: string concat must respect rank order.
        def main(mpi):
            return mpi.comm_world.reduce(str(mpi.rank), lambda a, b: a + b, root=0)

        assert run_sim(main, 6).value(0) == "012345"

    @pytest.mark.parametrize("n", SIZES)
    def test_allreduce(self, n):
        def main(mpi):
            return mpi.comm_world.allreduce(mpi.rank, "sum")

        r = run_sim(main, n)
        expect = n * (n - 1) // 2
        assert all(v == expect for v in r.values().values())

    def test_unknown_op_rejected(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            with pytest.raises(InvalidArgumentError):
                comm.allreduce(1, "bogus")
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_ops_registry(self):
        assert OPS["sum"](2, 3) == 5
        assert OPS["land"](1, 0) is False
        assert OPS["lor"](0, 1) is True
        assert OPS["band"](6, 3) == 2
        assert OPS["bor"](6, 3) == 7


class TestGatherScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather(self, n):
        def main(mpi):
            return mpi.comm_world.gather(mpi.rank * 2, root=0)

        r = run_sim(main, n)
        assert r.value(0) == [2 * i for i in range(n)]

    def test_gather_nonzero_root(self):
        def main(mpi):
            return mpi.comm_world.gather(mpi.rank, root=2)

        r = run_sim(main, 4)
        assert r.value(2) == [0, 1, 2, 3]
        assert r.value(0) is None

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter(self, n):
        def main(mpi):
            comm = mpi.comm_world
            values = [i * i for i in range(n)] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        r = run_sim(main, n)
        assert [r.value(i) for i in range(n)] == [i * i for i in range(n)]

    def test_scatter_wrong_length(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                with pytest.raises(InvalidArgumentError):
                    comm.scatter([1], root=0)
            return "ok"

        r = run_sim(main, 3, on_deadlock="return")
        assert r.outcomes[0].value == "ok"


class TestAllgatherAlltoallScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_allgather(self, n):
        def main(mpi):
            return mpi.comm_world.allgather(mpi.rank + 100)

        r = run_sim(main, n)
        expect = [100 + i for i in range(n)]
        assert all(v == expect for v in r.values().values())

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_alltoall(self, n):
        def main(mpi):
            comm = mpi.comm_world
            out = comm.alltoall([(comm.rank, j) for j in range(n)])
            return out

        r = run_sim(main, n)
        for i in range(n):
            assert r.value(i) == [(j, i) for j in range(n)]

    @pytest.mark.parametrize("n", SIZES)
    def test_scan(self, n):
        def main(mpi):
            return mpi.comm_world.scan(mpi.rank + 1, "sum")

        r = run_sim(main, n)
        for i in range(n):
            assert r.value(i) == (i + 1) * (i + 2) // 2


class TestCollectiveFailureSemantics:
    def test_collective_disabled_after_known_failure(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 3:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            with pytest.raises(RankFailStopError):
                comm.barrier()
            return "disabled"

        r = run_sim(main, 4, kills=[(3, 0.5)], on_deadlock="return")
        assert all(r.value(i) == "disabled" for i in range(3))

    def test_validate_all_reenables_over_survivors(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            n = comm_validate_all(comm)
            total = comm.allreduce(1, "sum")
            gathered = comm.gather(comm.rank, root=0)
            return (n, total, gathered)

        r = run_sim(main, 5, kills=[(2, 0.5)])
        n, total, gathered = r.value(0)
        assert n == 1
        assert total == 4
        assert gathered == [0, 1, None, 3, 4]
        assert r.value(1)[0:2] == (1, 4)

    def test_bcast_from_validated_root_is_proc_null(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_all(comm)
            # Root 0 is dead+validated: bcast is a no-op returning input.
            return comm.bcast("mine", root=0)

        r = run_sim(main, 3, kills=[(0, 0.5)])
        assert r.value(1) == "mine" and r.value(2) == "mine"

    def test_mid_collective_failure_errors_survivors(self):
        # Rank dies while inside the barrier: peers that must hear from it
        # error out (possibly not all — inconsistent return codes are
        # legitimate, the paper's §II point).
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(0.5)  # dies inside/near the barrier
            try:
                comm.barrier()
                return "ok"
            except RankFailStopError:
                return "err"

        r = run_sim(main, 4, kills=[(1, 0.5)], on_deadlock="return")
        outcomes = [r.value(i) for i in r.completed_ranks]
        assert "err" in outcomes
