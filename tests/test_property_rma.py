"""Property-based test: random one-sided programs vs a numpy model."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.simmpi import ErrorHandler, Simulation, wait
from repro.simmpi.rma import win_create

N = 4
WIN = 6

#: One random op: (origin, kind, target, offset, value).
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, N - 1),
        st.sampled_from(["put", "acc_sum", "acc_max"]),
        st.integers(0, N - 1),
        st.integers(0, WIN - 1),
        st.integers(-5, 5).map(float),
    ),
    max_size=25,
)


def model(ops) -> dict[int, np.ndarray]:
    """Sequential numpy reference: windows after applying ops in order."""
    wins = {r: np.zeros(WIN) for r in range(N)}
    for _origin, kind, target, offset, value in ops:
        if kind == "put":
            wins[target][offset] = value
        elif kind == "acc_sum":
            wins[target][offset] += value
        else:
            wins[target][offset] = max(wins[target][offset], value)
    return wins


class TestRMAAgainstModel:
    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_epoch_results_match_model(self, ops):
        # Each rank issues its own ops in program order; ops of different
        # origins to different (target, offset) cells commute, so make
        # the property deterministic by keeping per-cell writers unique.
        seen_cells: dict[tuple[int, int], int] = {}
        filtered = []
        for op in ops:
            origin, kind, target, offset, _v = op
            cell = (target, offset)
            writer = seen_cells.setdefault(cell, origin)
            if writer == origin:
                filtered.append(op)
        per_rank: dict[int, list] = {r: [] for r in range(N)}
        for op in filtered:
            per_rank[op[0]].append(op)

        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            win = win_create(comm, size=WIN)
            for _origin, kind, target, offset, value in per_rank[comm.rank]:
                if kind == "put":
                    wait(win.put([value], target=target, offset=offset))
                elif kind == "acc_sum":
                    wait(win.accumulate([value], target=target,
                                        offset=offset, op="sum"))
                else:
                    wait(win.accumulate([value], target=target,
                                        offset=offset, op="max"))
            win.fence()
            return win.local.tolist()

        r = Simulation(nprocs=N).run(main)
        expected = model(filtered)
        for rank in range(N):
            assert np.allclose(r.value(rank), expected[rank]), (
                rank, filtered
            )
