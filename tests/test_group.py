"""Group objects, comm creation from groups, and freed-handle checks."""

from __future__ import annotations

import pytest

from repro.simmpi import InvalidArgumentError, Simulation, UNDEFINED
from repro.simmpi.group import Group
from tests.conftest import run_sim


class TestGroupAlgebra:
    def test_basic_shape(self):
        g = Group([3, 1, 4])
        assert g.size == 3
        assert g.ranks == (3, 1, 4)
        assert len(g) == 3
        assert 4 in g and 2 not in g

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Group([1, 1, 2])

    def test_rank_translation(self):
        g = Group([5, 7, 9])
        assert g.rank_of_world(7) == 1
        assert g.rank_of_world(6) == UNDEFINED
        assert g.world_rank(2) == 9
        with pytest.raises(InvalidArgumentError):
            g.world_rank(3)

    def test_translate_ranks(self):
        a = Group([0, 1, 2, 3])
        b = Group([2, 3, 4])
        assert a.translate_ranks([0, 2, 3], b) == [UNDEFINED, 0, 1]

    def test_incl_preserves_order(self):
        g = Group([0, 1, 2, 3, 4])
        assert g.incl([4, 0, 2]).ranks == (4, 0, 2)

    def test_excl_keeps_original_order(self):
        g = Group([0, 1, 2, 3, 4])
        assert g.excl([1, 3]).ranks == (0, 2, 4)

    def test_union(self):
        a = Group([0, 2])
        b = Group([2, 3])
        assert a.union(b).ranks == (0, 2, 3)

    def test_intersection(self):
        a = Group([0, 1, 2, 3])
        b = Group([3, 1])
        assert a.intersection(b).ranks == (1, 3)

    def test_difference(self):
        a = Group([0, 1, 2, 3])
        b = Group([1, 3])
        assert a.difference(b).ranks == (0, 2)

    def test_equality_and_hash(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])
        assert hash(Group([1, 2])) == hash(Group([1, 2]))


class TestCommCreate:
    def test_create_subcomm_from_group(self):
        def main(mpi):
            comm = mpi.comm_world
            world = comm.group_obj()
            evens = world.incl([0, 2, 4])
            sub = comm.create(evens)
            if sub is None:
                return None
            return (sub.rank, sub.group, sub.allreduce(1, "sum"))

        r = run_sim(main, 5)
        assert r.value(0) == (0, (0, 2, 4), 3)
        assert r.value(2) == (1, (0, 2, 4), 3)
        assert r.value(1) is None
        assert r.value(3) is None

    def test_group_obj_matches_membership(self):
        def main(mpi):
            comm = mpi.comm_world
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.group_obj().ranks

        r = run_sim(main, 4)
        assert r.value(0) == (0, 2)
        assert r.value(1) == (1, 3)


class TestCommFree:
    def test_freed_comm_rejects_operations(self):
        from repro.simmpi import ErrorHandler

        def main(mpi):
            comm = mpi.comm_world
            d = comm.dup()
            d.set_errhandler(ErrorHandler.ERRORS_RETURN)
            d.free()
            with pytest.raises(InvalidArgumentError):
                d.send("x", dest=(comm.rank + 1) % comm.size)
            with pytest.raises(InvalidArgumentError):
                d.irecv(source=0)
            with pytest.raises(InvalidArgumentError):
                d.barrier()
            return "ok"

        r = run_sim(main, 2)
        assert all(v == "ok" for v in r.values().values())

    def test_world_still_usable_after_dup_freed(self):
        def main(mpi):
            comm = mpi.comm_world
            d = comm.dup()
            d.free()
            return comm.allreduce(1, "sum")

        r = run_sim(main, 3)
        assert all(v == 3 for v in r.values().values())
