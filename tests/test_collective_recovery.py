"""Recovery blocks around every collective (paper §II, Randell [10]).

The paper notes ``MPI_Comm_validate_all`` "is useful in creating recovery
blocks for sets of collective operations".  These tests run the *agreed*
recovery-block pattern (:func:`repro.ft.run_recovery_block`) around every
collective in the library with a victim dying mid-run, and assert the
survivors always complete with a sensible survivor-set result.

One test pins the negative result that motivated the helper: the naive
try/validate/retry loop deadlocks when the failing collective returns
success at some ranks and an error at others, because the retry decision
is then inconsistent and collective call order desynchronizes.
"""

from __future__ import annotations

import pytest

from repro.ft import comm_validate_all, run_recovery_block
from repro.simmpi import ErrorHandler, RankFailStopError, Simulation
from tests.conftest import run_sim

N = 5
VICTIM = 2
SURVIVORS = [r for r in range(N) if r != VICTIM]


def _run_collective_scenario(op_builder, kill_time=2.0e-6, rounds=6):
    """Loop agreed recovery blocks at every rank; victim dies mid-run."""

    def main(mpi):
        comm = mpi.comm_world
        comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
        # Every rank (the victim included, until it dies) runs the same
        # loop — collective programs must be call-matched at all ranks.
        results = []
        for _ in range(rounds):
            mpi.compute(1e-6)
            results.append(run_recovery_block(comm, op_builder(mpi, comm)))
        return results

    return run_sim(main, N, kills=[(VICTIM, kill_time)], on_deadlock="return")


class TestAgreedRecoveryBlocks:
    def test_barrier(self):
        r = _run_collective_scenario(lambda mpi, comm: comm.barrier)
        assert not r.hung
        assert set(r.completed_ranks) == set(SURVIVORS)

    def test_allreduce(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.allreduce(1, "sum"))
        )
        assert not r.hung
        finals = [r.value(i)[-1] for i in SURVIVORS]
        assert all(v == len(SURVIVORS) for v in finals)

    def test_bcast(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (
                lambda: comm.bcast("x" if comm.rank == 0 else None, root=0)
            )
        )
        assert not r.hung
        assert all(r.value(i)[-1] == "x" for i in SURVIVORS)

    def test_reduce(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.reduce(1, "sum", root=0))
        )
        assert not r.hung
        assert r.value(0)[-1] == len(SURVIVORS)

    def test_gather(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.gather(comm.rank, root=0))
        )
        assert not r.hung
        final = r.value(0)[-1]
        assert final[VICTIM] is None
        assert [final[i] for i in SURVIVORS] == SURVIVORS

    def test_scatter(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (
                lambda: comm.scatter(
                    list(range(comm.size)) if comm.rank == 0 else None,
                    root=0,
                )
            )
        )
        assert not r.hung
        assert all(r.value(i)[-1] == i for i in SURVIVORS)

    def test_allgather(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.allgather(comm.rank))
        )
        assert not r.hung
        final = r.value(0)[-1]
        assert [final[i] for i in SURVIVORS] == SURVIVORS

    def test_alltoall(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (
                lambda: comm.alltoall(
                    [(comm.rank, j) for j in range(comm.size)]
                )
            )
        )
        assert not r.hung
        final = r.value(0)[-1]
        for j in SURVIVORS:
            assert final[j] == (j, 0)

    def test_scan(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.scan(1, "sum"))
        )
        assert not r.hung
        finals = {i: r.value(i)[-1] for i in SURVIVORS}
        assert finals[0] == 1
        assert finals[N - 1] == len(SURVIVORS)

    def test_exscan(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.exscan(1, "sum"))
        )
        assert not r.hung
        finals = {i: r.value(i)[-1] for i in SURVIVORS}
        assert finals[0] is None
        assert finals[N - 1] == len(SURVIVORS) - 1

    def test_reduce_scatter(self):
        r = _run_collective_scenario(
            lambda mpi, comm: (
                lambda: comm.reduce_scatter([1] * comm.size)
            )
        )
        assert not r.hung
        assert all(r.value(i)[-1] == len(SURVIVORS) for i in SURVIVORS)

    @pytest.mark.parametrize("kill_time", [5e-7, 1.5e-6, 3.2e-6, 5.1e-6])
    def test_allreduce_many_windows(self, kill_time):
        r = _run_collective_scenario(
            lambda mpi, comm: (lambda: comm.allreduce(1, "sum")),
            kill_time=kill_time,
        )
        assert not r.hung
        assert all(r.value(i)[-1] == len(SURVIVORS) for i in SURVIVORS)

    @pytest.mark.parametrize("mode", ["full", "early"])
    def test_both_consensus_modes(self, mode):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            out = []
            for _ in range(4):
                mpi.compute(1e-6)
                out.append(
                    run_recovery_block(
                        comm, lambda: comm.allreduce(1, "sum"), mode=mode
                    )
                )
            return out

        r = run_sim(main, N, kills=[(VICTIM, 2e-6)], on_deadlock="return")
        assert not r.hung
        assert all(r.value(i)[-1] == len(SURVIVORS) for i in SURVIVORS)


class TestNaivePatternIsBroken:
    def test_naive_retry_desynchronizes_and_hangs(self):
        # The negative result: try/validate/retry without an agreed retry
        # decision.  In the window where the failing allreduce succeeds at
        # some ranks and errors at others, the erroring ranks consume an
        # extra collective call and the job deadlocks.
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            out = []
            for _ in range(6):
                mpi.compute(1e-6)
                while True:
                    try:
                        out.append(comm.allreduce(1, "sum"))
                        break
                    except RankFailStopError:
                        comm_validate_all(comm)
            return out

        # Asymmetry needs the detector to lag: ranks whose part of the
        # collective completed before their detection return success
        # while the rest error and retry.
        r = run_sim(
            main, N, kills=[(VICTIM, 3.2e-6)], detection_latency=1e-6,
            on_deadlock="return",
        )
        assert r.hung  # deterministic for this window; the helper's raison d'etre
