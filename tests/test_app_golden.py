"""Golden-trace determinism for the four bundled domain applications.

``tests/test_determinism_golden.py`` pins the ring's behaviour byte for
byte; this file extends the same guarantee to the application layer:
under the default scheduling policy, each app's full semantic trace must
match the checked-in golden file exactly, across kernel rewrites and
across runs.  The scenarios go through the picklable
:class:`~repro.parallel.AppScenario` spec — the same path the fuzzer
takes — so golden drift also flags spec regressions.

Regenerate (only when an *intentional* semantic change lands) with::

    PYTHONPATH=src python tests/test_app_golden.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.parallel import AppScenario

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: One golden file per app, all through the default ("rr") policy.
CASES = [
    ("app_heat1d", AppScenario(app="heat1d", nprocs=4, size=4, steps=3)),
    ("app_ring_allreduce",
     AppScenario(app="ring_allreduce", nprocs=4, size=4, steps=3)),
    ("app_abft_matvec",
     AppScenario(app="abft_matvec", nprocs=4, size=4, steps=3)),
    ("app_manager_worker",
     AppScenario(app="manager_worker", nprocs=4, size=4)),
]


def _run_scenario(scenario: AppScenario) -> str:
    sim, main = scenario()
    result = sim.run(main, on_deadlock="return")
    assert not result.hung
    return result.trace.format() + "\n"


@pytest.mark.parametrize("stem,scenario", CASES, ids=[c[0] for c in CASES])
def test_app_trace_matches_golden(stem: str, scenario: AppScenario) -> None:
    golden = (GOLDEN_DIR / f"{stem}.txt").read_text()
    assert _run_scenario(scenario) == golden


@pytest.mark.parametrize("stem,scenario", CASES, ids=[c[0] for c in CASES])
def test_app_trace_stable_across_runs(
    stem: str, scenario: AppScenario
) -> None:
    assert _run_scenario(scenario) == _run_scenario(scenario)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden files")
    GOLDEN_DIR.mkdir(exist_ok=True)
    for stem, scenario in CASES:
        out = _run_scenario(scenario)
        (GOLDEN_DIR / f"{stem}.txt").write_text(out)
        print(f"wrote {stem}.txt ({len(out.splitlines())} lines)")
