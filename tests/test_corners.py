"""Corner cases: asymmetric detection, tiny rings, scale, repair stacking."""

from __future__ import annotations

import pytest

from repro.analysis import ring_summary, standard_ring_invariants
from repro.core import (
    RingConfig,
    RingVariant,
    Termination,
    make_ring_main,
    make_rootft_main,
)
from repro.faults import KillAtProbe, KillAtTime
from repro.simmpi import Simulation
from tests.conftest import run_sim


class TestTwoRankRing:
    """With two participants P_L == P_R: the watchdog is suppressed."""

    def test_failure_free(self):
        cfg = RingConfig(max_iter=4, termination=Termination.VALIDATE_ALL)
        r = run_sim(make_ring_main(cfg), 2)
        assert r.value(0)["root_completions"] == [(i, 2) for i in range(4)]

    def test_nonroot_death_aborts_lone_root(self):
        cfg = RingConfig(max_iter=6, termination=Termination.VALIDATE_ALL,
                         work_per_iter=1e-6)
        r = run_sim(
            make_ring_main(cfg), 2,
            injectors=[KillAtProbe(rank=1, probe="post_recv", hit=2)],
            on_deadlock="return",
        )
        # The root becomes alone: neighbor selection aborts, per Fig. 4.
        assert r.aborted is not None

    def test_three_to_two_shrink_keeps_watchdogless_pair_running(self):
        cfg = RingConfig(max_iter=6, termination=Termination.VALIDATE_ALL)
        r = run_sim(
            make_ring_main(cfg), 3,
            injectors=[KillAtProbe(rank=1, probe="post_recv", hit=2)],
            on_deadlock="return",
        )
        assert not r.hung
        markers = [m for m, _v in r.value(0)["root_completions"]]
        assert markers == list(range(6))


class TestAsymmetricDetection:
    def test_ring_survives_skewed_detector(self):
        # Downstream learns *much* later than upstream: resends arrive at
        # ranks that do not yet know the sender's right neighbor died.
        def lat(observer: int, failed: int) -> float:
            return 1e-7 if observer < 2 else 4e-6

        cfg = RingConfig(max_iter=5, termination=Termination.VALIDATE_ALL)
        r = run_sim(
            make_ring_main(cfg), 5,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            detection_latency=lat, on_deadlock="return",
        )
        assert not r.hung
        for inv in standard_ring_invariants(5, 5):
            assert inv(r) is None

    def test_rootft_with_late_detecting_successor(self):
        # The §III-D corner the last_discarded buffer exists for: the new
        # root's own detection of the root death lags its predecessor's,
        # so the recovery resend can arrive before the role change.
        def lat(observer: int, failed: int) -> float:
            if failed == 0 and observer == 1:
                return 6e-6  # successor is the last to learn
            return 1e-7

        cfg = RingConfig(max_iter=5, work_per_iter=1e-6)
        r = run_sim(
            make_rootft_main(cfg), 4,
            injectors=[KillAtProbe(rank=0, probe="root_post_recv", hit=2)],
            detection_latency=lat, on_deadlock="return",
        )
        assert not r.hung
        markers = [m for m, _v in r.value(1)["root_completions"]]
        assert markers and markers[-1] == 4

    @pytest.mark.parametrize("succ_lat", [1e-7, 2e-6, 6e-6, 1.2e-5])
    def test_rootft_latency_sweep(self, succ_lat):
        def lat(observer: int, failed: int) -> float:
            return succ_lat if observer == 1 else 1e-7

        cfg = RingConfig(max_iter=5, work_per_iter=1e-6)
        r = run_sim(
            make_rootft_main(cfg), 4,
            injectors=[KillAtProbe(rank=0, probe="root_post_send", hit=3)],
            detection_latency=lat, on_deadlock="return",
        )
        assert not r.hung, r.deadlock
        for inv in standard_ring_invariants(5, 4, allow_root_loss=True):
            assert inv(r) is None


class TestTaggedVariantUnderStress:
    def test_double_failure_windows(self):
        for hits in ((2, 3), (1, 2), (3, 3)):
            cfg = RingConfig(max_iter=4, variant=RingVariant.FT_TAGGED,
                             termination=Termination.VALIDATE_ALL)
            r = run_sim(
                make_ring_main(cfg), 6,
                injectors=[
                    KillAtProbe(rank=2, probe="post_send", hit=hits[0]),
                    KillAtProbe(rank=4, probe="post_recv", hit=hits[1]),
                ],
                detection_latency=1.5e-6, on_deadlock="return",
            )
            assert not r.hung
            markers = [m for m, _v in r.value(0)["root_completions"]]
            assert markers == list(range(4)), hits


class TestScale:
    def test_large_ring_failure_free(self):
        cfg = RingConfig(max_iter=3, termination=Termination.ROOT_BCAST)
        r = run_sim(make_ring_main(cfg), 48)
        assert r.value(0)["root_completions"] == [(i, 48) for i in range(3)]

    def test_large_ring_with_failures(self):
        cfg = RingConfig(max_iter=4, termination=Termination.VALIDATE_ALL,
                         work_per_iter=1e-7)
        r = run_sim(
            make_ring_main(cfg), 32,
            injectors=[
                KillAtProbe(rank=7, probe="post_recv", hit=2),
                KillAtProbe(rank=8, probe="post_recv", hit=2),
                KillAtProbe(rank=21, probe="post_send", hit=3),
            ],
            on_deadlock="return",
        )
        assert not r.hung
        s = ring_summary(r)
        assert s["distinct_markers"] == 4
        assert s["duplicate_completions"] == 0
        assert s["survivors"] == 29

    def test_large_ring_deterministic(self):
        def build():
            sim = Simulation(nprocs=24, seed=5, policy="random")
            sim.add_injector(KillAtTime(rank=11, time=2e-5))
            cfg = RingConfig(max_iter=3, termination=Termination.VALIDATE_ALL)
            return sim, make_ring_main(cfg)

        runs = []
        for _ in range(2):
            sim, main = build()
            runs.append(sim.run(main, on_deadlock="return"))
        assert runs[0].trace.keys() == runs[1].trace.keys()


class TestRepairStacking:
    def test_failures_in_consecutive_iterations_same_region(self):
        # Two adjacent ranks die one iteration apart: the second repair
        # must work over the topology produced by the first.
        cfg = RingConfig(max_iter=6, termination=Termination.VALIDATE_ALL)
        r = run_sim(
            make_ring_main(cfg), 6,
            injectors=[
                KillAtProbe(rank=3, probe="post_recv", hit=2),
                KillAtProbe(rank=2, probe="post_send", hit=3),
            ],
            on_deadlock="return",
        )
        assert not r.hung
        markers = [m for m, _v in r.value(0)["root_completions"]]
        assert markers == list(range(6))
        rep1 = r.value(1)
        # Rank 1 ends pointing past both dead neighbors.
        assert rep1["right"] == 4

    def test_every_other_rank_dies(self):
        cfg = RingConfig(max_iter=5, termination=Termination.VALIDATE_ALL,
                         work_per_iter=1e-6)
        injectors = [
            KillAtProbe(rank=r, probe="post_recv", hit=2)
            for r in (1, 3, 5, 7)
        ]
        r = run_sim(
            make_ring_main(RingConfig(max_iter=5,
                                      termination=Termination.VALIDATE_ALL)),
            8, injectors=injectors, on_deadlock="return",
        )
        assert not r.hung
        markers = [m for m, _v in r.value(0)["root_completions"]]
        assert markers == list(range(5))
        # Final circle: 4 survivors, value = 4.
        assert dict(r.value(0)["root_completions"])[4] == 4
