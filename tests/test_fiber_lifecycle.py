"""Fiber lifecycle across batches of simulations, on every backend.

A long in-process sweep (10k-run campaigns) must not accumulate fiber
resources.  The contract: ``Simulation.run`` retires every fiber on
**every** exit path — normal completion, deadlock return, fail-stop
kills, aborts, application errors, and budget overruns — and releases
the fibers' references to the application mains afterwards.

The whole module runs once per importable fiber backend (the autouse
fixture pins ``$REPRO_FIBERS``).  The thread-count assertions are the
sharp check for the thread-baton backend and hold trivially on the
greenlet backend, which never creates a thread; the target-release
assertions bite on both.
"""

from __future__ import annotations

import threading

import pytest

from repro.faults import KillAtProbe, run_campaign
from repro.parallel import RingScenario, StandardRingInvariants
from repro.simmpi import Simulation, available_backends
from repro.simmpi.errors import SimulationError
from repro.simmpi.runtime import SimulationLimitExceeded


@pytest.fixture(params=available_backends(), autouse=True)
def _each_backend(request, monkeypatch):
    """Run every test in this module once per importable backend."""
    monkeypatch.setenv("REPRO_FIBERS", request.param)
    return request.param


def _fiber_threads() -> list[str]:
    return [t.name for t in threading.enumerate() if t.name.startswith("rank-")]


def _assert_no_fiber_threads() -> None:
    assert _fiber_threads() == []


def _clean_main(mpi):
    comm = mpi.comm_world
    return comm.allreduce(comm.rank, "sum")


def _hang_main(mpi):
    comm = mpi.comm_world
    if comm.rank == 0:
        comm.recv(source=1)  # never sent
    return "done"


def _abort_main(mpi):
    if mpi.comm_world.rank == 0:
        mpi.abort(3)
    else:
        mpi.comm_world.recv(source=0)


def _error_main(mpi):
    if mpi.comm_world.rank == 1:
        raise RuntimeError("app bug")
    mpi.compute(1e-6)


def _barrier_main(mpi):
    comm = mpi.comm_world
    for _ in range(100):
        comm.barrier()


class TestThreadLifecycle:
    def test_batch_of_runs_releases_all_threads(self):
        """The satellite's regression: live threads before == after a batch
        of runs spanning every exit path."""
        before = threading.active_count()
        for i in range(20):
            Simulation(nprocs=4, seed=i).run(_clean_main)
            Simulation(nprocs=2, seed=i).run(_hang_main, on_deadlock="return")
            sim = Simulation(nprocs=3, seed=i)
            sim.kill(1, at_time=1e-6)
            sim.run(_clean_main, on_deadlock="return")
            Simulation(nprocs=3, seed=i).run(_abort_main, on_deadlock="return")
            with pytest.raises(SimulationError):
                Simulation(nprocs=3, seed=i).run(_error_main)
        assert threading.active_count() == before
        _assert_no_fiber_threads()

    def test_deadlock_raise_path_releases_threads(self):
        before = threading.active_count()
        for _ in range(5):
            with pytest.raises(Exception):
                Simulation(nprocs=2).run(_hang_main)  # on_deadlock="raise"
        assert threading.active_count() == before
        _assert_no_fiber_threads()

    def test_budget_overrun_releases_threads(self):
        before = threading.active_count()
        for _ in range(5):
            with pytest.raises(SimulationLimitExceeded):
                Simulation(nprocs=4, max_events=50).run(_barrier_main)
        assert threading.active_count() == before
        _assert_no_fiber_threads()

    def test_killed_at_probe_releases_threads(self):
        before = threading.active_count()
        for _ in range(10):
            sim, main = RingScenario(nprocs=4, iters=3)()
            sim.add_injector(KillAtProbe(rank=1, probe="post_recv", hit=1))
            sim.run(main, on_deadlock="return")
        assert threading.active_count() == before
        _assert_no_fiber_threads()

    def test_campaign_batch_releases_threads(self):
        """An in-process sweep — the workload the satellite names."""
        before = threading.active_count()
        run_campaign(
            RingScenario(nprocs=4, iters=3),
            seeds=range(25),
            horizon=8e-6,
            invariants=StandardRingInvariants(3, 4),
        )
        assert threading.active_count() == before
        _assert_no_fiber_threads()

    def test_fibers_release_application_target(self):
        """After a run, retained Simulation objects no longer pin mains."""
        sim = Simulation(nprocs=2)
        sim.run(_clean_main)
        from repro.simmpi.scheduler import _released

        for proc in sim.runtime.procs:
            assert proc.fiber is not None
            assert proc.fiber._target is _released
