"""Root-failure-tolerant ring (paper §III-D)."""

from __future__ import annotations

import pytest

from repro.core import RingConfig, make_ring_main, make_rootft_main
from repro.faults import KillAtProbe, KillAtTime
from tests.conftest import run_sim


def run_rootft(nprocs=4, max_iter=5, injectors=(), **kw):
    cfg = RingConfig(max_iter=max_iter)
    return run_sim(
        make_rootft_main(cfg), nprocs, injectors=injectors,
        on_deadlock="return", **kw,
    )


class TestFailureFree:
    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_identical_to_plain_ring(self, n):
        r = run_rootft(nprocs=n, max_iter=4)
        assert not r.hung
        assert r.value(0)["root_completions"] == [(i, n) for i in range(4)]
        assert r.value(0)["role"] == "root"


class TestRootDeath:
    def test_successor_takes_over_after_send(self):
        # Root dies after launching iteration 1; rank 1 recovers control
        # and leads the remaining iterations.
        r = run_rootft(
            injectors=[KillAtProbe(rank=0, probe="root_post_send", hit=2)]
        )
        assert not r.hung
        assert r.value(1)["role"] == "root"
        markers = [m for m, _ in r.value(1)["root_completions"]]
        # All five iterations are accounted for at the new root (iteration
        # 0's record died with the old root or is re-observed in recovery).
        assert markers[-1] == 4
        assert sorted(set(markers)) == markers  # strictly increasing

    def test_successor_takes_over_between_iterations(self):
        r = run_rootft(
            injectors=[KillAtProbe(rank=0, probe="root_post_recv", hit=2)]
        )
        assert not r.hung
        markers = [m for m, _ in r.value(1)["root_completions"]]
        assert markers[-1] == 4

    def test_root_death_at_first_send(self):
        # Nothing has circulated: the new root leads from iteration 0.
        r = run_rootft(
            injectors=[KillAtProbe(rank=0, probe="root_post_send", hit=1)]
        )
        assert not r.hung
        markers = [m for m, _ in r.value(1)["root_completions"]]
        assert markers[-1] == 4

    def test_cascading_root_deaths(self):
        # Root 0 dies, then its successor 1 dies too: rank 2 ends up root.
        r = run_rootft(
            nprocs=5,
            max_iter=6,
            injectors=[
                KillAtProbe(rank=0, probe="root_post_send", hit=2),
                KillAtProbe(rank=1, probe="root_post_send", hit=2),
            ],
        )
        assert not r.hung
        assert r.value(2)["role"] == "root"
        markers = [m for m, _ in r.value(2)["root_completions"]]
        assert markers[-1] == 5

    def test_root_and_nonroot_both_die(self):
        r = run_rootft(
            nprocs=6,
            max_iter=6,
            injectors=[
                KillAtProbe(rank=0, probe="root_post_recv", hit=2),
                KillAtProbe(rank=3, probe="post_send", hit=3),
            ],
        )
        assert not r.hung
        markers = [m for m, _ in r.value(1)["root_completions"]]
        assert markers[-1] == 5

    def test_time_based_root_kill(self):
        cfg = RingConfig(max_iter=8, work_per_iter=1e-6)
        r = run_sim(
            make_rootft_main(cfg), 5,
            injectors=[KillAtTime(rank=0, time=5.1e-6)],
            on_deadlock="return",
        )
        assert not r.hung
        new_root = next(
            i for i in r.completed_ranks if r.value(i)["role"] == "root"
        )
        assert new_root == 1
        assert [m for m, _ in r.value(1)["root_completions"]][-1] == 7


class TestRecoverySemantics:
    def test_recovery_consumes_predecessor_resend(self):
        # After the root dies between iterations, the highest alive rank's
        # watchdog triggers a resend that the new root uses to regain
        # control (the §III-D mechanism verbatim).
        r = run_rootft(
            injectors=[KillAtProbe(rank=0, probe="root_post_recv", hit=3)]
        )
        assert not r.hung
        rep3 = r.value(3)  # the predecessor of the dead root
        assert rep3["resends"] >= 1
        markers = [m for m, _ in r.value(1)["root_completions"]]
        # The recovered completion is the last iteration the old root led.
        assert 2 in markers

    def test_completion_values_stay_in_bounds(self):
        for hit in (1, 2, 3):
            r = run_rootft(
                injectors=[KillAtProbe(rank=0, probe="root_post_send", hit=hit)]
            )
            assert not r.hung
            for i in r.completed_ranks:
                for _m, v in r.value(i)["root_completions"]:
                    assert 1 <= v <= 4

    def test_two_survivors(self):
        r = run_rootft(
            nprocs=3,
            injectors=[KillAtProbe(rank=0, probe="root_post_send", hit=2)],
        )
        assert not r.hung
        assert set(r.completed_ranks) == {1, 2}
        markers = [m for m, _ in r.value(1)["root_completions"]]
        assert markers[-1] == 4
