"""Coverage-guided fuzzing (:mod:`repro.fuzz.coverage`).

Three layers pinned here: the *cell* primitives (the timing-free shape
digest and log-binned metric components that make two runs comparable),
the :class:`~repro.fuzz.CoverageMap`/corpus mechanics (novel-cell
admission, dedup), and the campaign driver — deterministic serial ==
pooled, and the PR's headline property: at equal budget the guided loop
discovers outcome classes that uniform sampling misses (the seeded
guided-vs-uniform test).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.fuzz import (
    CoverageJob,
    CoverageMap,
    CoverageReport,
    coverage_cell,
    coverage_fuzz,
    mutate_config,
    shape_digest,
)
from repro.fuzz.config import FuzzConfig, JitterSpec
from repro.fuzz.coverage import SHAPE_PREFIX, _bin
from repro.cli import main
from repro.parallel import ProcessPoolRunner, RingScenario

SCENARIO = RingScenario(nprocs=4, iters=3)
NAIVE = RingScenario(nprocs=4, iters=3, variant="naive")


def _config(jitter_seed=0):
    return FuzzConfig(
        SCENARIO,
        jitter=JitterSpec(seed=jitter_seed, overhead=0.1, latency=0.1),
    )


# ---------------------------------------------------------------------------
# Cell primitives
# ---------------------------------------------------------------------------


class TestShapeDigest:
    def test_deterministic(self):
        a, b = _config().run(), _config().run()
        assert shape_digest(a) == shape_digest(b)

    def test_coarser_than_result_digest(self):
        """Jitter reseeds move timestamps on every run, so the
        timing-sensitive ``result_digest`` is fresh per seed; the shape
        digest only moves when the event *order* moves — a coverage map
        keyed on it does not declare every jittered run novel."""
        from repro.analysis.digest import result_digest

        results = [_config(jitter_seed=s).run() for s in range(10)]
        full = {result_digest(r) for r in results}
        shapes = {shape_digest(r) for r in results}
        assert len(full) == 10
        assert len(shapes) < len(full)

    def test_distinguishes_fault_schedules(self):
        from repro.faults.schedule import KillSpec

        clean = FuzzConfig(NAIVE).run()
        killed = FuzzConfig(
            NAIVE,
            faults=(KillSpec(trigger="call", rank=2, call_no=3),),
        ).run()
        # A mid-run kill truncates rank 2's event sequence: new shape.
        assert shape_digest(clean) != shape_digest(killed)


class TestBinning:
    def test_log2_bins(self):
        assert [_bin(n) for n in (0, 1, 2, 3, 4, 7, 8, 1023)] == [
            0, 1, 2, 2, 3, 3, 4, 10,
        ]

    def test_cell_shape(self):
        job = CoverageJob(config=_config(), index=0)
        out = job()
        assert len(out.cell) == 5
        cls, shape, *bins = out.cell
        assert cls == "ok"
        assert len(shape) == SHAPE_PREFIX
        assert all(isinstance(b, int) and b >= 0 for b in bins)

    def test_cell_without_metrics_still_valid(self):
        result = _config().run()
        job = CoverageJob(config=_config(), index=0)
        cell = coverage_cell(job().outcome, result, None)
        assert cell[2] == cell[3] == 0  # metric bins collapse to zero


# ---------------------------------------------------------------------------
# Map and corpus mechanics
# ---------------------------------------------------------------------------


class TestCoverageMap:
    def test_novel_cell_detection(self):
        m = CoverageMap()
        cell = ("ok", "aabbccdd", 1, 2, 3)
        assert m.add(cell) is True
        assert m.add(cell) is False
        assert m.cells[cell] == 2
        assert len(m) == 1 and cell in m

    def test_outcome_classes(self):
        m = CoverageMap()
        m.add(("ok", "x", 0, 0, 0))
        m.add(("hang", "y", 0, 0, 0))
        m.add(("hang", "z", 0, 0, 0))
        assert m.outcome_classes == {"ok", "hang"}

    def test_to_dict_round_trips_counts(self):
        m = CoverageMap()
        m.add(("ok", "x", 0, 1, 2))
        m.add(("ok", "x", 0, 1, 2))
        assert m.to_dict() == {"ok/x/0/1/2": 2}

    def test_corpus_admits_only_novel_cells(self):
        rep = coverage_fuzz(NAIVE, budget=40, seed=0)
        # One corpus member per novel cell, never more.
        assert rep.corpus_size == rep.distinct_cells
        assert sum(rep.map.cells.values()) == rep.runs == 40


class TestMutators:
    def test_deterministic_and_productive(self):
        cfg = _config()
        kw = dict(horizon=1e-4, max_call=40, max_jitter=0.3, eligible=(1, 2, 3))
        a = mutate_config(cfg, random.Random(7), **kw)
        b = mutate_config(cfg, random.Random(7), **kw)
        assert a == b
        # Over many draws, mutation must actually move the config.
        rng = random.Random(0)
        assert any(mutate_config(cfg, rng, **kw) != cfg for _ in range(10))

    def test_mutant_stays_in_bounds(self):
        cfg = _config()
        rng = random.Random(3)
        kw = dict(horizon=1e-4, max_call=40, max_jitter=0.3, eligible=(1, 2))
        for _ in range(50):
            cfg = mutate_config(cfg, rng, **kw)
            assert all(k.rank in (1, 2) for k in cfg.faults)
            assert len(cfg.faults) <= 2


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------


class TestCoverageFuzz:
    def test_serial_equals_pooled(self):
        a = coverage_fuzz(NAIVE, budget=32, seed=3)
        b = coverage_fuzz(
            NAIVE, budget=32, seed=3, runner=ProcessPoolRunner(workers=2)
        )
        assert a.to_dict() == b.to_dict()

    def test_budget_respected(self):
        rep = coverage_fuzz(NAIVE, budget=17, seed=0, batch=5)
        assert rep.runs == 17

    def test_guided_beats_uniform_at_equal_budget(self):
        """The acceptance property: with feedback on, the corpus-mutation
        loop reaches outcome classes (here: the naive ring's rare abort)
        that blind sampling misses at the same budget.  Seeded and
        deterministic — this is a regression pin, not a statistics test;
        guided must also never do *worse* on any audited seed."""
        wins = 0
        for seed in range(4):
            g = coverage_fuzz(NAIVE, budget=60, seed=seed)
            u = coverage_fuzz(NAIVE, budget=60, seed=seed, guided=False)
            assert g.distinct_outcome_classes >= u.distinct_outcome_classes
            wins += g.distinct_outcome_classes > u.distinct_outcome_classes
        assert wins >= 2  # seeds 0, 2, 3 find the abort class; uniform never

    def test_uniform_baseline_matches_unguided_draws(self):
        """guided=False with an empty corpus is plain seeded sampling —
        same rng discipline, so the first batch of a guided run equals
        the uniform run's first batch (feedback only changes later
        batches)."""
        g = coverage_fuzz(NAIVE, budget=16, seed=5, batch=16)
        u = coverage_fuzz(NAIVE, budget=16, seed=5, batch=16, guided=False)
        assert g.map.to_dict() == u.map.to_dict()

    def test_report_round_trips_as_json(self, tmp_path):
        rep = coverage_fuzz(NAIVE, budget=24, seed=1)
        path = rep.write(tmp_path / "cov.json")
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.coverage/1"
        assert doc["runs"] == 24 and doc["guided"] is True
        assert doc["cells"] == rep.map.to_dict()
        assert len(doc["failing_configs"]) == len(rep.failures)

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_fuzz(NAIVE, budget=-1)
        with pytest.raises(ValueError):
            coverage_fuzz(NAIVE, budget=4, batch=0)
        with pytest.raises(ValueError):
            coverage_fuzz(NAIVE, budget=4, mutate_ratio=1.5)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCoverageCli:
    def test_coverage_flag(self, capsys, tmp_path):
        out_file = tmp_path / "cov.json"
        rc = main([
            "fuzz", "--nprocs", "4", "--iters", "3", "--variant", "naive",
            "--runs", "30", "--coverage", "--coverage-out", str(out_file),
        ])
        out = capsys.readouterr().out
        assert rc == 1  # the naive ring hangs: failures found
        assert out.startswith("coverage fuzz (guided) seed=0: 30 run(s)")
        assert json.loads(out_file.read_text())["format"] == "repro.coverage/1"

    def test_coverage_uniform_flag(self, capsys):
        rc = main([
            "fuzz", "--nprocs", "4", "--iters", "3", "--runs", "10",
            "--coverage", "--coverage-uniform",
        ])
        assert rc == 0  # ft_marker survives everything here
        assert "coverage fuzz (uniform)" in capsys.readouterr().out
