"""Non-blocking barrier and the §III-C ibarrier-termination demonstration."""

from __future__ import annotations

import pytest

from repro.core import RingConfig, Termination, make_ring_main
from repro.faults import KillAtProbe
from repro.simmpi import (
    ErrorHandler,
    RankFailStopError,
    Simulation,
    wait,
    waitany,
)
from repro.simmpi.nbcoll import ibarrier
from tests.conftest import run_sim


def returning(mpi):
    mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
    return mpi.comm_world


class TestIbarrier:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_synchronizes(self, n):
        def main(mpi):
            comm = returning(mpi)
            mpi.compute(comm.rank * 1e-6)
            wait(ibarrier(comm))
            return mpi.now

        r = run_sim(main, n)
        times = [r.value(i) for i in range(n)]
        assert min(times) >= (n - 1) * 1e-6

    def test_overlaps_p2p(self):
        # The point of the non-blocking form: progress happens in the
        # engine while the application thread does sends/receives.
        def main(mpi):
            comm = returning(mpi)
            req = ibarrier(comm)
            if comm.rank == 0:
                comm.send("work", dest=1)
            elif comm.rank == 1:
                data, _ = comm.recv(source=0)
                assert data == "work"
            wait(req)
            return "ok"

        r = run_sim(main, 3)
        assert all(v == "ok" for v in r.values().values())

    def test_repeated_barriers(self):
        def main(mpi):
            comm = returning(mpi)
            for _ in range(4):
                wait(ibarrier(comm))
            return "ok"

        r = run_sim(main, 4)
        assert all(v == "ok" for v in r.values().values())

    def test_entry_error_with_unrecognized_failure(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            req = ibarrier(comm)
            with pytest.raises(RankFailStopError):
                wait(req)
            return "errored"

        r = run_sim(main, 4, kills=[(2, 0.5)])
        assert all(r.value(i) == "errored" for i in (0, 1, 3))

    def test_runs_over_survivors_after_validate(self):
        from repro.ft import comm_validate_all

        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_all(comm)
            wait(ibarrier(comm))
            return "ok"

        r = run_sim(main, 4, kills=[(1, 0.5)])
        assert all(r.value(i) == "ok" for i in (0, 2, 3))

    def test_mid_barrier_death_errors_waiting_ranks(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(0.5)  # dies inside the barrier window
                return
            req = ibarrier(comm)
            try:
                wait(req)
                return "ok"
            except RankFailStopError:
                return "errored"

        r = run_sim(main, 4, kills=[(1, 1e-7)], on_deadlock="return")
        outcomes = {r.value(i) for i in r.completed_ranks}
        assert "errored" in outcomes  # someone was still owed a round


class TestIbarrierTermination:
    def test_failure_free_uses_barrier_path(self):
        cfg = RingConfig(max_iter=3, termination=Termination.IBARRIER)
        r = run_sim(make_ring_main(cfg), 5)
        assert all(
            r.value(i)["termination_path"] == "ibarrier" for i in range(5)
        )

    def test_mid_loop_failure_falls_back_to_consensus(self):
        cfg = RingConfig(max_iter=3, termination=Termination.IBARRIER)
        r = run_sim(
            make_ring_main(cfg), 5,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
            on_deadlock="return",
        )
        assert not r.hung
        assert all(
            r.value(i)["termination_path"] == "fallback"
            for i in r.completed_ranks
        )

    def test_termination_phase_failure_can_split_and_hang(self):
        # The documented sharp edge — and the paper's reason to reject
        # the scheme: inconsistent barrier return codes split the ranks
        # between the barrier and the fallback, which deadlocks.
        cfg = RingConfig(max_iter=3, termination=Termination.IBARRIER)
        r = run_sim(
            make_ring_main(cfg), 5,
            injectors=[KillAtProbe(rank=2, probe="pre_termination", hit=1)],
            on_deadlock="return",
        )
        assert r.hung  # deterministically, for this seed and scenario
