"""Unit tests for the cooperative fiber scheduler and policies."""

from __future__ import annotations

from collections import deque

import pytest

from repro.simmpi import Simulation, available_backends, make_fiber
from repro.simmpi.scheduler import (
    FiberState,
    LowestRankFirstPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)


class FakeFiber:
    def __init__(self, index: int) -> None:
        self.index = index


class TestPolicies:
    def test_round_robin_is_fifo(self):
        p = RoundRobinPolicy()
        q = deque([FakeFiber(2), FakeFiber(0), FakeFiber(1)])
        assert [p.pick(q).index for _ in range(3)] == [2, 0, 1]

    def test_lowest_rank_first(self):
        p = LowestRankFirstPolicy()
        q = deque([FakeFiber(2), FakeFiber(0), FakeFiber(1)])
        assert [p.pick(q).index for _ in range(3)] == [0, 1, 2]

    def test_random_policy_deterministic_per_seed(self):
        def order(seed: int) -> list[int]:
            p = RandomPolicy(seed)
            q = deque(FakeFiber(i) for i in range(6))
            return [p.pick(q).index for _ in range(6)]

        assert order(7) == order(7)

    def test_random_policy_reset_restores_sequence(self):
        p = RandomPolicy(3)
        q1 = deque(FakeFiber(i) for i in range(5))
        first = [p.pick(q1).index for _ in range(5)]
        p.reset()
        q2 = deque(FakeFiber(i) for i in range(5))
        assert [p.pick(q2).index for _ in range(5)] == first

    def test_make_policy_specs(self):
        assert isinstance(make_policy("rr"), RoundRobinPolicy)
        assert isinstance(make_policy("lowest"), LowestRankFirstPolicy)
        assert isinstance(make_policy("random", seed=1), RandomPolicy)
        custom = RoundRobinPolicy()
        assert make_policy(custom) is custom

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("bogus")


@pytest.mark.parametrize("backend", available_backends())
class TestFiberHandoff:
    def test_fiber_runs_to_completion(self, backend):
        out = []
        f = make_fiber(backend, name="t", index=0,
                       target=lambda: out.append("ran"))
        f.start()
        f.resume_and_wait()
        assert out == ["ran"]
        assert f.state is FiberState.DONE
        f.join()

    def test_fiber_result_captured(self, backend):
        f = make_fiber(backend, name="t", index=0, target=lambda: 42)
        f.start()
        f.resume_and_wait()
        assert f.result == 42
        f.join()

    def test_fiber_error_captured(self, backend):
        def boom():
            raise ValueError("nope")

        f = make_fiber(backend, name="t", index=0, target=boom)
        f.start()
        f.resume_and_wait()
        assert isinstance(f.error, ValueError)
        assert f.state is FiberState.DONE
        f.join()

    def test_shutdown_unwinds_blocked_fiber(self, backend):
        # Exercised through the Simulation facade: a rank that blocks
        # forever is unwound at shutdown after a deadlock is reported.
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.recv(source=1)  # never sent
            return "done"

        r = Simulation(nprocs=2, fibers=backend).run(
            main, on_deadlock="return"
        )
        assert r.hung
        assert r.outcomes[1].value == "done"

class TestSchedulingDeterminism:
    def test_policies_change_interleaving_not_results(self):
        def main(mpi):
            comm = mpi.comm_world
            total = comm.allreduce(comm.rank, "sum")
            return total

        expected = sum(range(5))
        for policy in ("rr", "lowest", "random"):
            r = Simulation(nprocs=5, policy=policy, seed=11).run(main)
            assert all(v == expected for v in r.values().values())

    def test_random_policy_reproducible_end_to_end(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("x", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)

        t1 = Simulation(nprocs=3, policy="random", seed=5).run(main).trace.keys()
        t2 = Simulation(nprocs=3, policy="random", seed=5).run(main).trace.keys()
        assert t1 == t2
