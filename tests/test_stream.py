"""The streaming sweep pipeline (``run_stream`` and ``stream=True``).

PR 7's contract: a streamed sweep must be *observationally identical*
to a materialized one — same values in the same submission order, same
report text, same canonical telemetry, same cache hits — while holding
only a bounded window of jobs and results in memory.  This suite pins
both halves: equivalence (streamed == materialized == pooled, byte for
byte) and boundedness (jobs are built lazily, never all at once).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import perf
from repro.cache import RunCache
from repro.cli import main
from repro.faults import (
    CampaignReport,
    CampaignSummary,
    ExplorationSummary,
    explore,
    run_campaign,
)
from repro.fuzz import FuzzSummary, fuzz
from repro.obs import canonical_lines
from repro.parallel import ProcessPoolRunner, SerialRunner
from repro.parallel.runner import DEFAULT_STREAM_WINDOW
from tests.conftest import (
    RING_INVARIANTS as INVARIANTS,
    RING_SCENARIO as SCENARIO,
)


@dataclass(frozen=True)
class SquareJob:
    x: int

    def __call__(self) -> int:
        return self.x * self.x


class Factory:
    """Job generator that counts how many jobs were ever constructed —
    the probe for 'streaming never materializes the whole sweep'."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.built = 0

    def __iter__(self):
        for x in range(self.n):
            self.built += 1
            yield SquareJob(x)


# ---------------------------------------------------------------------------
# run_stream: equivalence and boundedness
# ---------------------------------------------------------------------------


class TestRunStream:
    def test_serial_matches_run(self):
        jobs = [SquareJob(x) for x in (3, 1, 2)]
        assert list(SerialRunner().run_stream(iter(jobs))) == [9, 1, 4]

    def test_pooled_matches_run_in_submission_order(self):
        runner = ProcessPoolRunner(workers=2, chunk_size=2)
        got = list(runner.run_stream(SquareJob(x) for x in range(40)))
        assert got == [x * x for x in range(40)]

    def test_serial_is_fully_lazy(self):
        factory = Factory(1000)
        stream = SerialRunner().run_stream(iter(factory))
        next(stream)
        assert factory.built == 1

    def test_windowed_stream_is_bounded(self):
        factory = Factory(1000)
        runner = ProcessPoolRunner(workers=2)
        stream = runner.run_stream(iter(factory), window=8)
        next(stream)
        assert factory.built == 8  # one window, not the whole sweep

    def test_default_pool_window_floor(self):
        assert ProcessPoolRunner(workers=2)._stream_window() >= (
            DEFAULT_STREAM_WINDOW
        )

    def test_job_retries_accumulate_across_windows(self):
        runner = ProcessPoolRunner(workers=2)
        results = list(
            runner.run_stream((SquareJob(x) for x in range(20)), window=6)
        )
        assert len(results) == 20
        assert runner.job_retries == [0] * 20

    def test_empty_stream(self):
        assert list(SerialRunner().run_stream(iter(()))) == []
        assert list(ProcessPoolRunner(workers=2).run_stream(iter(()))) == []


# ---------------------------------------------------------------------------
# stream=True sweeps: byte-identical to materialized, serial and pooled
# ---------------------------------------------------------------------------


def _campaign(**kw):
    return run_campaign(
        SCENARIO,
        seeds=range(12),
        horizon=2e-5,
        invariants=INVARIANTS,
        **kw,
    )


class TestStreamedSweeps:
    def test_campaign_summary_matches_report(self):
        mat = _campaign()
        streamed = _campaign(stream=True)
        assert isinstance(mat, CampaignReport)
        assert isinstance(streamed, CampaignSummary)
        assert streamed.summary() == mat.summary()
        assert streamed.format() == mat.format()
        assert len(streamed.failures) == len(mat.failures)

    def test_campaign_streamed_serial_equals_pooled(self):
        serial = _campaign(stream=True)
        pooled = _campaign(stream=True, runner=ProcessPoolRunner(workers=2))
        assert serial.format() == pooled.format()

    def test_explore_summary_matches_report(self):
        mat = explore(SCENARIO, invariants=INVARIANTS)
        streamed = explore(SCENARIO, invariants=INVARIANTS, stream=True)
        assert isinstance(streamed, ExplorationSummary)
        assert streamed.summary() == mat.summary()
        assert streamed.format() == mat.format()

    def test_explore_pairs_streamed_total(self):
        mat = explore(SCENARIO, invariants=INVARIANTS, pairs=True)
        streamed = explore(
            SCENARIO, invariants=INVARIANTS, pairs=True, stream=True
        )
        assert streamed.format() == mat.format()

    def test_fuzz_summary_matches_report(self):
        mat = fuzz(SCENARIO, runs=15, seed=2)
        streamed = fuzz(SCENARIO, runs=15, seed=2, stream=True)
        assert isinstance(streamed, FuzzSummary)
        assert streamed.summary() == mat.summary()
        assert streamed.format() == mat.format()
        assert len(streamed.shrunk) == len(mat.shrunk)

    def test_streamed_telemetry_canonically_identical(self, tmp_path):
        a, b = tmp_path / "mat.jsonl", tmp_path / "str.jsonl"
        _campaign(telemetry=str(a))
        _campaign(stream=True, telemetry=str(b))
        assert list(canonical_lines(str(a))) == list(canonical_lines(str(b)))

    def test_streamed_telemetry_pooled(self, tmp_path):
        a, b = tmp_path / "ser.jsonl", tmp_path / "pool.jsonl"
        _campaign(stream=True, telemetry=str(a))
        _campaign(
            stream=True,
            telemetry=str(b),
            runner=ProcessPoolRunner(workers=2),
        )
        assert list(canonical_lines(str(a))) == list(canonical_lines(str(b)))

    def test_streamed_cache_hits_batched(self, tmp_path):
        cache = RunCache(tmp_path / "c", backend="sqlite")
        cold = _campaign(stream=True, cache=cache)
        before = perf.CACHE.snapshot()
        warm = _campaign(stream=True, cache=cache)
        d = perf.CACHE.delta(before)
        assert d["hits"] == 12 and d["misses"] == d["stores"] == 0
        assert warm.format() == cold.format() == _campaign().format()


# ---------------------------------------------------------------------------
# CLI --stream
# ---------------------------------------------------------------------------


class TestStreamCli:
    def _run(self, capsys, argv):
        rc = main(argv)
        return rc, capsys.readouterr().out

    def test_campaign_stream_flag_identical_stdout(self, capsys):
        base = ["campaign", "--nprocs", "4", "--iters", "3", "--runs", "8"]
        rc1, mat = self._run(capsys, base)
        rc2, streamed = self._run(capsys, base + ["--stream"])
        assert (rc1, mat) == (rc2, streamed)

    def test_fuzz_stream_flag_identical_stdout(self, capsys):
        base = ["fuzz", "--nprocs", "4", "--iters", "3", "--runs", "10"]
        rc1, mat = self._run(capsys, base)
        rc2, streamed = self._run(capsys, base + ["--stream"])
        assert (rc1, mat) == (rc2, streamed)
