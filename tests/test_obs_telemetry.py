"""Sweep telemetry: serial==pooled canonical identity, cache delegation,
schema validation, and offline aggregation.
"""

from __future__ import annotations

import pytest

from repro.cache.keys import job_key
from repro.faults import explore, run_campaign
from repro.fuzz import fuzz
from repro.obs import (
    TelemetryJob,
    canonical_lines,
    outcome_class,
    read_telemetry,
    summarize,
    telemetry_errors,
)
from repro.parallel import RingScenario, StandardRingInvariants

POOL_WORKERS = 2

SCENARIO = RingScenario(nprocs=4, iters=3)
INVARIANTS = StandardRingInvariants(3, 4)


def campaign_telemetry(path, workers=None):
    run_campaign(
        SCENARIO,
        seeds=range(8),
        horizon=2e-5,
        invariants=INVARIANTS,
        workers=workers,
        telemetry=str(path),
    )
    return path


# ---------------------------------------------------------------------------
# The determinism contract: canonical serial == canonical pooled
# ---------------------------------------------------------------------------


def test_campaign_canonical_serial_vs_pooled(tmp_path):
    serial = campaign_telemetry(tmp_path / "serial.jsonl")
    pooled = campaign_telemetry(tmp_path / "pooled.jsonl",
                                workers=POOL_WORKERS)
    assert canonical_lines(serial) == canonical_lines(pooled)


def test_explore_canonical_serial_vs_pooled(tmp_path):
    def run(path, workers):
        explore(
            SCENARIO, invariants=INVARIANTS, workers=workers,
            telemetry=str(path),
        )
        return path

    serial = run(tmp_path / "serial.jsonl", None)
    pooled = run(tmp_path / "pooled.jsonl", POOL_WORKERS)
    assert canonical_lines(serial) == canonical_lines(pooled)


def test_fuzz_canonical_serial_vs_pooled(tmp_path):
    from repro.parallel import make_runner

    def run(path, workers):
        fuzz(
            SCENARIO, runs=8, seed=3, runner=make_runner(workers),
            shrink_failures=False, telemetry=str(path),
        )
        return path

    serial = run(tmp_path / "serial.jsonl", None)
    pooled = run(tmp_path / "pooled.jsonl", POOL_WORKERS)
    assert canonical_lines(serial) == canonical_lines(pooled)


def test_progress_batching_keeps_global_indices(tmp_path):
    """Batched explore (progress enabled) must still number jobs by their
    sweep-global submission index."""
    plain, batched = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    explore(SCENARIO, invariants=INVARIANTS, telemetry=str(plain))
    explore(SCENARIO, invariants=INVARIANTS, telemetry=str(batched),
            progress=lambda done, total: None)
    assert canonical_lines(plain) == canonical_lines(batched)


# ---------------------------------------------------------------------------
# Schema and content
# ---------------------------------------------------------------------------


def test_telemetry_schema_valid(tmp_path):
    path = campaign_telemetry(tmp_path / "t.jsonl")
    assert telemetry_errors(path) == []
    records = read_telemetry(path)
    header, jobs = records[0], records[1:]
    assert header["kind"] == "campaign"
    assert header["runs"] == 8 == len(jobs)
    assert sorted(rec["index"] for rec in jobs) == list(range(8))
    for rec in jobs:
        assert rec["t_end"] >= rec["t_start"]
        assert rec["wall_s"] == rec["t_end"] - rec["t_start"]
        assert rec["cache"] is None  # cache off in this sweep


def test_telemetry_errors_flag_corruption(tmp_path):
    path = campaign_telemetry(tmp_path / "t.jsonl")
    text = path.read_text().splitlines()
    bad = tmp_path / "bad.jsonl"
    # Duplicate a job line: duplicate index + count mismatch.
    bad.write_text("\n".join(text + [text[-1]]) + "\n")
    assert telemetry_errors(bad)


def test_outcome_class():
    class O:  # noqa: E742 - tiny stand-in
        hung = False
        violations = ()
        aborted = False

    o = O()
    assert outcome_class(o) == "ok"
    o.aborted = True
    assert outcome_class(o) == "abort"
    o.violations = ("bad",)
    assert outcome_class(o) == "violation"
    o.hung = True
    assert outcome_class(o) == "hang"


# ---------------------------------------------------------------------------
# Cache integration
# ---------------------------------------------------------------------------


def test_telemetry_job_shares_cache_key():
    """A wrapped job must key identically to the bare job, so telemetry
    and plain sweeps share cache entries (cache_key_delegate)."""
    from repro.faults.campaign import CampaignJob

    job = CampaignJob(factory=SCENARIO, seed=7, horizon=2e-5,
                      invariants=INVARIANTS)
    bare = job_key(job)
    assert bare is not None
    assert job_key(TelemetryJob(job=job, index=3)) == bare
    assert job_key(TelemetryJob(job=job, index=99)) == bare


def test_telemetry_records_cache_hits(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = tmp_path / "cold.jsonl"
    warm = tmp_path / "warm.jsonl"

    def run(path):
        run_campaign(
            SCENARIO, seeds=range(4), horizon=2e-5, invariants=INVARIANTS,
            cache=str(cache_dir), telemetry=str(path),
        )

    run(cold)
    run(warm)
    cold_recs = [r for r in read_telemetry(cold) if r.get("kind") == "job"]
    warm_recs = [r for r in read_telemetry(warm) if r.get("kind") == "job"]
    assert all(r["cache"] == "miss" for r in cold_recs)
    assert all(r["cache"] == "hit" for r in warm_recs)
    # Outcomes are identical either way; only the cache column differs.
    strip = lambda rs: [(r["index"], r["outcome"]) for r in rs]  # noqa: E731
    assert strip(cold_recs) == strip(warm_recs)


def test_warm_cache_entries_usable_without_telemetry(tmp_path):
    """Entries stored by a telemetry run answer a bare run (and vice
    versa): the wrapper never splits the cache namespace."""
    from repro import perf

    cache_dir = tmp_path / "cache"
    run_campaign(SCENARIO, seeds=range(4), horizon=2e-5,
                 invariants=INVARIANTS, cache=str(cache_dir),
                 telemetry=str(tmp_path / "t.jsonl"))
    before = perf.CACHE.snapshot()
    run_campaign(SCENARIO, seeds=range(4), horizon=2e-5,
                 invariants=INVARIANTS, cache=str(cache_dir))
    delta = perf.CACHE.delta(before)
    assert delta["hits"] == 4 and delta["misses"] == 0


# ---------------------------------------------------------------------------
# Aggregation (`repro report`)
# ---------------------------------------------------------------------------


def test_summarize(tmp_path):
    path = campaign_telemetry(tmp_path / "t.jsonl")
    summary = summarize(read_telemetry(path), top=3)
    assert summary.kind == "campaign"
    assert summary.runs == 8
    assert sum(summary.outcomes.values()) == 8
    assert len(summary.slowest) == 3
    assert summary.wall_percentiles["max"] >= summary.wall_percentiles["p50"]
    assert sum(int(w["jobs"]) for w in summary.workers.values()) == 8
    text = summary.format()
    assert "campaign sweep, 8 job(s)" in text
    assert "cache: off" in text


def test_summarize_counts_cache(tmp_path):
    path = tmp_path / "warm.jsonl"
    cache_dir = tmp_path / "cache"
    for _ in range(2):
        run_campaign(SCENARIO, seeds=range(4), horizon=2e-5,
                     invariants=INVARIANTS, cache=str(cache_dir),
                     telemetry=str(path))
    summary = summarize(read_telemetry(path))
    assert summary.cache["hit"] == 4
    assert "100% hit rate" in summary.format()
