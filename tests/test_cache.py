"""The content-addressed run cache (:mod:`repro.cache`).

The cache's whole correctness contract is *invisibility*: a sweep run
with the cache off, cold, or warm — serial or pooled — must produce the
byte-identical report, and anything that can change a run's outcome
(mutation switches, jitter specs, policy seeds, the scenario itself)
must change the key.  This suite pins both directions, plus the
maintenance surface (``verify`` catching corruption, ``gc`` dropping
stale formats) and the CLI split (report on stdout, cache accounting on
stderr).
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro import mutation, perf
from repro.cache import CachedRunner, RunCache, job_key
from repro.cli import main
from repro.faults import explore, run_campaign
from repro.faults.explorer import Window, WindowJob
from repro.fuzz import fuzz
from repro.fuzz.config import FuzzConfig, JitterSpec
from repro.fuzz.driver import FuzzJob
from repro.parallel import ProcessPoolRunner
from tests.conftest import (
    RING_INVARIANTS,
    RING_SCENARIO,
    factory_for,
    outcome_fields,
)


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def _delta(before):
    return perf.CACHE.delta(before)


# ---------------------------------------------------------------------------
# Reports are byte-identical: off vs cold vs warm, serial and pooled
# ---------------------------------------------------------------------------


class TestTransparency:
    def test_explore_off_cold_warm_identical(self, cache_dir):
        off = explore(RING_SCENARIO, invariants=RING_INVARIANTS)
        before = perf.CACHE.snapshot()
        cold = explore(RING_SCENARIO, invariants=RING_INVARIANTS, cache=cache_dir)
        d = _delta(before)
        assert d["hits"] == 0 and d["misses"] == d["stores"] > 0
        before = perf.CACHE.snapshot()
        warm = explore(RING_SCENARIO, invariants=RING_INVARIANTS, cache=cache_dir)
        d = _delta(before)
        assert d["misses"] == d["stores"] == 0
        assert d["hits"] == len(warm.outcomes) > 0
        assert off.format() == cold.format() == warm.format()
        assert outcome_fields(off) == outcome_fields(cold) == outcome_fields(warm)

    def test_explore_warm_pooled_identical(self, cache_dir):
        serial = explore(RING_SCENARIO, invariants=RING_INVARIANTS, cache=cache_dir)
        before = perf.CACHE.snapshot()
        pooled = explore(
            RING_SCENARIO,
            invariants=RING_INVARIANTS,
            cache=cache_dir,
            runner=ProcessPoolRunner(workers=2),
        )
        d = _delta(before)
        assert d["hits"] == len(pooled.outcomes) and d["misses"] == 0
        assert outcome_fields(serial) == outcome_fields(pooled)

    def test_cold_pooled_stores_cross_the_boundary(self, cache_dir):
        before = perf.CACHE.snapshot()
        pooled = explore(
            RING_SCENARIO,
            invariants=RING_INVARIANTS,
            cache=cache_dir,
            runner=ProcessPoolRunner(workers=2),
        )
        d = _delta(before)
        # Lookups and stores happen parent-side, so even a pooled cold
        # run records exact counters and a usable store.
        assert d["misses"] == d["stores"] == len(pooled.outcomes)
        warm = explore(RING_SCENARIO, invariants=RING_INVARIANTS, cache=cache_dir)
        assert outcome_fields(pooled) == outcome_fields(warm)

    def test_campaign_off_cold_warm_identical(self, cache_dir):
        kw = dict(seeds=range(12), horizon=3e-5, invariants=RING_INVARIANTS)
        off = run_campaign(RING_SCENARIO, **kw)
        cold = run_campaign(RING_SCENARIO, cache=cache_dir, **kw)
        warm = run_campaign(RING_SCENARIO, cache=cache_dir, **kw)
        assert off.format() == cold.format() == warm.format()
        # kills carry floats through the JSON round-trip: exact equality.
        assert [r.kills for r in off.runs] == [r.kills for r in warm.runs]

    def test_fuzz_off_cold_warm_identical(self, cache_dir):
        kw = dict(runs=10, seed=3, invariants=RING_INVARIANTS, min_kills=1)
        off = fuzz(RING_SCENARIO, **kw)
        cold = fuzz(RING_SCENARIO, cache=cache_dir, **kw)
        before = perf.CACHE.snapshot()
        warm = fuzz(RING_SCENARIO, cache=cache_dir, **kw)
        assert _delta(before)["hits"] == 10
        assert off.format(verbose=True) == cold.format(verbose=True)
        assert cold.format(verbose=True) == warm.format(verbose=True)
        # Digests are part of the payload — warm outcomes carry the
        # exact fingerprints a fresh run would have computed.
        assert [o.digest for o in off.outcomes] == [o.digest for o in warm.outcomes]


# ---------------------------------------------------------------------------
# Key discipline: the determinism surface is fully covered
# ---------------------------------------------------------------------------


def _window_job(**kw):
    defaults = dict(
        factory=RING_SCENARIO,
        windows=(Window(rank=1, probe="post_recv", hit=1),),
        invariants=RING_INVARIANTS,
    )
    defaults.update(kw)
    return WindowJob(**defaults)


class TestKeys:
    def test_key_is_stable(self):
        assert job_key(_window_job()) == job_key(_window_job())

    def test_scenario_fields_change_key(self):
        base = job_key(_window_job())
        other = _window_job(factory=replace(RING_SCENARIO, seed=7))
        assert job_key(other) != base
        assert job_key(_window_job(trace=False)) != base

    def test_mutation_toggle_changes_key(self):
        base = job_key(_window_job())
        with mutation.enabled("ring_no_dedup"):
            weakened = job_key(_window_job())
        assert weakened != base
        assert job_key(_window_job()) == base  # restored on exit

    def test_jitter_and_policy_seed_change_key(self):
        cfg = FuzzConfig(scenario=RING_SCENARIO)
        base = job_key(FuzzJob(config=cfg, index=0))
        jittered = replace(cfg, jitter=JitterSpec(seed=1, latency=0.1))
        reseeded = replace(cfg, policy_seed=5)
        assert job_key(FuzzJob(config=jittered, index=0)) != base
        assert job_key(FuzzJob(config=reseeded, index=0)) != base

    def test_fuzz_index_is_display_only(self):
        cfg = FuzzConfig(scenario=RING_SCENARIO)
        assert job_key(FuzzJob(config=cfg, index=0)) == job_key(
            FuzzJob(config=cfg, index=42)
        )

    def test_keep_results_vetoes_caching(self, cache_dir):
        assert job_key(_window_job(keep_results=True)) is None
        before = perf.CACHE.snapshot()
        rep = explore(
            RING_SCENARIO,
            invariants=RING_INVARIANTS,
            keep_results=True,
            cache=cache_dir,
        )
        d = _delta(before)
        assert d["hits"] == d["misses"] == d["stores"] == 0
        assert all(o.result is not None for o in rep.outcomes)

    def test_closure_factory_is_uncacheable(self):
        # factory_for returns a local closure: not addressable by name,
        # so the job must run uncached rather than risk a wrong key.
        assert job_key(_window_job(factory=factory_for())) is None


# ---------------------------------------------------------------------------
# Store maintenance: stale entries, gc, verify
# ---------------------------------------------------------------------------


class TestStore:
    def _populate(self, cache_dir):
        explore(RING_SCENARIO, invariants=RING_INVARIANTS, cache=cache_dir)
        return RunCache.at(cache_dir)

    def test_stale_format_reexecuted_and_overwritten(self, cache_dir):
        cache = self._populate(cache_dir)
        key = next(cache.keys())
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["format"] = "repro.cache/0"
        path.write_text(json.dumps(entry))
        assert cache.fetch(key) == ("stale", None)
        before = perf.CACHE.snapshot()
        explore(RING_SCENARIO, invariants=RING_INVARIANTS, cache=cache_dir)
        d = _delta(before)
        assert d["stale"] == 1 and d["stores"] == 1
        assert cache.fetch(key)[0] == "hit"

    def test_corrupt_json_counts_stale(self, cache_dir):
        cache = self._populate(cache_dir)
        key = next(cache.keys())
        cache._path(key).write_text("{not json")
        assert cache.fetch(key) == ("stale", None)

    def test_gc_drops_stale_and_old(self, cache_dir):
        cache = self._populate(cache_dir)
        n = cache.stats()["entries"]
        key = next(cache.keys())
        cache._path(key).write_text("{not json")
        counts = cache.gc()
        assert counts == {"removed_stale": 1, "removed_old": 0}
        assert cache.stats()["entries"] == n - 1
        counts = cache.gc(max_age_s=0.0)
        assert counts["removed_old"] == n - 1
        assert cache.stats()["entries"] == 0

    def test_verify_all_green_then_catches_corruption(self, cache_dir):
        cache = self._populate(cache_dir)
        results = cache.verify(sample=4, seed=1)
        assert len(results) == 4 and all(r.ok for r in results)
        key = next(cache.keys())
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["hung"] = not entry["payload"]["hung"]
        path.write_text(json.dumps(entry))
        bad = [r for r in cache.verify() if not r.ok]
        assert len(bad) == 1 and bad[0].key == key
        assert any("hung" in d for d in bad[0].diffs)

    def test_verify_detects_key_drift(self, cache_dir):
        cache = self._populate(cache_dir)
        keys = list(cache.keys())
        # Re-file an entry under another entry's key: the stored job no
        # longer hashes to the name it is stored under.
        a, b = keys[0], keys[1]
        cache._path(b).write_text(
            json.dumps({**cache.entry(a), "key": a})
        )
        drifted = [r for r in cache.verify() if r.error and "key drift" in r.error]
        assert [r.key for r in drifted] == [b]


# ---------------------------------------------------------------------------
# CachedRunner pass-through semantics
# ---------------------------------------------------------------------------


class TestCachedRunner:
    def test_uncacheable_jobs_pass_through_untouched(self, cache_dir):
        runner = CachedRunner(cache=RunCache.at(cache_dir))
        jobs = [
            _window_job(factory=factory_for()),  # closure: uncacheable
            _window_job(),  # cacheable
        ]
        before = perf.CACHE.snapshot()
        first = runner.run(jobs)
        d = _delta(before)
        assert d["misses"] == d["stores"] == 1  # only the cacheable one
        second = runner.run(jobs)
        assert _delta(before)["hits"] == 1
        assert outcome_fields_like(first) == outcome_fields_like(second)

    def test_mixed_order_preserved(self, cache_dir):
        runner = CachedRunner(cache=RunCache.at(cache_dir))
        windows = [Window(rank=r, probe="post_recv", hit=1) for r in (1, 2, 3)]
        jobs = [_window_job(windows=(w,)) for w in windows]
        runner.run([jobs[1]])  # warm exactly one key
        outs = runner.run(jobs)
        assert [o.windows[0].rank for o in outs] == [1, 2, 3]


def outcome_fields_like(outcomes):
    return [(o.windows, o.hung, o.aborted, o.violations) for o in outcomes]


# ---------------------------------------------------------------------------
# CLI: stdout byte-identical, accounting on stderr, cache subcommand
# ---------------------------------------------------------------------------


class TestCli:
    ARGS = ["explore", "--nprocs", "4", "--iters", "3"]

    def test_stdout_identical_and_stderr_accounting(self, cache_dir, capsys):
        rc = main(self.ARGS)
        plain = capsys.readouterr()
        assert rc == 0 and "[cache]" not in plain.err
        cached = self.ARGS + ["--cache", "--cache-dir", str(cache_dir)]
        main(cached)
        cold = capsys.readouterr()
        main(cached)
        warm = capsys.readouterr()
        assert plain.out == cold.out == warm.out
        assert "misses=" in cold.err and "hits=0" in cold.err
        assert "misses=0" in warm.err and "hits=0" not in warm.err

    def test_progress_goes_to_stderr(self, cache_dir, capsys):
        main(self.ARGS + ["--progress"])
        captured = capsys.readouterr()
        assert "[explore]" in captured.err
        assert "[explore]" not in captured.out

    def test_limit_caps_enumeration(self, capsys):
        main(self.ARGS + ["--limit", "2"])
        out = capsys.readouterr().out
        assert "over 2 window(s)" in out

    def test_cache_subcommands(self, cache_dir, capsys):
        main(self.ARGS + ["--cache", "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        rc = main(["cache", "--cache-dir", str(cache_dir), "stats"])
        out = capsys.readouterr().out
        assert rc == 0 and "entries:" in out
        rc = main([
            "cache", "--cache-dir", str(cache_dir), "verify", "--sample", "3"
        ])
        out = capsys.readouterr().out
        assert rc == 0 and "3 ok, 0 failing" in out
        rc = main(["cache", "--cache-dir", str(cache_dir), "gc"])
        assert rc == 0

    def test_cache_verify_fails_on_corruption(self, cache_dir, capsys):
        main(self.ARGS + ["--cache", "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        cache = RunCache.at(cache_dir)
        key = next(cache.keys())
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["violations"] = ["fabricated"]
        path.write_text(json.dumps(entry))
        rc = main(["cache", "--cache-dir", str(cache_dir), "verify"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "violations" in out
