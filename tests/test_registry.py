"""The metrics registry: instrument semantics, Prometheus text
exposition, telemetry-derived registries, the live pipeline counters,
and the ``repro metrics serve`` scrape endpoint.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.faults import run_campaign
from repro.obs.registry import (
    EXPOSITION_CONTENT_TYPE,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    registry_from_telemetry,
)
from repro.parallel import ProcessPoolRunner, WorkerServer
from tests.conftest import (
    RING_INVARIANTS as INVARIANTS,
    RING_SCENARIO as SCENARIO,
)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_accumulates_per_label_tuple(self):
        c = Counter("x_total", labels=("status",))
        c.inc(status="done")
        c.inc(2, status="done")
        c.inc(status="lost")
        assert c.value(status="done") == 3
        assert c.value(status="lost") == 1
        assert c.value(status="never") == 0

    def test_counter_rejects_negative_and_wrong_labels(self):
        c = Counter("x_total", labels=("status",))
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1, status="done")
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1)
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1, status="done", extra="nope")

    def test_gauge_set_and_inc(self):
        g = Gauge("depth")
        g.set(4.5)
        g.inc(-2.5)
        assert g.value() == 2.0

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("wall_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert dict(h.samples()) == {
            'wall_seconds_bucket{le="0.1"}': 1,
            'wall_seconds_bucket{le="1"}': 3,
            'wall_seconds_bucket{le="+Inf"}': 4,
            "wall_seconds_sum": 6.05,
            "wall_seconds_count": 4,
        }

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_total", labels=("bad-label",))


# ---------------------------------------------------------------------------
# Registry + exposition
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_is_idempotent_but_type_strict(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        assert reg.counter("x_total") is a
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_exposition_format(self):
        reg = MetricsRegistry()
        c = reg.counter("b_total", "things done", labels=("kind",))
        c.inc(2, kind='we"ird')
        reg.gauge("a_value").set(1.5)
        assert reg.exposition() == (
            "# TYPE a_value gauge\n"  # no help -> no HELP line
            "a_value 1.5\n"
            "# HELP b_total things done\n"
            "# TYPE b_total counter\n"
            'b_total{kind="we\\"ird"} 2\n'
        )

    def test_reset_zeroes_series(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(5)
        reg.reset()
        assert reg.counter("x_total").value() == 0


# ---------------------------------------------------------------------------
# Pipeline instrumentation feeds the global registry
# ---------------------------------------------------------------------------


def _campaign(runner=None, **kw):
    return run_campaign(
        SCENARIO,
        seeds=range(6),
        horizon=8e-6,
        invariants=INVARIANTS,
        runner=runner,
        **kw,
    )


class TestPipelineCounters:
    def test_pooled_campaign_increments_sweep_counters(self):
        from repro.obs.registry import SWEEP_CHUNKS, SWEEP_JOBS, SWEEP_ROUNDS

        jobs0 = SWEEP_JOBS.value()
        chunks0 = SWEEP_CHUNKS.value(status="done")
        rounds0 = SWEEP_ROUNDS.value()
        _campaign(runner=ProcessPoolRunner(workers=2))
        assert SWEEP_JOBS.value() - jobs0 == 6
        assert SWEEP_CHUNKS.value(status="done") > chunks0
        assert SWEEP_ROUNDS.value() > rounds0

    def test_remote_campaign_counts_frames_and_bytes(self):
        from repro.obs.registry import REMOTE_BYTES, REMOTE_FRAMES
        from repro.parallel import RemoteRunner

        server = WorkerServer(("127.0.0.1", 0))
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            out0 = REMOTE_FRAMES.value(direction="out")
            in0 = REMOTE_FRAMES.value(direction="in")
            bytes0 = REMOTE_BYTES.value(direction="out")
            _campaign(runner=RemoteRunner(addresses=[server.address]))
            assert REMOTE_FRAMES.value(direction="out") > out0
            assert REMOTE_FRAMES.value(direction="in") > in0
            assert REMOTE_BYTES.value(direction="out") > bytes0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_cache_lookups_counted(self, tmp_path):
        from repro.cache import RunCache
        from repro.obs.registry import CACHE_LOOKUPS, CACHE_STORES

        miss0 = CACHE_LOOKUPS.value(result="miss")
        hit0 = CACHE_LOOKUPS.value(result="hit")
        stores0 = CACHE_STORES.value()
        _campaign(cache=RunCache(tmp_path / "cache"))
        assert CACHE_LOOKUPS.value(result="miss") - miss0 == 6
        assert CACHE_STORES.value() - stores0 == 6
        _campaign(cache=RunCache(tmp_path / "cache"))
        assert CACHE_LOOKUPS.value(result="hit") - hit0 == 6


# ---------------------------------------------------------------------------
# Telemetry-derived registries
# ---------------------------------------------------------------------------


class TestTelemetryRegistry:
    def test_registry_from_campaign_telemetry(self, tmp_path):
        log = tmp_path / "tel.jsonl"
        _campaign(telemetry=str(log))
        text = registry_from_telemetry(log).exposition()
        assert 'repro_sweep_jobs_total{outcome="ok"} 6' in text
        assert "repro_sweep_runs 6" in text
        assert "repro_job_wall_seconds_histogram_count 6" in text
        assert 'repro_cache_lookups_total{result="hit"} 0' in text
        assert "repro_cache_uncached_jobs_total 6" in text

    def test_remote_rows_become_per_worker_series(self, tmp_path):
        from repro.parallel import RemoteRunner

        server = WorkerServer(("127.0.0.1", 0))
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            log = tmp_path / "tel.jsonl"
            _campaign(
                runner=RemoteRunner(addresses=[server.address]),
                telemetry=str(log),
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        text = registry_from_telemetry(log).exposition()
        worker = f"{server.address[0]}:{server.address[1]}"
        assert f'repro_remote_jobs_total{{worker="{worker}"}} 6' in text
        assert (
            f'repro_remote_bytes_total{{worker="{worker}",direction="out"}}'
            in text
        )
        assert f'repro_remote_chunks_total{{worker="{worker}"}}' in text


# ---------------------------------------------------------------------------
# Scrape endpoint
# ---------------------------------------------------------------------------


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestMetricsServer:
    @pytest.fixture
    def served(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "things").inc(3)
        server = MetricsServer(("127.0.0.1", 0), registry=reg)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.address
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_metrics_endpoint(self, served):
        status, ctype, body = _get(served + "/metrics")
        assert status == 200
        assert ctype == EXPOSITION_CONTENT_TYPE
        assert b"x_total 3" in body

    def test_healthz_endpoint(self, served):
        status, ctype, body = _get(served + "/healthz")
        assert status == 200
        assert ctype == "application/json"
        assert json.loads(body) == {
            "status": "ok", "service": "repro-metrics"
        }

    def test_unknown_path_is_404(self, served):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(served + "/nope")
        assert exc.value.code == 404

    def test_telemetry_mode_follows_the_file(self, tmp_path):
        log = tmp_path / "tel.jsonl"
        _campaign(telemetry=str(log))
        server = MetricsServer(("127.0.0.1", 0), telemetry=str(log))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.address
            _, _, body = _get(f"http://{host}:{port}/metrics")
            assert b'repro_sweep_jobs_total{outcome="ok"} 6' in body
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_default_serves_the_global_registry(self):
        server = MetricsServer(("127.0.0.1", 0))
        try:
            assert server.exposition() == REGISTRY.exposition()
        finally:
            server.server_close()
