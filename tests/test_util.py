"""Unit tests for the payload size estimator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import RingMsg
from repro.simmpi.util import ENVELOPE_BYTES, payload_nbytes


class TestPayloadNbytes:
    def test_none_is_envelope_only(self):
        assert payload_nbytes(None) == ENVELOPE_BYTES

    def test_int_float(self):
        assert payload_nbytes(7) == ENVELOPE_BYTES + 8
        assert payload_nbytes(3.14) == ENVELOPE_BYTES + 8

    def test_bool_smaller_than_int(self):
        assert payload_nbytes(True) < payload_nbytes(1)

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == ENVELOPE_BYTES + 4
        assert payload_nbytes("abcd") == ENVELOPE_BYTES + 4
        assert payload_nbytes("é") == ENVELOPE_BYTES + 2  # utf-8

    def test_numpy_uses_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(arr) == ENVELOPE_BYTES + 800

    def test_containers_sum_elements(self):
        assert payload_nbytes([1, 2, 3]) == ENVELOPE_BYTES + 8 + 3 * 8
        assert payload_nbytes((1.0, 2.0)) == ENVELOPE_BYTES + 8 + 16

    def test_dict_counts_keys_and_values(self):
        assert payload_nbytes({1: 2}) == ENVELOPE_BYTES + 8 + 16

    def test_dataclass_walks_fields(self):
        msg = RingMsg(value=5, marker=3)
        assert payload_nbytes(msg) == ENVELOPE_BYTES + 8 + 16

    def test_nested_structure(self):
        @dataclass
        class Box:
            items: list

        b = Box(items=[1, "ab"])
        assert payload_nbytes(b) > ENVELOPE_BYTES + 8

    def test_deterministic(self):
        payload = {"a": [1, 2.0, "xyz"], "b": (None, True)}
        assert payload_nbytes(payload) == payload_nbytes(payload)

    def test_opaque_object_flat_guess(self):
        class Weird:
            __slots__ = ()

        assert payload_nbytes(Weird()) == ENVELOPE_BYTES + 8
