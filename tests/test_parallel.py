"""The process-pool sweep engine: runners, job model, and the
serial-vs-parallel equivalence guarantee.

The equivalence contract under test (docs/parallel.md): the same
campaign or exploration sweep produces an **identical** report — same
run order, kills, violations, summaries, formatted text — whether it
executes serially in-process, through a one-worker pool, or through a
multi-worker pool.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import pytest

from repro.faults import explore, run_campaign
from repro.parallel import (
    ProcessPoolRunner,
    RingScenario,
    SerialRunner,
    SimJob,
    StandardRingInvariants,
    SweepError,
    make_runner,
    resolve_invariants,
)
from tests.conftest import (
    RING_INVARIANTS as INVARIANTS,
    RING_SCENARIO as SCENARIO,
    campaign_fields as _campaign_fields,
    outcome_fields as _outcome_fields,
)

# ---------------------------------------------------------------------------
# Picklable fixture jobs (module level: they must cross a process boundary).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SquareJob:
    x: int

    def __call__(self) -> int:
        return self.x * self.x


@dataclass(frozen=True)
class PidJob:
    def __call__(self) -> int:
        return os.getpid()


@dataclass(frozen=True)
class BoomJob:
    def __call__(self) -> None:
        raise ValueError("boom")


@dataclass(frozen=True)
class WedgeJob:
    """Simulates a wedged worker: never finishes within any sane budget."""

    def __call__(self) -> None:
        time.sleep(600)


@dataclass(frozen=True)
class DieJob:
    """Simulates a crashed worker process (breaks the pool)."""

    def __call__(self) -> None:
        os._exit(13)


def _campaign(runner=None, workers=None, **kw):
    return run_campaign(
        SCENARIO,
        seeds=range(6),
        horizon=8e-6,
        invariants=INVARIANTS,
        runner=runner,
        workers=workers,
        **kw,
    )


def _explore(runner=None, workers=None):
    return explore(
        SCENARIO,
        invariants=INVARIANTS,
        ranks=[1, 2, 3],
        runner=runner,
        workers=workers,
    )


# ---------------------------------------------------------------------------
# Runner semantics
# ---------------------------------------------------------------------------


class TestRunners:
    def test_serial_runner_submission_order(self):
        jobs = [SquareJob(x) for x in (3, 1, 2)]
        assert SerialRunner().run(jobs) == [9, 1, 4]

    def test_pool_results_in_submission_order(self):
        jobs = [SquareJob(x) for x in range(10)]
        got = ProcessPoolRunner(workers=2, chunk_size=2).run(jobs)
        assert got == [x * x for x in range(10)]

    def test_pool_actually_crosses_process_boundary(self):
        pids = ProcessPoolRunner(workers=1).run([PidJob(), PidJob()])
        assert all(pid != os.getpid() for pid in pids)

    def test_empty_batch(self):
        assert SerialRunner().run([]) == []
        assert ProcessPoolRunner(workers=2).run([]) == []

    def test_map_helper(self):
        assert SerialRunner().map(_double, [1, 2, 3]) == [2, 4, 6]
        assert ProcessPoolRunner(workers=2).map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_make_runner_dispatch(self):
        assert isinstance(make_runner(None), SerialRunner)
        assert isinstance(make_runner(1), SerialRunner)
        pooled = make_runner(3, timeout=1.0, retries=2)
        assert isinstance(pooled, ProcessPoolRunner)
        assert pooled.workers == 3
        assert pooled.timeout == 1.0
        assert pooled.retries == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=2, chunk_size=0)
        with pytest.raises(ValueError):
            ProcessPoolRunner(workers=2, retries=-1)

    def test_application_error_propagates_and_is_not_retried(self):
        jobs = [SquareJob(1), BoomJob()]
        with pytest.raises(ValueError, match="boom"):
            ProcessPoolRunner(workers=2, chunk_size=1, retries=3).run(jobs)

    def test_wedged_worker_times_out_with_sweep_error(self):
        runner = ProcessPoolRunner(
            workers=2, chunk_size=1, timeout=0.5, retries=0
        )
        with pytest.raises(SweepError) as exc_info:
            runner.run([SquareJob(2), WedgeJob()])
        assert exc_info.value.indices == [1]

    def test_crashed_worker_is_retried_then_reported(self):
        runner = ProcessPoolRunner(workers=1, chunk_size=1, retries=1)
        with pytest.raises(SweepError):
            runner.run([DieJob()])

    def test_crashed_worker_does_not_poison_other_jobs(self):
        # The good jobs lost to the broken pool are retried and complete.
        runner = ProcessPoolRunner(workers=1, chunk_size=1, retries=1)
        with pytest.raises(SweepError) as exc_info:
            runner.run([SquareJob(5), DieJob(), SquareJob(7)])
        assert exc_info.value.indices == [1]

    def test_job_retries_not_shared_between_instances(self):
        # Regression: job_retries used to be a mutable *class* attribute,
        # so every runner aliased one list and a run on one instance
        # clobbered another's telemetry counts.
        for make in (SerialRunner, lambda: ProcessPoolRunner(workers=1)):
            a, b = make(), make()
            assert a.job_retries is not b.job_retries
            a.run([SquareJob(2)])
            assert a.job_retries == [0]
            assert b.job_retries == []
        assert SerialRunner().job_retries is not ProcessPoolRunner(
            workers=1
        ).job_retries


def _double(x: int) -> int:
    return 2 * x


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


class TestJobModel:
    def test_sim_job_runs_and_reduces(self):
        job = SimJob(factory=SCENARIO, reduce=_final_time)
        t = job()
        assert t > 0.0
        # The same job crosses a process boundary intact.
        assert ProcessPoolRunner(workers=1).run([job]) == [t]

    def test_invariant_factory_resolves(self):
        invs = resolve_invariants(INVARIANTS)
        assert len(invs) == 6
        assert resolve_invariants(None) == ()
        assert resolve_invariants([_no_op_invariant]) == (_no_op_invariant,)

    def test_ring_scenario_is_picklable_and_deterministic(self):
        import pickle

        spec = pickle.loads(pickle.dumps(SCENARIO))
        sim_a, main_a = spec()
        sim_b, main_b = SCENARIO()
        ra = sim_a.run(main_a, on_deadlock="return")
        rb = sim_b.run(main_b, on_deadlock="return")
        assert ra.trace.keys() == rb.trace.keys()


def _final_time(result) -> float:
    return result.final_time


def _no_op_invariant(result):
    return None


# ---------------------------------------------------------------------------
# Serial vs parallel equivalence (the satellite's core contract)
# ---------------------------------------------------------------------------


class TestEquivalence:
    def test_campaign_identical_across_runners(self):
        serial = _campaign()
        pooled_1 = _campaign(runner=ProcessPoolRunner(workers=1))
        pooled_4 = _campaign(runner=ProcessPoolRunner(workers=4))
        assert _campaign_fields(serial) == _campaign_fields(pooled_1)
        assert _campaign_fields(serial) == _campaign_fields(pooled_4)
        assert serial.summary() == pooled_1.summary() == pooled_4.summary()
        assert serial.format() == pooled_1.format() == pooled_4.format()

    def test_explorer_identical_across_runners(self):
        serial = _explore()
        pooled_1 = _explore(runner=ProcessPoolRunner(workers=1))
        pooled_4 = _explore(runner=ProcessPoolRunner(workers=4))
        assert serial.reference_windows == pooled_1.reference_windows
        assert serial.reference_windows == pooled_4.reference_windows
        assert _outcome_fields(serial) == _outcome_fields(pooled_1)
        assert _outcome_fields(serial) == _outcome_fields(pooled_4)
        assert serial.summary() == pooled_1.summary() == pooled_4.summary()
        assert serial.format() == pooled_1.format() == pooled_4.format()

    def test_campaign_workers_argument(self):
        # The public `workers=` path (what the CLI uses) matches serial.
        serial = _campaign()
        pooled = _campaign(workers=2)
        assert serial.format() == pooled.format()
        assert _campaign_fields(serial) == _campaign_fields(pooled)

    def test_failure_reports_survive_the_boundary(self):
        # A naive-ring sweep produces hangs; the hang classification and
        # messages must come back from workers identical to serial.
        naive = RingScenario(nprocs=4, iters=3, variant="naive",
                             termination="root_bcast")
        invs = StandardRingInvariants(3, 4)
        serial = explore(naive, invariants=invs, ranks=[1, 2, 3],
                         probes=["post_recv"])
        pooled = explore(naive, invariants=invs, ranks=[1, 2, 3],
                         probes=["post_recv"], workers=2)
        assert serial.summary()["hangs"] > 0
        assert serial.format() == pooled.format()
        assert _outcome_fields(serial) == _outcome_fields(pooled)

    def test_keep_results_crosses_the_boundary(self):
        # keep_results ships full SimulationResults (traces, deadlock
        # exceptions) home from the workers; they must pickle faithfully.
        naive = RingScenario(nprocs=4, iters=3, variant="naive",
                             termination="root_bcast")
        serial = explore(naive, ranks=[1], probes=["post_recv"],
                         keep_results=True)
        pooled = explore(naive, ranks=[1], probes=["post_recv"],
                         keep_results=True, workers=2)
        for o_s, o_p in zip(serial.outcomes, pooled.outcomes):
            assert o_p.result is not None
            assert o_s.result.trace.keys() == o_p.result.trace.keys()
            if o_s.result.deadlock is not None:
                assert o_p.result.deadlock is not None
                assert o_p.result.deadlock.blocked == o_s.result.deadlock.blocked


class TestCampaignCli:
    def test_campaign_command_serial(self, capsys):
        from repro.cli import main

        rc = main(["campaign", "--nprocs", "4", "--iters", "3",
                   "--runs", "5", "--horizon", "8e-6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign: 5 runs, 5 ok" in out

    def test_campaign_command_workers_match_serial(self, capsys):
        from repro.cli import main

        rc = main(["campaign", "--nprocs", "4", "--iters", "3",
                   "--runs", "5", "--horizon", "8e-6"])
        serial_out = capsys.readouterr().out
        rc_w = main(["campaign", "--nprocs", "4", "--iters", "3",
                     "--runs", "5", "--horizon", "8e-6", "--workers", "2"])
        pooled_out = capsys.readouterr().out
        assert rc == rc_w == 0
        assert serial_out == pooled_out

    def test_explore_command_workers(self, capsys):
        from repro.cli import main

        rc = main(["explore", "--nprocs", "4", "--iters", "3",
                   "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "explored" in out
