"""The paper's failure scenarios, figure by figure (Figs. 5–11)."""

from __future__ import annotations

import pytest

from repro.core import (
    RingConfig,
    RingVariant,
    Termination,
    make_ring_main,
)
from repro.faults import KillAtProbe, KillAtTime
from repro.simmpi import Simulation
from tests.conftest import run_sim


def run_ring(
    variant,
    term=Termination.ROOT_BCAST,
    nprocs=4,
    max_iter=4,
    injectors=(),
    detection_latency=0.0,
    **kw,
):
    cfg = RingConfig(max_iter=max_iter, variant=variant, termination=term)
    return run_sim(
        make_ring_main(cfg),
        nprocs,
        injectors=injectors,
        on_deadlock="return",
        detection_latency=detection_latency,
        **kw,
    )


class TestFig5SendRight:
    def test_send_retargets_past_one_failure(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=1)],
        )
        assert not r.hung
        rep = r.value(1)
        assert rep["right"] == 3  # rank 1 now sends past dead rank 2
        assert rep["right_retargets"] >= 1

    def test_send_retargets_past_consecutive_failures(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            nprocs=6,
            injectors=[
                KillAtProbe(rank=2, probe="post_send", hit=1),
                KillAtProbe(rank=3, probe="post_send", hit=1),
            ],
        )
        assert not r.hung
        assert r.value(1)["right"] == 4
        comp = r.value(0)["root_completions"]
        assert [m for m, _ in comp] == [0, 1, 2, 3]


class TestFig6NaiveHang:
    def test_hangs_when_control_dies(self):
        # P2 dies after receiving, before forwarding: control lost; the
        # naive receive cannot wake P1, and the simulator proves the hang.
        r = run_ring(
            RingVariant.NAIVE,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
        )
        assert r.hung
        blocked_ranks = {rank for rank, _ in r.deadlock.blocked}
        assert 0 in blocked_ranks or 1 in blocked_ranks

    def test_naive_survives_failure_without_control_loss(self):
        # If the victim dies after forwarding (control lives on) and its
        # downstream neighbor notices via its own receive error, the naive
        # design can sometimes squeak through; this pins one such window
        # to document that the hang is specifically a lost-control issue.
        r = run_ring(
            RingVariant.NAIVE,
            injectors=[KillAtProbe(rank=3, probe="post_send", hit=4)],
        )
        # Final iteration already forwarded: ring completed.
        comp = r.value(0)["root_completions"]
        assert [m for m, _ in comp] == [0, 1, 2, 3]


class TestFig7WatchdogResend:
    def test_ft_recv_recovers_same_window(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
        )
        assert not r.hung
        comp = r.value(0)["root_completions"]
        assert [m for m, _ in comp] == [0, 1, 2, 3]
        # Rank 1 noticed via its watchdog and resent (Fig. 7 arrow).
        assert r.value(1)["resends"] == 1

    def test_values_reflect_lost_increments(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
        )
        comp = dict(r.value(0)["root_completions"])
        assert comp[0] == 4          # before the failure: full circle
        assert comp[2] == comp[3] == 3  # after: rank 2's increment gone


class TestFig8Duplicates:
    #: Detection must lag the wire for the duplicate to materialize
    #: (paper Fig. 8 has P3 receive P2's message *before* P1 resends).
    LAT = 2e-6

    def test_no_marker_variant_duplicates_completion(self):
        r = run_ring(
            RingVariant.FT_NO_MARKER,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            detection_latency=self.LAT,
        )
        assert not r.hung
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert len(markers) != len(set(markers))  # an iteration ran twice
        assert markers.count(1) == 2

    def test_duplicate_starves_final_iteration(self):
        # The duplicate shifts the root's completion window: the last real
        # iteration never completes as itself — the paper's "multiple
        # completions of the same ring iteration" corruption.
        r = run_ring(
            RingVariant.FT_NO_MARKER,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            detection_latency=self.LAT,
        )
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert 3 not in markers


class TestFig10MarkerDedup:
    LAT = TestFig8Duplicates.LAT

    def test_marker_variant_discards_duplicate(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            detection_latency=self.LAT,
        )
        assert not r.hung
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert markers == [0, 1, 2, 3]
        total_discarded = sum(
            r.value(i)["duplicates_discarded"] for i in r.completed_ranks
        )
        assert total_discarded >= 1

    def test_tagged_variant_also_safe(self):
        r = run_ring(
            RingVariant.FT_TAGGED,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            detection_latency=self.LAT,
        )
        assert not r.hung
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert markers == [0, 1, 2, 3]


class TestFig11Termination:
    def test_nonroot_failure_during_termination_window(self):
        # Kill a rank after its last forward: survivors must still leave
        # the termination phase (the resend watchdog keeps them live).
        r = run_ring(
            RingVariant.FT_MARKER,
            term=Termination.ROOT_BCAST,
            injectors=[KillAtProbe(rank=3, probe="post_send", hit=4)],
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 1, 2}

    def test_root_failure_in_termination_aborts(self):
        # Fig. 11 line 24: non-roots waiting for T_D abort when the root
        # dies.  Kill the root just before it broadcasts termination.
        cfg = RingConfig(max_iter=3, variant=RingVariant.FT_MARKER,
                         termination=Termination.ROOT_BCAST)
        r = run_sim(
            make_ring_main(cfg), 4,
            injectors=[KillAtProbe(rank=0, probe="pre_termination", hit=1)],
            on_deadlock="return",
        )
        assert r.aborted is not None

    def test_root_failure_mid_ring_hangs_without_rootft(self):
        # The Fig. 3 design *assumes* the root survives (§III); a root
        # death in the main loop drains the ring's control and the job
        # hangs — the motivation for §III-D (see test_ring_rootft).
        cfg = RingConfig(max_iter=6, variant=RingVariant.FT_MARKER,
                         termination=Termination.ROOT_BCAST,
                         work_per_iter=1e-6)
        r = run_sim(
            make_ring_main(cfg), 4,
            injectors=[KillAtProbe(rank=0, probe="root_post_send", hit=3)],
            on_deadlock="return",
        )
        assert r.hung

    def test_validate_all_termination_with_failures(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            term=Termination.VALIDATE_ALL,
            nprocs=5,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=3)],
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 1, 3, 4}


class TestMultipleFailures:
    @pytest.mark.parametrize("term", [Termination.ROOT_BCAST,
                                      Termination.VALIDATE_ALL])
    def test_two_failures_distinct_iterations(self, term):
        r = run_ring(
            RingVariant.FT_MARKER,
            term=term,
            nprocs=6,
            max_iter=5,
            injectors=[
                KillAtProbe(rank=2, probe="post_recv", hit=2),
                KillAtProbe(rank=4, probe="post_send", hit=3),
            ],
        )
        assert not r.hung
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert markers == [0, 1, 2, 3, 4]

    def test_ring_shrinks_to_two(self):
        r = run_ring(
            RingVariant.FT_MARKER,
            term=Termination.VALIDATE_ALL,
            nprocs=4,
            max_iter=6,
            injectors=[
                KillAtProbe(rank=2, probe="post_recv", hit=1),
                KillAtProbe(rank=3, probe="post_recv", hit=2),
            ],
        )
        assert not r.hung
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert markers == list(range(6))
        # Two survivors: values are 1 injected + 1 increment.
        assert dict(r.value(0)["root_completions"])[5] == 2

    def test_time_based_kill_mid_ring(self):
        cfg = RingConfig(max_iter=8, variant=RingVariant.FT_MARKER,
                         termination=Termination.VALIDATE_ALL,
                         work_per_iter=1e-6)
        sim = Simulation(nprocs=5)
        sim.add_injector(KillAtTime(rank=3, time=4.3e-6))
        r = sim.run(make_ring_main(cfg), on_deadlock="return")
        assert not r.hung
        markers = [m for m, _ in r.value(0)["root_completions"]]
        assert markers == list(range(8))
