"""Point-to-point semantics: blocking/non-blocking, wildcards, ordering."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    ErrorHandler,
    InvalidArgumentError,
    Simulation,
    SimulationError,
    wait,
    waitall,
)
from tests.conftest import run_sim


class TestBasicSendRecv:
    def test_blocking_roundtrip(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send({"k": 1}, dest=1, tag=5)
            else:
                data, status = comm.recv(source=0, tag=5)
                assert status.source == 0
                assert status.tag == 5
                return data

        r = run_sim(main, 2)
        assert r.value(1) == {"k": 1}

    def test_payload_not_aliased_is_not_required(self):
        # Payloads are passed by reference (zero-copy, like shared memory);
        # the ring code defends itself by copying.  Document the semantic.
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                obj = [1, 2]
                comm.send(obj, dest=1)
                obj.append(3)  # after delivery this may be visible
            else:
                data, _ = comm.recv(source=0)
                return list(data)

        r = run_sim(main, 2)
        assert r.value(1)[:2] == [1, 2]

    def test_isend_completes_eagerly(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.isend("hi", dest=1)
                assert req.done
                wait(req)
            else:
                return comm.recv(source=0)[0]

        assert run_sim(main, 2).value(1) == "hi"

    def test_irecv_then_wait(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(99, dest=1)
            else:
                req = comm.irecv(source=0)
                status = wait(req)
                assert status.count > 0
                return req.data

        assert run_sim(main, 2).value(1) == 99

    def test_self_send(self):
        def main(mpi):
            comm = mpi.comm_world
            req = comm.irecv(source=comm.rank, tag=3)
            comm.send("loop", comm.rank, tag=3)
            wait(req)
            return req.data

        r = run_sim(main, 2)
        assert r.value(0) == "loop" and r.value(1) == "loop"

    def test_sendrecv(self):
        def main(mpi):
            comm = mpi.comm_world
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            data, _ = comm.sendrecv(comm.rank, dest=right, source=left)
            return data

        r = run_sim(main, 4)
        assert [r.value(i) for i in range(4)] == [3, 0, 1, 2]


class TestWildcards:
    def test_any_source(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                seen = set()
                for _ in range(comm.size - 1):
                    data, status = comm.recv(source=ANY_SOURCE, tag=1)
                    assert data == status.source
                    seen.add(data)
                return sorted(seen)
            comm.send(comm.rank, dest=0, tag=1)

        assert run_sim(main, 4).value(0) == [1, 2, 3]

    def test_any_tag(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("a", dest=1, tag=17)
            else:
                data, status = comm.recv(source=0, tag=ANY_TAG)
                assert status.tag == 17
                return data

        assert run_sim(main, 2).value(1) == "a"

    def test_tag_selectivity(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
            else:
                b, _ = comm.recv(source=0, tag=2)
                a, _ = comm.recv(source=0, tag=1)
                return (a, b)

        assert run_sim(main, 2).value(1) == ("first", "second")


class TestOrdering:
    def test_non_overtaking_same_channel(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=9)
            else:
                return [comm.recv(source=0, tag=9)[0] for _ in range(20)]

        assert run_sim(main, 2).value(1) == list(range(20))

    def test_non_overtaking_with_mixed_sizes(self):
        # A large early message must not be overtaken by a small later one.
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(b"x" * 100_000, dest=1, tag=9)
                comm.send(b"y", dest=1, tag=9)
            else:
                first, _ = comm.recv(source=0, tag=9)
                second, _ = comm.recv(source=0, tag=9)
                return (len(first), len(second))

        assert run_sim(main, 2).value(1) == (100_000, 1)

    def test_unexpected_queue_preserves_order(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=4)
            else:
                mpi.compute(1.0)  # let everything land unexpected
                return [comm.recv(source=0, tag=4)[0] for _ in range(5)]

        assert run_sim(main, 2).value(1) == list(range(5))


class TestProcNull:
    def test_send_to_proc_null_is_noop(self):
        def main(mpi):
            mpi.comm_world.send("void", dest=PROC_NULL)
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"

    def test_recv_from_proc_null_completes_empty(self):
        def main(mpi):
            data, status = mpi.comm_world.recv(source=PROC_NULL)
            assert data is None
            assert status.source == PROC_NULL
            assert status.count == 0
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"


class TestSsend:
    def test_ssend_completes_on_match(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.ssend("sync", dest=1)
                return mpi.now
            mpi.compute(1.0)
            comm.recv(source=0)

        r = run_sim(main, 2)
        # Sender must have waited for the receiver's late recv.
        assert r.value(0) >= 1.0

    def test_issend_pending_until_matched(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                req = comm.issend("sync", dest=1)
                assert not req.done
                wait(req)
                return "matched"
            comm.recv(source=0)

        assert run_sim(main, 2).value(0) == "matched"

    def test_unmatched_ssend_deadlocks(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.ssend("never", dest=1)

        r = run_sim(main, 2, on_deadlock="return")
        assert r.hung


class TestProbe:
    def test_probe_blocks_until_message(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.compute(1.0)
                comm.send("late", dest=1, tag=6)
            else:
                status = comm.probe(source=0, tag=6)
                assert status.tag == 6
                return comm.recv(source=0, tag=6)[0]

        assert run_sim(main, 2).value(1) == "late"

    def test_iprobe_none_when_empty(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 1:
                return comm.iprobe(source=0)

        assert run_sim(main, 2).value(1) is None


class TestArgumentValidation:
    def test_bad_dest_raises(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            with pytest.raises(InvalidArgumentError):
                comm.send("x", dest=99)
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_bad_tag_raises(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            with pytest.raises(InvalidArgumentError):
                comm.send("x", dest=1, tag=-5)
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_bad_source_raises(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            with pytest.raises(InvalidArgumentError):
                comm.recv(source=42)
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_app_exception_surfaces_as_simulation_error(self):
        def main(mpi):
            if mpi.rank == 0:
                raise RuntimeError("app bug")

        with pytest.raises(SimulationError) as exc_info:
            run_sim(main, 2)
        assert exc_info.value.rank == 0


class TestCancel:
    def test_cancelled_recv_completes_cancelled(self):
        def main(mpi):
            comm = mpi.comm_world
            req = comm.irecv(source=ANY_SOURCE, tag=8)
            req.cancel()
            assert req.done
            assert req.status.cancelled
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_cancel_after_completion_is_noop(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(1, dest=1, tag=8)
            else:
                req = comm.irecv(source=0, tag=8)
                wait(req)
                req.cancel()
                assert not req.status.cancelled
                return req.data

        assert run_sim(main, 2).value(1) == 1


class TestTiming:
    def test_virtual_time_advances_with_messages(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("x", dest=1)
            else:
                comm.recv(source=0)

        r = run_sim(main, 2)
        assert r.final_time > 0

    def test_compute_advances_local_clock(self):
        def main(mpi):
            mpi.compute(2.5)
            return mpi.now

        assert run_sim(main, 1).value(0) >= 2.5

    def test_compute_rejects_negative(self):
        def main(mpi):
            with pytest.raises(ValueError):
                mpi.compute(-1.0)
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"

    def test_waitall_accumulates(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(4)]
                waitall(reqs)
            else:
                reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
                waitall(reqs)
                return [r.data for r in reqs]

        assert run_sim(main, 2).value(1) == [0, 1, 2, 3]
