"""Cross-protocol differential matrix (:mod:`repro.protocols`).

One logical workload — a 5-rank token ring pushing 6 markers — faces one
fixed set of fault schedules under all four recovery families:

* ``rts``              — the paper's run-through stabilization;
* ``shrink_repair``    — ULFM revoke / agree / shrink epochs;
* ``replication``      — active rank replicas with receiver-side dedup;
* ``partial_restart``  — respawn into the dead slot, recover the counter
  from the left neighbor (SNIPPETS ``partial-restart.c``).

The matrix pins the *shared* contract (survivors agree on the completed
set, no duplicate delivery, no hang) on identical ``(victim, time)``
schedules, then each protocol's own promise: replication's client sees
**zero recovery gap**, and partial restart's recruit resumes from the
**neighbor-held** counter rather than from zero.  The compare-protocols
study over the same schedules must be byte-identical serial vs pooled.
"""

from __future__ import annotations

import pytest

from repro.analysis import perf_dict, standard_ring_invariants
from repro.faults import CompositeInjector, KillAtTime
from repro.fuzz.config import scenario_from_dict, scenario_to_dict
from repro.parallel import RingScenario
from repro.protocols import (
    ABORT_REPLICAS_EXHAUSTED,
    ABORT_ROOT_LOST,
    ABORT_SPARES_EXHAUSTED,
    PROTOCOLS,
    run_compare_protocols,
)

NPROCS = 5
ITERS = 6

#: Identical logical fault schedules every protocol must absorb.  All
#: victims are logical ranks 1..NPROCS-1 — the schedule vocabulary shared
#: by the families (replication maps rank ``v`` to replica 0 of logical
#: ``v``; partial restart's spares are never scheduled victims).
SCHEDULES = [
    (),
    ((2, 1.5e-5),),
    ((3, 8e-6),),
    ((2, 1.5e-5), (3, 2.5e-5)),
]


def _run(protocol: str, kills, **kw):
    scenario = RingScenario(
        nprocs=NPROCS,
        iters=ITERS,
        detection_latency=2e-6,
        protocol=protocol,
        **kw,
    )
    sim, main = scenario()
    if kills:
        sim.add_injector(
            CompositeInjector(KillAtTime(rank=v, time=t) for v, t in kills)
        )
    return sim.run(main, on_deadlock="return")


def _reports(result):
    return {
        o.rank: o.value
        for o in result.outcomes
        if o.state == "done" and isinstance(o.value, dict)
    }


class TestSharedInvariants:
    """The battery every family must pass on every shared schedule."""

    @pytest.mark.parametrize("kills", SCHEDULES, ids=repr)
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_matrix(self, protocol, kills):
        result = _run(protocol, kills)
        assert not result.hung, (protocol, kills, result.deadlock)
        for inv in standard_ring_invariants(ITERS, NPROCS):
            violation = inv(result)
            assert violation is None, (protocol, kills, violation)
        # These schedules are survivable by construction: no aborts, and
        # some root logged every marker exactly once.
        assert result.aborted is None, (protocol, kills, result.aborted)
        roots = [
            v for v in _reports(result).values() if v["role"] == "root"
        ]
        assert roots, (protocol, kills)
        for root in roots:
            assert root["iterations_completed"] == ITERS
            markers = [m for m, _ in root["root_completions"]]
            assert markers == list(range(ITERS)), (protocol, kills)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_unsurvivable_schedules_abort_with_classified_code(
        self, protocol
    ):
        # Kill every non-root logical rank: rts recognizes its way down
        # to a self-ring, the others abort with their documented codes.
        kills = tuple((v, 5e-6 + v * 1e-6) for v in range(1, NPROCS))
        result = _run(protocol, kills)
        assert not result.hung, (protocol, result.deadlock)
        if result.aborted is not None:
            assert result.aborted.code in (
                ABORT_ROOT_LOST,
                ABORT_SPARES_EXHAUSTED,
                ABORT_REPLICAS_EXHAUSTED,
                61,  # ABORT_RING_ALONE
                -1,  # the rts driver's own ring-collapse abort
            ), (protocol, result.aborted)


class TestReplicationZeroGap:
    """A single replica loss must be invisible to the client timeline."""

    def test_failover_has_no_recovery_gap(self):
        base = _run("replication", ())
        for kills in SCHEDULES[1:]:
            faulted = _run("replication", kills)
            assert faulted.aborted is None
            # Zero-gap: nothing is retransmitted, respawned, or
            # re-executed, so the faulted run tracks the failure-free
            # baseline to within sub-detection-latency scheduling
            # jitter — orders of magnitude under any actual recovery
            # (compare shrink/repair's per-epoch re-execution).
            assert faulted.final_time <= base.final_time + 2e-6, kills
            for v in _reports(faulted).values():
                assert v["resends"] == 0

    def test_surviving_replica_absorbs_duplicates(self):
        faulted = _run("replication", ((2, 1.5e-5),))
        dups = sum(
            v["duplicates_discarded"] for v in _reports(faulted).values()
        )
        assert dups > 0  # the dedup shim did real work

    def test_both_replicas_dead_is_classified(self):
        result = _run(
            "replication", ((2, 1.5e-5), (2 + NPROCS, 1.6e-5))
        )
        assert result.aborted is not None
        assert result.aborted.code == ABORT_REPLICAS_EXHAUSTED


class TestPartialRestartNeighborState:
    """The recruit resumes from neighbor-held state, not from zero."""

    def test_recruit_recovers_neighbor_counter(self):
        result = _run("partial_restart", ((3, 2.0e-5),))
        assert result.aborted is None
        recruits = [
            v for v in _reports(result).values() if v["role"] == "recruit"
        ]
        assert len(recruits) == 1
        (rec,) = recruits
        assert rec["slot"] == 3
        # The left neighbor shipped a non-trivial marker: mid-run state,
        # recovered rather than recomputed.
        assert rec["recovered_marker"] is not None
        assert 0 < rec["recovered_marker"] <= ITERS
        assert rec["cur_marker"] >= rec["recovered_marker"]

    def test_spare_pool_bounds_recoveries(self):
        result = _run(
            "partial_restart",
            ((1, 1.0e-5), (2, 1.5e-5), (3, 2.0e-5)),
            spares=2,
        )
        assert result.aborted is not None
        assert result.aborted.code == ABORT_SPARES_EXHAUSTED

    def test_root_loss_is_classified(self):
        result = _run("partial_restart", ((0, 1.5e-5),))
        assert result.aborted is not None
        assert result.aborted.code == ABORT_ROOT_LOST


class TestCompareProtocolsDeterminism:
    """The study is byte-identical serial vs pooled on the same seeds."""

    def _study(self, workers=None):
        return run_compare_protocols(
            nprocs=NPROCS,
            iters=ITERS,
            seeds=range(6),
            horizon=4e-5,
            detection_latency=2e-6,
            workers=workers,
        )

    def test_serial_pooled_byte_identical(self):
        serial = self._study()
        pooled = self._study(workers=2)
        assert serial.format() == pooled.format()
        assert serial.records == pooled.records

    def test_summary_shape(self):
        rep = self._study()
        s = rep.summary()
        assert tuple(s) == PROTOCOLS
        for protocol in PROTOCOLS:
            d = s[protocol]
            assert d["runs"] == 6
            assert d["hangs"] == 0 and d["violations"] == 0
            assert d["hang_window"] == 0.0
        # Replication pays its overhead up front, failures or not.
        assert (
            s["replication"]["baseline_msgs"] > s["rts"]["baseline_msgs"]
        )
        # Zero-gap failover: replication's recovery latency is flat.
        assert (
            s["replication"]["recovery_latency"]["max"]
            <= s["shrink_repair"]["recovery_latency"]["max"]
        )

    def test_identical_schedules_across_protocols(self):
        rep = self._study()
        by_protocol = {
            p: [
                r.kills
                for r in rep.records
                if r.protocol == p and not r.baseline
            ]
            for p in PROTOCOLS
        }
        schedules = set(map(tuple, by_protocol.values()))
        assert len(schedules) == 1  # every family faced the same kills


class TestScenarioPlumbing:
    """The protocol knob survives the fuzz spec round-trip and is
    rejected where it cannot apply."""

    def test_fuzz_spec_round_trip(self):
        spec = RingScenario(
            nprocs=NPROCS, iters=ITERS, protocol="partial_restart", spares=3
        )
        again = scenario_from_dict(scenario_to_dict(spec))
        assert again == spec

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            RingScenario(protocol="time_travel")

    def test_rootft_is_rts_only(self):
        with pytest.raises(ValueError, match="rootft"):
            RingScenario(rootft=True, protocol="shrink_repair")

    def test_app_scenarios_are_rts_only(self):
        from repro.parallel import AppScenario

        with pytest.raises(ValueError, match="rts"):
            AppScenario(app="heat1d", protocol="replication")

    @pytest.mark.parametrize("protocol", PROTOCOLS[1:])
    def test_protocol_runs_pay_their_own_messages(self, protocol):
        # Sanity: the families genuinely differ on the wire — message
        # counts are protocol-specific even on clean runs.
        rts = perf_dict(_run("rts", ()))
        other = perf_dict(_run(protocol, ()))
        assert other["messages_sent"] != rts["messages_sent"]
