"""Bit-for-bit reproducibility: identical seeds => identical traces."""

from __future__ import annotations

import pytest

from repro.simmpi import Simulation
from repro.core import RingConfig, RingVariant, Termination, make_ring_main
from repro.faults import KillAtProbe, KillAtTime


def ring_factory(seed: int, policy: str = "rr", kill: bool = False):
    sim = Simulation(nprocs=5, seed=seed, policy=policy)
    if kill:
        sim.add_injector(KillAtProbe(rank=2, probe="post_recv", hit=2))
    cfg = RingConfig(max_iter=4, termination=Termination.VALIDATE_ALL)
    return sim, make_ring_main(cfg)


class TestTraceDeterminism:
    @pytest.mark.parametrize("policy", ["rr", "lowest", "random"])
    def test_identical_runs_identical_traces(self, policy):
        sim1, main1 = ring_factory(3, policy)
        sim2, main2 = ring_factory(3, policy)
        t1 = sim1.run(main1).trace.keys()
        t2 = sim2.run(main2).trace.keys()
        assert t1 == t2

    def test_identical_runs_with_failures(self):
        sim1, main1 = ring_factory(3, kill=True)
        sim2, main2 = ring_factory(3, kill=True)
        r1 = sim1.run(main1, on_deadlock="return")
        r2 = sim2.run(main2, on_deadlock="return")
        assert r1.trace.keys() == r2.trace.keys()
        assert r1.values() == r2.values()
        assert r1.final_time == r2.final_time

    def test_different_random_seeds_may_differ(self):
        # Not guaranteed for every pair, but these two differ; the test
        # pins that seeds are actually plumbed through.
        def main(mpi):
            comm = mpi.comm_world
            comm.send(mpi.rank, dest=(mpi.rank + 1) % mpi.size)
            comm.recv(source=(mpi.rank - 1) % mpi.size)

        traces = set()
        for seed in range(6):
            r = Simulation(nprocs=4, policy="random", seed=seed).run(main)
            traces.add(tuple(r.trace.keys()))
        assert len(traces) > 1

    def test_time_based_kills_deterministic(self):
        def build():
            sim = Simulation(nprocs=4)
            sim.add_injector(KillAtTime(rank=2, time=3e-6))
            cfg = RingConfig(max_iter=5, termination=Termination.VALIDATE_ALL)
            return sim, make_ring_main(cfg)

        sims = [build() for _ in range(2)]
        results = [s.run(m, on_deadlock="return") for s, m in sims]
        assert results[0].trace.keys() == results[1].trace.keys()

    def test_event_and_request_ids_reset_per_simulation(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send("x", dest=1)
            else:
                req = comm.irecv(source=0)
                from repro.simmpi import wait

                wait(req)
                return req.id

        first = Simulation(nprocs=2).run(main).value(1)
        second = Simulation(nprocs=2).run(main).value(1)
        assert first == second


class TestSimulationGuards:
    def test_simulation_runs_once(self):
        def main(mpi):
            return 1

        sim = Simulation(nprocs=1)
        sim.run(main)
        with pytest.raises(RuntimeError):
            sim.run(main)

    def test_bad_on_deadlock_value(self):
        sim = Simulation(nprocs=1)
        with pytest.raises(ValueError):
            sim.run(lambda mpi: None, on_deadlock="explode")

    def test_wrong_mains_count(self):
        sim = Simulation(nprocs=3)
        with pytest.raises(ValueError):
            sim.run([lambda mpi: None] * 2)

    def test_kill_rank_out_of_range(self):
        sim = Simulation(nprocs=2)
        with pytest.raises(ValueError):
            sim.kill(5, at_time=1.0)

    def test_nprocs_must_be_positive(self):
        with pytest.raises(ValueError):
            Simulation(nprocs=0)

    def test_max_events_guard(self):
        from repro.simmpi import SimulationLimitExceeded

        def main(mpi):
            while True:
                mpi.compute(1e-9)

        sim = Simulation(nprocs=1, max_events=1000)
        with pytest.raises(SimulationLimitExceeded):
            sim.run(main)

    def test_max_time_guard(self):
        from repro.simmpi import SimulationLimitExceeded

        def main(mpi):
            while True:
                mpi.compute(10.0)

        sim = Simulation(nprocs=1, max_time=100.0)
        with pytest.raises(SimulationLimitExceeded):
            sim.run(main)

    def test_mpmd_mains(self):
        def a(mpi):
            return "a"

        def b(mpi):
            return "b"

        r = Simulation(nprocs=2).run([a, b])
        assert r.value(0) == "a" and r.value(1) == "b"
