"""Property-based tests for the distributed protocols under random faults.

These are the heavyweight correctness checks: hypothesis draws failure
schedules (victims, times, detection latencies, consensus mode, scheduler
seed) and asserts the system-level invariants the paper's design promises
— consensus agreement, ring progress without hangs or duplicates, farm
completeness.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import standard_ring_invariants
from repro.apps import FarmConfig, expected_results, make_farm_mains
from repro.core import RingConfig, Termination, make_ring_main, make_rootft_main
from repro.faults import KillAtTime
from repro.ft import comm_shrink, comm_validate_all
from repro.parallel import RingScenario
from repro.protocols import (
    ABORT_REPLICAS_EXHAUSTED,
    ABORT_RING_ALONE,
    ABORT_ROOT_LOST,
    ABORT_SPARES_EXHAUSTED,
)
from repro.simmpi import ErrorHandler, Simulation

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def kills_strategy(nprocs: int, horizon: float, max_kills: int,
                   include_root: bool = False):
    lo = 0 if include_root else 1
    return st.lists(
        st.tuples(
            st.integers(lo, nprocs - 1),
            st.floats(min_value=0, max_value=horizon, allow_nan=False),
        ),
        max_size=max_kills,
        unique_by=lambda kv: kv[0],
    )


class TestConsensusAgreement:
    @given(
        kills=kills_strategy(6, horizon=3e-5, max_kills=4),
        mode=st.sampled_from(["full", "early"]),
        lat=st.sampled_from([0.0, 3e-7, 2e-6]),
        seed=st.integers(0, 3),
    )
    @settings(**COMMON)
    def test_survivors_agree(self, kills, mode, lat, seed):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            return comm_validate_all(comm, mode=mode)

        sim = Simulation(nprocs=6, seed=seed, policy="random",
                         detection_latency=lat)
        for rank, t in kills:
            sim.kill(rank, at_time=t)
        r = sim.run(main, on_deadlock="return")
        assert not r.hung, r.deadlock
        counts = {v for v in r.values().values()}
        assert len(counts) <= 1  # uniform agreement among survivors
        if counts:
            (count,) = counts
            # Validity: the agreed count never exceeds true failures and
            # only counts genuinely dead ranks.
            assert count <= len(r.failed_ranks)


class TestRingUnderRandomFaults:
    @given(
        kills=kills_strategy(5, horizon=1.2e-5, max_kills=3),
        seed=st.integers(0, 3),
        lat=st.sampled_from([0.0, 5e-7, 2e-6]),
    )
    @settings(**COMMON)
    def test_marker_ring_invariants(self, kills, seed, lat):
        cfg = RingConfig(max_iter=5, termination=Termination.VALIDATE_ALL,
                         work_per_iter=1e-6)
        sim = Simulation(nprocs=5, seed=seed, policy="random",
                         detection_latency=lat)
        for rank, t in kills:
            sim.kill(rank, at_time=t)
        r = sim.run(make_ring_main(cfg), on_deadlock="return")
        for inv in standard_ring_invariants(5, 5):
            violation = inv(r)
            assert violation is None, (violation, kills, seed, lat)

    @given(
        kills=kills_strategy(5, horizon=1.2e-5, max_kills=2,
                             include_root=True),
        seed=st.integers(0, 3),
    )
    @settings(**COMMON)
    def test_rootft_ring_invariants(self, kills, seed):
        cfg = RingConfig(max_iter=5, work_per_iter=1e-6)
        sim = Simulation(nprocs=5, seed=seed, policy="random")
        for rank, t in kills:
            sim.kill(rank, at_time=t)
        r = sim.run(make_rootft_main(cfg), on_deadlock="return")
        for inv in standard_ring_invariants(5, 5, allow_root_loss=True):
            violation = inv(r)
            assert violation is None, (violation, kills, seed)


class TestRecoveryFamiliesUnderRandomFaults:
    """The :mod:`repro.protocols` families on hypothesis-drawn schedules.

    The contract is *no silent wrong answer*: whatever the schedule,
    every family either completes with the correct survivor state (all
    markers logged exactly once at a root) or aborts with one of its
    documented classification codes — and the shared ring battery holds
    either way.
    """

    PROTOCOL_ABORTS = {
        "shrink_repair": {ABORT_RING_ALONE},
        "replication": {ABORT_REPLICAS_EXHAUSTED},
        "partial_restart": {
            ABORT_RING_ALONE,
            ABORT_SPARES_EXHAUSTED,
            ABORT_ROOT_LOST,
        },
    }

    @given(
        protocol=st.sampled_from(
            ["shrink_repair", "replication", "partial_restart"]
        ),
        kills=kills_strategy(5, horizon=3e-5, max_kills=3),
        lat=st.sampled_from([0.0, 5e-7, 2e-6]),
    )
    @settings(**COMMON)
    def test_correct_state_or_classified_abort(self, protocol, kills, lat):
        scenario = RingScenario(
            nprocs=5, iters=5, detection_latency=lat, protocol=protocol
        )
        sim, main = scenario()
        for rank, t in kills:
            sim.kill(rank, at_time=t)
        r = sim.run(main, on_deadlock="return")
        assert not r.hung, (protocol, kills, lat, r.deadlock)
        for inv in standard_ring_invariants(5, 5):
            violation = inv(r)
            assert violation is None, (protocol, kills, lat, violation)
        if r.aborted is not None:
            assert r.aborted.code in self.PROTOCOL_ABORTS[protocol], (
                protocol, kills, lat, r.aborted,
            )
            return
        roots = [
            o.value
            for o in r.outcomes
            if o.state == "done"
            and isinstance(o.value, dict)
            and o.value["role"] == "root"
        ]
        assert roots, (protocol, kills, lat)
        for root in roots:
            markers = [m for m, _ in root["root_completions"]]
            assert markers == list(range(5)), (protocol, kills, lat)


class TestShrinkGroupOrder:
    """``comm_shrink`` preserves the survivors' relative rank order."""

    @given(
        victims=st.sets(st.integers(1, 5), max_size=3),
        lat=st.sampled_from([5e-7, 2e-6]),
    )
    @settings(**COMMON)
    def test_shrunken_group_is_ordered_subsequence(self, victims, lat):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            mpi.compute(1e-4)  # outlive every kill + detection
            new = comm_shrink(comm)
            return tuple(new.group)

        sim = Simulation(nprocs=6, detection_latency=lat)
        for i, rank in enumerate(sorted(victims)):
            sim.kill(rank, at_time=1e-5 + i * 1e-6)
        r = sim.run(main, on_deadlock="return")
        assert not r.hung, r.deadlock
        survivors = tuple(w for w in range(6) if w not in victims)
        groups = set(r.values().values())
        # Every survivor built the same communicator, its group is
        # exactly the survivor set, and world-rank order is preserved.
        assert groups == {survivors}


class TestFarmUnderRandomFaults:
    @given(
        kills=kills_strategy(5, horizon=1e-5, max_kills=2),
        seed=st.integers(0, 3),
    )
    @settings(**COMMON)
    def test_farm_completes_all_tasks(self, kills, seed):
        cfg = FarmConfig(num_tasks=10, work_per_task=1e-6)
        sim = Simulation(nprocs=5, seed=seed, policy="random")
        for rank, t in kills:
            sim.kill(rank, at_time=t)
        r = sim.run(make_farm_mains(cfg, 5), on_deadlock="return")
        assert not r.hung
        if r.aborted is None and r.outcomes[0].state == "done":
            assert r.value(0)["results"] == expected_results(cfg)
