"""The distributed sweep transport: socket worker fleet, wire protocol,
worker-side cache lookups, and dead-worker recovery.

The contract under test extends ``docs/parallel.md`` across machines: a
campaign fanned out to ``repro worker serve`` processes produces a
report **byte-identical** to serial and in-process-pool execution —
same run order, kills, violations, formatted text — while warm cache
entries are served worker-side and never cross the wire.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import perf
from repro.cache import RunCache
from repro.faults import run_campaign
from repro.parallel import (
    ProcessPoolRunner,
    RemoteRunner,
    SerialRunner,
    SweepError,
    WorkerServer,
    parse_worker_addrs,
)
from repro.parallel.remote import _execute_chunk, _FrameBuffer, _pack, ping
from repro.parallel.scenarios import RingScenario
from tests.conftest import (
    RING_INVARIANTS as INVARIANTS,
    RING_SCENARIO as SCENARIO,
    campaign_fields as _campaign_fields,
)
from tests.test_parallel import BoomJob, SquareJob

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# Workers: in-process (fast, shares the test process) and subprocess
# (real `repro worker serve`, killable — the recovery tests need a
# worker whose death closes its sockets).
# ---------------------------------------------------------------------------


@pytest.fixture
def worker_addr():
    server = WorkerServer(("127.0.0.1", 0))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield server.address
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _spawn_worker() -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start a real ``repro worker serve`` subprocess on an ephemeral
    port and scrape the bound address from its readiness line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT), env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve",
         "--bind", "127.0.0.1:0"],
        cwd=REPO_ROOT,
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stderr.readline()
    assert "listening on" in line, f"worker failed to start: {line!r}"
    hostport = line.split("listening on ")[1].split()[0]
    host, port = hostport.rsplit(":", 1)
    return proc, (host, int(port))


@pytest.fixture
def subprocess_workers():
    procs: list[subprocess.Popen] = []
    addrs: list[tuple[str, int]] = []
    for _ in range(2):
        proc, addr = _spawn_worker()
        procs.append(proc)
        addrs.append(addr)
    yield addrs
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
        proc.stderr.close()
        proc.wait(timeout=10)


# ---------------------------------------------------------------------------
# Fixture jobs (module level: they cross the socket by reference, so
# subprocess workers import them as ``tests.test_remote``).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoisonFactory:
    """A ring-scenario factory that crashes the *first* worker process
    to build it (``os._exit``, no cleanup — a hard failure), exactly
    once across the fleet (exclusive sentinel creation picks the one
    victim).  Everywhere else — serially, or on the retry — it behaves
    like the plain scenario, so the campaign report must come out
    byte-identical to a serial run."""

    scenario: RingScenario
    sentinel: str

    def __call__(self):
        if os.environ.get("REPRO_WORKER_SERVE"):
            try:
                with open(self.sentinel, "x"):
                    pass
            except FileExistsError:
                pass
            else:
                os._exit(1)
        return self.scenario()


def _campaign(runner=None, workers=None, factory=SCENARIO, **kw):
    return run_campaign(
        factory,
        seeds=range(6),
        horizon=8e-6,
        invariants=INVARIANTS,
        runner=runner,
        workers=workers,
        **kw,
    )


# ---------------------------------------------------------------------------
# Wire protocol pieces
# ---------------------------------------------------------------------------


class TestAddresses:
    def test_parse_single_and_multi(self):
        assert parse_worker_addrs("127.0.0.1:7777") == (("127.0.0.1", 7777),)
        assert parse_worker_addrs("a:1, b:2 ,c:3,") == (
            ("a", 1), ("b", 2), ("c", 3)
        )

    @pytest.mark.parametrize(
        "spec", ["", "nonsense", ":7777", "host:", "host:abc", "host:0",
                 "host:65536"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_worker_addrs(spec)


class TestFraming:
    def test_frame_buffer_reassembles_split_frames(self):
        objs = [("done", 0, list(range(50))), ("pong", {"pid": 1}), "x" * 1000]
        wire = b"".join(_pack(obj)[0] for obj in objs)
        buf = _FrameBuffer()
        got = []
        # Drip-feed one byte at a time: frames must only surface once
        # complete, in order, regardless of how recv() slices them.
        for i in range(0, len(wire), 7):
            buf.feed(wire[i : i + 7])
            got.extend(buf.frames())
        assert got == objs
        assert buf.wire_in == len(wire)

    def test_oversized_frame_rejected(self):
        import struct

        buf = _FrameBuffer()
        buf.feed(struct.pack(">Q", 1 << 40))
        with pytest.raises(ConnectionError):
            list(buf.frames())


# ---------------------------------------------------------------------------
# RemoteRunner semantics (in-process worker)
# ---------------------------------------------------------------------------


class TestRemoteRunner:
    def test_results_in_submission_order(self, worker_addr):
        runner = RemoteRunner(addresses=[worker_addr], chunk_size=2)
        assert runner.run([SquareJob(x) for x in range(10)]) == [
            x * x for x in range(10)
        ]

    def test_empty_batch(self, worker_addr):
        assert RemoteRunner(addresses=[worker_addr]).run([]) == []

    def test_application_error_propagates_and_is_not_retried(
        self, worker_addr
    ):
        runner = RemoteRunner(
            addresses=[worker_addr], chunk_size=1, retries=3
        )
        with pytest.raises(ValueError, match="boom"):
            runner.run([SquareJob(1), BoomJob()])

    def test_no_reachable_workers_is_a_sweep_error(self):
        # An ephemeral port nothing listens on.
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            dead = s.getsockname()
        runner = RemoteRunner(addresses=[dead], connect_timeout=0.5)
        with pytest.raises(SweepError, match="no reachable workers"):
            runner.run([SquareJob(1)])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RemoteRunner(addresses=())
        with pytest.raises(ValueError):
            RemoteRunner(addresses="not-an-address")
        with pytest.raises(ValueError):
            RemoteRunner(addresses=[("h", 1)], chunk_size=0)
        with pytest.raises(ValueError):
            RemoteRunner(addresses=[("h", 1)], retries=-1)

    def test_addresses_accept_spec_string(self, worker_addr):
        runner = RemoteRunner(addresses=f"{worker_addr[0]}:{worker_addr[1]}")
        assert runner.run([SquareJob(3)]) == [9]

    def test_ping(self, worker_addr):
        info = ping(worker_addr)
        assert info["pid"] == os.getpid()  # in-process server
        assert info["busy"] is False

    def test_campaign_identical_across_all_runners(self, worker_addr):
        serial = _campaign()
        pooled = _campaign(runner=ProcessPoolRunner(workers=2))
        remote = _campaign(runner=RemoteRunner(addresses=[worker_addr]))
        assert _campaign_fields(serial) == _campaign_fields(remote)
        assert serial.summary() == pooled.summary() == remote.summary()
        assert serial.format() == pooled.format() == remote.format()

    def test_run_stream_window_one_keeps_submission_order(self, worker_addr):
        # The stream-window regression: even a window of 1 (fully
        # serialized in-flight) must yield submission-order results.
        jobs = [SquareJob(x) for x in range(9)]
        expected = [x * x for x in range(9)]
        remote = RemoteRunner(addresses=[worker_addr], chunk_size=2)
        assert list(remote.run_stream(iter(jobs), window=1)) == expected
        pool = ProcessPoolRunner(workers=2, chunk_size=2)
        assert list(pool.run_stream(iter(jobs), window=1)) == expected
        assert list(SerialRunner().run_stream(iter(jobs), window=1)) == expected

    def test_streamed_campaign_with_window_one_matches_materialized(
        self, worker_addr
    ):
        materialized = _campaign()
        streamed = _campaign(
            runner=RemoteRunner(addresses=[worker_addr]),
            stream=True,
            stream_window=1,
        )
        assert streamed.format() == materialized.format()


# ---------------------------------------------------------------------------
# Worker-side cache lookups
# ---------------------------------------------------------------------------


class TestWorkerSideCache:
    def test_warm_hits_happen_in_the_worker(self, worker_addr, tmp_path):
        cache = RunCache(tmp_path / "cache")

        def remote_runner():
            runner = RemoteRunner(addresses=[worker_addr])
            runner.attach_cache(cache)
            return runner

        serial = _campaign()
        before = perf.CACHE.snapshot()
        cold = _campaign(runner=remote_runner())
        cold_delta = perf.CACHE.delta(before)
        assert cold_delta["misses"] == 6
        assert cold_delta["stores"] == 6

        before = perf.CACHE.snapshot()
        warm_runner = remote_runner()
        warm = _campaign(runner=warm_runner)
        warm_delta = perf.CACHE.delta(before)
        assert warm_delta["hits"] == 6
        assert warm_delta["misses"] == 0

        assert serial.format() == cold.format() == warm.format()
        assert _campaign_fields(serial) == _campaign_fields(warm)

        (stats,) = warm_runner.worker_stats()
        assert stats["cache_hits"] == 6
        assert stats["cache_misses"] == 0

    def test_hit_items_carry_no_payload(self, tmp_path):
        # The wire-format guarantee behind the warm-run byte savings:
        # a worker-side hit ships ("hit", outcome) — two fields, no
        # stored payload — while misses ship the payload for the
        # parent to store.
        cache = RunCache(tmp_path / "cache")
        job = next(iter(_campaign_jobs()))
        cold = _execute_chunk([job], cache)
        assert cold[0][0] == "miss" and len(cold[0]) == 4
        cache.put_many([(cold[0][2], cold[0][3], job)])
        warm = _execute_chunk([job], cache)
        assert warm[0] == ("hit", cold[0][1])

    def test_uncacheable_jobs_ship_raw(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        items = _execute_chunk([SquareJob(4)], cache)
        assert items == [("raw", 16)]


def _campaign_jobs():
    from repro.faults.campaign import CampaignJob

    yield CampaignJob(
        factory=SCENARIO, seed=0, horizon=8e-6, invariants=INVARIANTS
    )


# ---------------------------------------------------------------------------
# Dead-worker recovery (real subprocess workers)
# ---------------------------------------------------------------------------


class TestDeadWorkerRecovery:
    def test_worker_killed_mid_campaign_is_recovered(
        self, subprocess_workers, tmp_path
    ):
        # One worker of two os._exit(1)s while executing a campaign
        # chunk.  The parent sees EOF, declares the chunk lost, and the
        # retry round re-dispatches it to the survivor — the report
        # must come out byte-identical to serial, with the recovery
        # visible in job_retries and the disconnect counters.
        factory = PoisonFactory(
            scenario=SCENARIO, sentinel=str(tmp_path / "poisoned")
        )
        serial = _campaign(factory=factory)
        runner = RemoteRunner(
            addresses=subprocess_workers, chunk_size=1, retries=2
        )
        remote = _campaign(runner=runner, factory=factory)
        assert (tmp_path / "poisoned").exists(), "no worker was killed"
        assert serial.format() == remote.format()
        assert _campaign_fields(serial) == _campaign_fields(remote)
        assert sum(runner.job_retries) > 0
        assert sum(s["disconnects"] for s in runner.worker_stats()) >= 1

    def test_streamed_death_keeps_telemetry_and_spans_canonical(
        self, subprocess_workers, tmp_path
    ):
        # Satellite of the observability PR: when a worker dies during
        # a *streamed* campaign, the telemetry stream must stay valid
        # (worker lines recording the disconnect included) and the span
        # stream must stay valid with the canonical job spans identical
        # to a serial run — the lost chunk's jobs land exactly once, on
        # the retry.
        from repro.obs.spans import (
            SpanRecorder,
            canonical_spans,
            recording,
            span_errors,
        )
        from repro.obs.telemetry import read_telemetry, telemetry_errors

        factory = PoisonFactory(
            scenario=SCENARIO, sentinel=str(tmp_path / "poisoned")
        )
        serial_rec = SpanRecorder(kind="campaign")
        with recording(serial_rec):
            serial = _campaign(factory=factory)

        log = tmp_path / "remote.jsonl"
        runner = RemoteRunner(
            addresses=subprocess_workers, chunk_size=1, retries=2
        )
        remote_rec = SpanRecorder(kind="campaign")
        with recording(remote_rec):
            remote = _campaign(
                runner=runner,
                factory=factory,
                stream=True,
                stream_window=2,
                telemetry=str(log),
            )
        assert (tmp_path / "poisoned").exists(), "no worker was killed"
        assert serial.format() == remote.format()
        assert sum(runner.job_retries) > 0
        # Telemetry: valid, with per-worker rows carrying the disconnect.
        assert telemetry_errors(log) == []
        workers = [
            r for r in read_telemetry(log) if r.get("kind") == "worker"
        ]
        assert len(workers) == 2
        assert sum(w["disconnects"] for w in workers) >= 1
        # Spans: valid, and canonically identical to the serial sweep.
        assert span_errors(remote_rec) == []
        assert span_errors(serial_rec) == []
        assert canonical_spans(remote_rec) == canonical_spans(serial_rec)
        # The death is visible in the span stream itself: at least one
        # dispatch closed as lost.
        lost = [
            s for s in remote_rec.spans
            if s.cat == "chunk" and s.attrs.get("status") == "lost"
        ]
        assert lost

    def test_dead_at_connect_worker_is_skipped(self, subprocess_workers):
        # A worker that is already gone when the round opens simply
        # never joins; the survivor does all the work.
        import signal

        serial = _campaign()
        runner = RemoteRunner(addresses=subprocess_workers)
        pid = ping(subprocess_workers[0])["pid"]
        os.kill(pid, signal.SIGKILL)
        remote = _campaign(runner=runner)
        assert serial.format() == remote.format()
        (dead, alive) = runner.worker_stats()
        assert dead["jobs"] == 0
        assert alive["jobs"] == 6


# ---------------------------------------------------------------------------
# Telemetry integration
# ---------------------------------------------------------------------------


class TestRemoteTelemetry:
    def test_worker_lines_recorded_and_canonical_form_matches_serial(
        self, worker_addr, tmp_path
    ):
        from repro.obs.telemetry import (
            canonical_lines,
            read_telemetry,
            telemetry_errors,
        )

        serial_log = tmp_path / "serial.jsonl"
        remote_log = tmp_path / "remote.jsonl"
        _campaign(telemetry=str(serial_log))
        _campaign(
            runner=RemoteRunner(addresses=[worker_addr]),
            telemetry=str(remote_log),
        )
        assert telemetry_errors(remote_log) == []
        records = read_telemetry(remote_log)
        workers = [r for r in records if r.get("kind") == "worker"]
        assert len(workers) == 1
        assert workers[0]["worker"] == f"{worker_addr[0]}:{worker_addr[1]}"
        assert workers[0]["jobs"] == 6
        # Canonical form drops transport detail: serial == remote.
        assert canonical_lines(serial_log) == canonical_lines(remote_log)

    def test_report_command_summarizes_remote_workers(
        self, worker_addr, tmp_path, capsys
    ):
        from repro.cli import main

        log = tmp_path / "remote.jsonl"
        _campaign(
            runner=RemoteRunner(addresses=[worker_addr]),
            telemetry=str(log),
        )
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "remote workers: 1" in out
        assert f"{worker_addr[0]}:{worker_addr[1]}" in out


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


class TestRemoteCli:
    def test_remote_campaign_matches_serial(self, worker_addr, capsys):
        from repro.cli import main

        base = ["campaign", "--nprocs", "4", "--iters", "3",
                "--runs", "5", "--horizon", "8e-6"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + [
            "--transport", "remote",
            "--workers-addr", f"{worker_addr[0]}:{worker_addr[1]}",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "[remote]" in captured.err

    def test_stream_window_flag(self, worker_addr, capsys):
        from repro.cli import main

        base = ["campaign", "--nprocs", "4", "--iters", "3",
                "--runs", "5", "--horizon", "8e-6"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--stream", "--stream-window", "1"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_transport_remote_requires_workers_addr(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="requires --workers-addr"):
            main(["campaign", "--runs", "2", "--transport", "remote"])

    def test_workers_addr_requires_transport_remote(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="requires --transport remote"):
            main(["campaign", "--runs", "2",
                  "--workers-addr", "127.0.0.1:7777"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--runs", "2", "--workers", "0"],
            ["campaign", "--runs", "2", "--stream-window", "0"],
            ["campaign", "--runs", "2", "--transport", "remote",
             "--workers-addr", "nonsense"],
        ],
    )
    def test_parse_time_validation(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(argv)
        capsys.readouterr()

    def test_worker_ping_command(self, worker_addr, capsys):
        from repro.cli import main

        addr = f"{worker_addr[0]}:{worker_addr[1]}"
        assert main(["worker", "ping", addr]) == 0
        assert f"[worker] {addr} pid=" in capsys.readouterr().out

    def test_worker_ping_heartbeat_interval_flag(self, worker_addr, capsys):
        from repro.cli import main

        addr = f"{worker_addr[0]}:{worker_addr[1]}"
        assert main(
            ["worker", "ping", addr, "--heartbeat-interval", "1.5"]
        ) == 0
        assert f"[worker] {addr} pid=" in capsys.readouterr().out

    def test_transport_timing_flags_reach_the_runner(self):
        from repro.cli import _sweep_runner, build_parser

        args = build_parser().parse_args([
            "campaign", "--runs", "2", "--transport", "remote",
            "--workers-addr", "127.0.0.1:7777",
            "--heartbeat-interval", "0.25", "--connect-timeout", "1.5",
        ])
        runner = _sweep_runner(args)
        assert runner.heartbeat == 0.25
        assert runner.connect_timeout == 1.5

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--runs", "2", "--heartbeat-interval", "0"],
            ["campaign", "--runs", "2", "--heartbeat-interval", "nan"],
            ["campaign", "--runs", "2", "--heartbeat-interval", "inf"],
            ["campaign", "--runs", "2", "--connect-timeout", "-1"],
            ["campaign", "--runs", "2", "--connect-timeout", "soon"],
            ["worker", "ping", "127.0.0.1:7777",
             "--heartbeat-interval", "0"],
        ],
    )
    def test_timing_flags_validated_at_parse_time(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(argv)
        err = capsys.readouterr().err
        assert "must be a finite number > 0" in err or "is not a number" in err

    def test_worker_ping_unreachable(self, capsys):
        from repro.cli import main

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            host, port = s.getsockname()
        assert main(["worker", "ping", f"{host}:{port}"]) == 1
        assert "unreachable" in capsys.readouterr().err
