"""Integration: exhaustive failure-window sweeps (paper §III-E answered).

These tests are the repository's strongest claim: for small rings, *every*
reachable single failure window — and every pair of windows — is injected
and checked against the full invariant battery.
"""

from __future__ import annotations

import pytest

from repro.analysis import standard_ring_invariants
from repro.core import RingVariant, Termination
from repro.faults import explore
from tests.conftest import factory_for


class TestExhaustiveSingles:
    @pytest.mark.parametrize("term", [Termination.ROOT_BCAST,
                                      Termination.VALIDATE_ALL])
    def test_marker_ring_survives_every_nonroot_window(self, term):
        rep = explore(
            factory_for(term=term),
            invariants=standard_ring_invariants(3, 4),
            ranks=[1, 2, 3],
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()

    def test_marker_ring_with_detection_latency(self):
        rep = explore(
            factory_for(detection_latency=2e-6),
            invariants=standard_ring_invariants(3, 4),
            ranks=[1, 2, 3],
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()

    def test_tagged_variant_survives_every_window(self):
        rep = explore(
            factory_for(variant=RingVariant.FT_TAGGED, detection_latency=1e-6),
            invariants=standard_ring_invariants(3, 4),
            ranks=[1, 2, 3],
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()

    def test_naive_ring_hangs_in_most_windows(self):
        rep = explore(
            factory_for(variant=RingVariant.NAIVE),
            invariants=standard_ring_invariants(3, 4),
            ranks=[1, 2, 3],
        )
        s = rep.summary()
        # The naive design hangs in the majority of windows — the point
        # of paper Fig. 6.
        assert s["hangs"] > s["runs"] / 2

    def test_rootft_survives_every_window_including_root(self):
        rep = explore(
            factory_for(rootft=True),
            invariants=standard_ring_invariants(3, 4, allow_root_loss=True),
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()


class TestExhaustivePairs:
    def test_marker_ring_survives_every_window_pair(self):
        rep = explore(
            factory_for(),
            invariants=standard_ring_invariants(3, 4),
            ranks=[1, 2, 3],
            pairs=True,
        )
        s = rep.summary()
        assert s["runs"] > s["windows"]  # pairs actually ran
        assert s["ok"] == s["runs"], rep.format()

    def test_rootft_survives_every_window_pair(self):
        rep = explore(
            factory_for(rootft=True, nprocs=4),
            invariants=standard_ring_invariants(3, 4, allow_root_loss=True),
            pairs=True,
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()
