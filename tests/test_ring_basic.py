"""Failure-free ring behaviour: baseline (Fig. 2) and FT (Fig. 3)."""

from __future__ import annotations

import pytest

from repro.core import (
    RingConfig,
    RingVariant,
    Termination,
    get_current_root,
    make_ring_main,
    to_left_of,
    to_right_of,
)
from repro.simmpi import ErrorHandler, Simulation
from tests.conftest import run_sim

ALL_FT_VARIANTS = [
    RingVariant.NAIVE,
    RingVariant.FT_NO_MARKER,
    RingVariant.FT_MARKER,
    RingVariant.FT_TAGGED,
]


class TestNeighborSelection:
    def test_all_alive_arithmetic(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            return (
                to_left_of(comm, comm.rank),
                to_right_of(comm, comm.rank),
                get_current_root(comm),
            )

        r = run_sim(main, 5)
        assert r.value(0) == (4, 1, 0)
        assert r.value(2) == (1, 3, 0)
        assert r.value(4) == (3, 0, 0)

    def test_skips_failed_ranks(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank in (1, 2):
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            return (to_right_of(comm, comm.rank), to_left_of(comm, comm.rank))

        r = run_sim(main, 4, kills=[(1, 0.4), (2, 0.5)])
        assert r.value(0) == (3, 3)
        assert r.value(3) == (0, 0)

    def test_root_election_skips_failed(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            return get_current_root(comm)

        r = run_sim(main, 3, kills=[(0, 0.5)])
        assert r.value(1) == 1 and r.value(2) == 1

    def test_alone_aborts(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            to_right_of(comm, comm.rank)  # only survivor: aborts

        r = run_sim(main, 2, kills=[(1, 0.5)], on_deadlock="return")
        assert r.aborted is not None


class TestBaselineRing:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
    def test_completes_with_full_values(self, n):
        cfg = RingConfig(max_iter=5, variant=RingVariant.BASELINE)
        r = run_sim(make_ring_main(cfg), n)
        comp = r.value(0)["root_completions"]
        assert comp == [(i, n) for i in range(5)]

    def test_any_failure_aborts_job(self):
        cfg = RingConfig(max_iter=50, variant=RingVariant.BASELINE,
                         work_per_iter=1e-6)
        r = run_sim(make_ring_main(cfg), 4, kills=[(2, 1e-5)],
                    on_deadlock="return")
        assert r.aborted is not None


class TestFTRingFailureFree:
    @pytest.mark.parametrize("variant", ALL_FT_VARIANTS)
    @pytest.mark.parametrize("term", [Termination.ROOT_BCAST,
                                      Termination.VALIDATE_ALL,
                                      Termination.NONE])
    def test_completes_like_baseline(self, variant, term):
        cfg = RingConfig(max_iter=4, variant=variant, termination=term)
        r = run_sim(make_ring_main(cfg), 5)
        comp = r.value(0)["root_completions"]
        assert comp == [(i, 5) for i in range(4)]
        for i in range(1, 5):
            rep = r.value(i)
            assert rep["forwards"] == 4
            assert rep["resends"] == 0
            assert rep["duplicates_discarded"] == 0

    @pytest.mark.parametrize("n", [2, 3, 7, 12])
    def test_various_sizes(self, n):
        cfg = RingConfig(max_iter=3, termination=Termination.VALIDATE_ALL)
        r = run_sim(make_ring_main(cfg), n)
        assert r.value(0)["root_completions"] == [(i, n) for i in range(3)]

    def test_report_shape(self):
        cfg = RingConfig(max_iter=2)
        r = run_sim(make_ring_main(cfg), 3)
        rep = r.value(1)
        for key in ("rank", "role", "left", "right", "root", "cur_marker",
                    "iterations_completed", "forwards", "resends",
                    "duplicates_discarded", "right_retargets",
                    "left_retargets", "root_completions"):
            assert key in rep
        assert rep["role"] == "nonroot"
        assert r.value(0)["role"] == "root"

    def test_single_iteration(self):
        cfg = RingConfig(max_iter=1, termination=Termination.VALIDATE_ALL)
        r = run_sim(make_ring_main(cfg), 4)
        assert r.value(0)["root_completions"] == [(0, 4)]

    def test_ft_overhead_is_bounded(self):
        # The FT ring posts one extra watchdog per iteration; its virtual
        # completion time should stay within a small factor of baseline.
        n, iters = 6, 10
        base = run_sim(
            make_ring_main(RingConfig(max_iter=iters,
                                      variant=RingVariant.BASELINE)), n
        ).final_time
        ft = run_sim(
            make_ring_main(RingConfig(max_iter=iters,
                                      variant=RingVariant.FT_MARKER,
                                      termination=Termination.NONE)), n
        ).final_time
        assert ft < 3 * base
