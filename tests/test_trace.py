"""Unit tests for trace recording and querying."""

from __future__ import annotations

from repro.simmpi import Trace, TraceKind


def make_trace() -> Trace:
    t = Trace()
    t.record(0.0, TraceKind.SEND_POST, 0, dst=1, tag=7)
    t.record(1.0, TraceKind.DELIVER, 1, src=0, tag=7)
    t.record(1.5, TraceKind.FAILURE, 2)
    t.record(2.0, TraceKind.DETECT, 0, failed=2)
    t.record(2.0, TraceKind.DETECT, 1, failed=2)
    return t


class TestTrace:
    def test_len_and_iter(self):
        t = make_trace()
        assert len(t) == 5
        assert len(list(t)) == 5

    def test_getitem(self):
        t = make_trace()
        assert t[0].kind is TraceKind.SEND_POST
        assert t[-1].rank == 1

    def test_filter_by_kind(self):
        t = make_trace()
        assert len(t.filter(kind=TraceKind.DETECT)) == 2

    def test_filter_by_rank(self):
        t = make_trace()
        assert len(t.filter(rank=1)) == 2

    def test_filter_by_predicate(self):
        t = make_trace()
        hits = t.filter(predicate=lambda ev: ev.detail.get("tag") == 7)
        assert len(hits) == 2

    def test_filter_combined(self):
        t = make_trace()
        hits = t.filter(kind=TraceKind.DETECT, rank=0)
        assert len(hits) == 1
        assert hits[0].detail["failed"] == 2

    def test_filter_by_kind_tuple(self):
        t = make_trace()
        hits = t.filter(kind=(TraceKind.FAILURE, TraceKind.DETECT))
        assert [ev.kind for ev in hits] == [
            TraceKind.FAILURE, TraceKind.DETECT, TraceKind.DETECT
        ]
        # Singleton tuple behaves like the scalar form.
        assert t.filter(kind=(TraceKind.DETECT,)) == t.filter(
            kind=TraceKind.DETECT
        )

    def test_filter_by_kind_frozenset(self):
        t = make_trace()
        kinds = frozenset({TraceKind.SEND_POST, TraceKind.DELIVER})
        assert len(t.filter(kind=kinds)) == 2

    def test_count_with_detail(self):
        t = make_trace()
        assert t.count(TraceKind.DETECT, failed=2) == 2
        assert t.count(TraceKind.DETECT, failed=3) == 0

    def test_disabled_trace_records_nothing(self):
        t = Trace(enabled=False)
        t.record(0.0, TraceKind.FAILURE, 0)
        assert len(t) == 0

    def test_format_contains_fields(self):
        t = make_trace()
        text = t.format()
        assert "send_post" in text
        assert "r2" in text

    def test_format_limit(self):
        t = make_trace()
        text = t.format(limit=2)
        assert "more" in text

    def test_keys_stable(self):
        assert make_trace().keys() == make_trace().keys()

    def test_keys_differ_on_different_traces(self):
        t1 = make_trace()
        t2 = make_trace()
        t2.record(9.0, TraceKind.ABORT, 0, code=-1)
        assert t1.keys() != t2.keys()

    def test_event_format_line(self):
        t = make_trace()
        line = t[0].format()
        assert "dst=1" in line and "tag=7" in line
