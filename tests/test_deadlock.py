"""Deadlock (hang) detection: the simulator's proof of paper Fig. 6."""

from __future__ import annotations

import pytest

from repro.simmpi import Simulation, SimulationDeadlock
from tests.conftest import run_sim


class TestDeadlockDetection:
    def test_recv_without_send_deadlocks(self):
        def main(mpi):
            mpi.comm_world.recv(source=(mpi.rank + 1) % mpi.size)

        r = run_sim(main, 3, on_deadlock="return")
        assert r.hung
        assert len(r.deadlock.blocked) == 3

    def test_deadlock_raises_by_default(self):
        def main(mpi):
            if mpi.rank == 0:
                mpi.comm_world.recv(source=1)

        with pytest.raises(SimulationDeadlock):
            run_sim(main, 2)

    def test_deadlock_report_names_waits(self):
        def main(mpi):
            if mpi.rank == 0:
                mpi.comm_world.recv(source=1, tag=42)

        r = run_sim(main, 2, on_deadlock="return")
        (rank, desc), = r.deadlock.blocked
        assert rank == 0
        assert "tag=42" in desc

    def test_no_deadlock_when_processes_finish(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)

        assert not run_sim(main, 2).hung

    def test_failed_process_blocked_forever_is_not_deadlock(self):
        # Dead ranks waiting on nothing must not count as a hang.
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 1:
                comm.recv(source=0)  # blocks; killed while blocked
            return "ok"

        r = run_sim(main, 2, kills=[(1, 0.5)], on_deadlock="return")
        assert not r.hung
        assert r.outcomes[1].state == "failed"

    def test_blocked_survivor_after_abort_not_deadlock(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                mpi.abort(3)
            else:
                comm.recv(source=0)

        r = run_sim(main, 2, on_deadlock="return")
        assert r.aborted is not None and r.aborted.code == 3
        assert not r.hung

    def test_cycle_of_blocking_ssends_deadlocks(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.ssend("token", dest=(comm.rank + 1) % comm.size)
            comm.recv(source=(comm.rank - 1) % comm.size)

        r = run_sim(main, 4, on_deadlock="return")
        assert r.hung

    def test_eager_sends_break_the_cycle(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.send("token", dest=(comm.rank + 1) % comm.size)
            data, _ = comm.recv(source=(comm.rank - 1) % comm.size)
            return data

        r = run_sim(main, 4)
        assert all(v == "token" for v in r.values().values())

    def test_partial_deadlock_reports_only_blocked(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 2:
                comm.recv(source=0, tag=9)  # never satisfied
            return "fine"

        r = run_sim(main, 3, on_deadlock="return")
        assert r.hung
        assert [rank for rank, _ in r.deadlock.blocked] == [2]
        assert r.value(0) == "fine"
