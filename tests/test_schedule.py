"""Serializable failure schedules and new-collective coverage."""

from __future__ import annotations

import json

import pytest

from repro.faults import FailureSchedule, KillSpec
from repro.simmpi import Simulation
from tests.conftest import run_sim


def busy_main(mpi):
    for _ in range(10):
        mpi.probe_point("tick")
        mpi.compute(1e-7)
    return "done"


class TestKillSpec:
    def test_time_trigger_requires_time(self):
        with pytest.raises(ValueError):
            KillSpec(trigger="time", rank=0)

    def test_probe_trigger_requires_probe(self):
        with pytest.raises(ValueError):
            KillSpec(trigger="probe", rank=0)

    def test_call_trigger_requires_call_no(self):
        with pytest.raises(ValueError):
            KillSpec(trigger="call", rank=0)

    def test_unknown_trigger(self):
        with pytest.raises(ValueError):
            KillSpec(trigger="voodoo", rank=0)

    def test_roundtrip_each_kind(self):
        specs = [
            KillSpec(trigger="time", rank=2, time=1.5e-6),
            KillSpec(trigger="probe", rank=0, probe="post_recv", hit=2),
            KillSpec(trigger="call", rank=1, call_no=17, op="send"),
        ]
        for spec in specs:
            assert KillSpec.from_dict(spec.to_dict()) == spec

    def test_json_compatible(self):
        spec = KillSpec(trigger="probe", rank=3, probe="tick", hit=4)
        blob = json.dumps(spec.to_dict())
        assert KillSpec.from_dict(json.loads(blob)) == spec


class TestFailureSchedule:
    def test_chainable_builders(self):
        sched = (
            FailureSchedule()
            .at_time(1, 2.0)
            .at_probe(2, "tick", hit=3)
            .at_call(3, 5)
        )
        assert len(sched) == 3
        assert sched.victims() == {1, 2, 3}

    def test_roundtrip(self):
        sched = FailureSchedule().at_time(1, 2.0).at_probe(0, "x")
        again = FailureSchedule.from_dict(sched.to_dict())
        assert again.to_dict() == sched.to_dict()

    def test_schedule_drives_simulation(self):
        sched = FailureSchedule().at_probe(1, "tick", hit=4).at_time(2, 5e-7)
        r = run_sim(busy_main, 4, injectors=[sched.injector()],
                    on_deadlock="return")
        assert r.failed_ranks == {1, 2}
        assert r.value(0) == "done"

    def test_replay_is_identical(self):
        blob = json.dumps(
            FailureSchedule().at_probe(1, "tick", hit=2).to_dict()
        )

        def run_once():
            sched = FailureSchedule.from_dict(json.loads(blob))
            sim = Simulation(nprocs=3)
            sim.add_injector(sched.injector())
            return sim.run(busy_main, on_deadlock="return")

        a, b = run_once(), run_once()
        assert a.trace.keys() == b.trace.keys()

    def test_from_specs(self):
        specs = [KillSpec(trigger="time", rank=0, time=1.0)]
        assert FailureSchedule.from_specs(specs).kills == specs


class TestNewCollectives:
    def test_exscan(self):
        def main(mpi):
            return mpi.comm_world.exscan(mpi.rank + 1, "sum")

        r = run_sim(main, 5)
        assert [r.value(i) for i in range(5)] == [None, 1, 3, 6, 10]

    def test_exscan_custom_op(self):
        def main(mpi):
            return mpi.comm_world.exscan(str(mpi.rank), lambda a, b: a + b)

        r = run_sim(main, 4)
        assert [r.value(i) for i in range(4)] == [None, "0", "01", "012"]

    def test_reduce_scatter(self):
        def main(mpi):
            comm = mpi.comm_world
            values = [mpi.rank * 10 + j for j in range(comm.size)]
            return comm.reduce_scatter(values)

        n = 4
        r = run_sim(main, n)
        for j in range(n):
            assert r.value(j) == sum(i * 10 + j for i in range(n))

    def test_reduce_scatter_wrong_length(self):
        from repro.simmpi import ErrorHandler, InvalidArgumentError

        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            with pytest.raises(InvalidArgumentError):
                comm.reduce_scatter([1])
            return "ok"

        r = run_sim(main, 3, on_deadlock="return")
        assert r.outcomes[0].value == "ok"

    def test_reduce_scatter_over_survivors(self):
        from repro.ft import comm_validate_all
        from repro.simmpi import ErrorHandler

        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_all(comm)
            values = [10 + j for j in range(comm.size)]
            return comm.reduce_scatter(values)

        r = run_sim(main, 4, kills=[(1, 0.5)])
        # Three survivors each contribute 10+j to slot j.
        assert r.value(0) == 3 * 10
        assert r.value(2) == 3 * 12
