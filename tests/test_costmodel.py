"""Unit tests for the LogGP-style cost models."""

from __future__ import annotations

import pytest

from repro.simmpi import DEFAULT_COST, ZERO_COST, CostModel, HierarchicalCostModel


class TestCostModel:
    def test_defaults_positive(self):
        assert DEFAULT_COST.latency > 0
        assert DEFAULT_COST.byte_cost > 0
        assert DEFAULT_COST.overhead > 0

    def test_zero_cost_is_free(self):
        assert ZERO_COST.transit_time(0, 1, 10_000) == 0.0
        assert ZERO_COST.send_overhead(0, 1, 10_000) == 0.0
        assert ZERO_COST.recv_overhead(0, 1, 10_000) == 0.0

    def test_transit_scales_with_bytes(self):
        m = CostModel(latency=1e-6, byte_cost=1e-9)
        small = m.transit_time(0, 1, 8)
        big = m.transit_time(0, 1, 8_000_000)
        assert big > small
        assert big == pytest.approx(1e-6 + 8_000_000 * 1e-9)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(latency=-1.0)
        with pytest.raises(ValueError):
            CostModel(byte_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(overhead=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST.latency = 5.0  # type: ignore[misc]


class TestHierarchicalCostModel:
    def test_intra_node_uses_base_latency(self):
        m = HierarchicalCostModel(
            latency=1e-7, remote_latency=1e-5, ranks_per_node=4
        )
        assert m.transit_time(0, 3, 0) == pytest.approx(1e-7)

    def test_inter_node_uses_remote_latency(self):
        m = HierarchicalCostModel(
            latency=1e-7, remote_latency=1e-5, ranks_per_node=4
        )
        assert m.transit_time(0, 4, 0) == pytest.approx(1e-5)

    def test_node_boundary(self):
        m = HierarchicalCostModel(ranks_per_node=2)
        assert m._same_node(0, 1)
        assert not m._same_node(1, 2)
        assert m._same_node(2, 3)

    def test_invalid_ranks_per_node(self):
        with pytest.raises(ValueError):
            HierarchicalCostModel(ranks_per_node=0)

    def test_negative_remote_params_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalCostModel(remote_latency=-1.0)
