"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestRingCommand:
    def test_clean_run_exit_zero(self, capsys):
        rc = main(["ring", "--nprocs", "4", "--iters", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ran through" in out
        assert "completions" in out

    def test_kill_probe_injection(self, capsys):
        rc = main([
            "ring", "--nprocs", "5", "--iters", "4",
            "--kill-probe", "2:post_recv:2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "failed ranks: [2]" in out
        assert "resends: 1" in out

    def test_naive_hang_exit_code(self, capsys):
        rc = main([
            "ring", "--nprocs", "4", "--variant", "naive",
            "--termination", "root_bcast",
            "--kill-probe", "2:post_recv:2",
        ])
        out = capsys.readouterr().out
        assert rc == 2
        assert "HANG" in out
        assert "blocked processes" in out

    def test_kill_time_injection(self, capsys):
        rc = main([
            "ring", "--nprocs", "4", "--iters", "5", "--work", "1e-6",
            "--kill-time", "3:4.2e-6",
        ])
        assert rc == 0
        assert "failed ranks: [3]" in capsys.readouterr().out

    def test_spacetime_output(self, capsys):
        rc = main(["ring", "--nprocs", "3", "--iters", "2", "--spacetime"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time(us)" in out
        assert "send>1" in out

    def test_rootft_with_root_kill(self, capsys):
        rc = main([
            "ring", "--nprocs", "4", "--iters", "4", "--rootft",
            "--kill-probe", "0:root_post_send:2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "failed ranks: [0]" in out


class TestExploreCommand:
    def test_ft_marker_clean(self, capsys):
        rc = main(["explore", "--nprocs", "4", "--iters", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 hang(s)" in out

    def test_naive_reports_failures(self, capsys):
        rc = main(["explore", "--variant", "naive", "--iters", "2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "HANG" in out


class TestAppCommands:
    def test_heat(self, capsys):
        rc = main(["heat", "--nprocs", "4", "--steps", "6",
                   "--kill-time", "2:2.5e-6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "total heat" in out

    def test_farm(self, capsys):
        rc = main(["farm", "--nprocs", "4", "--tasks", "8",
                   "--kill-probe", "2:task_begin:2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tasks complete & correct: True" in out

    def test_abft(self, capsys):
        rc = main(["abft", "--kill-probe", "2:computed:2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parity recoveries" in out

    def test_abft_degraded_exit_code(self, capsys):
        rc = main([
            "abft",
            "--kill-probe", "1:computed:2",
            "--kill-probe", "2:computed:2",
        ])
        assert rc == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_variant_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ring", "--variant", "bogus"])


class TestTraceCommand:
    def test_perfetto_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "fig6.json"
        rc = main(["trace", "fig6", "--format", "perfetto",
                   "-o", str(out_file), "--validate"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "export valid" in err
        import json

        doc = json.loads(out_file.read_text())
        assert doc["otherData"]["producer"] == "repro.obs"
        assert doc["traceEvents"]

    def test_perfetto_stdout(self, capsys):
        rc = main(["trace", "fig2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert '"traceEvents"' in out

    def test_jsonl_round_trips(self, capsys, tmp_path):
        out_file = tmp_path / "fig2.jsonl"
        rc = main(["trace", "fig2", "--format", "jsonl",
                   "-o", str(out_file), "--validate"])
        assert rc == 0
        from repro.obs import load_trace_jsonl

        trace, header = load_trace_jsonl(out_file)
        assert header["nprocs"] == 4
        assert len(trace) == header["events"]

    def test_spacetime_format(self, capsys):
        rc = main(["trace", "fig6", "--format", "spacetime"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time(us)" in out
        assert "FAILED" in out

    def test_summary_on_stderr(self, capsys):
        rc = main(["trace", "fig6", "--format", "spacetime", "--summary"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "run report: 4 rank(s)" in err

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "bogus"])


class TestReportCommand:
    def _telemetry(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        main(["campaign", "--nprocs", "4", "--iters", "3", "--runs", "6",
              "--telemetry", str(path)])
        return path

    def test_summary(self, capsys, tmp_path):
        path = self._telemetry(tmp_path)
        capsys.readouterr()
        rc = main(["report", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign sweep, 6 job(s)" in out
        assert "job wall time" in out

    def test_canonical_lines_are_sorted_json(self, capsys, tmp_path):
        path = self._telemetry(tmp_path)
        capsys.readouterr()
        rc = main(["report", "--canon", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.splitlines()
        assert lines == sorted(lines)
        assert all("wall_s" not in ln for ln in lines)

    def test_invalid_file_flagged(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format":"nope"}\n')
        rc = main(["report", str(bad)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "INVALID" in err

    def test_json_format_matches_text_aggregates(self, capsys, tmp_path):
        import json

        path = self._telemetry(tmp_path)
        capsys.readouterr()
        rc = main(["report", "--format", "json", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        (line,) = out.splitlines()
        doc = json.loads(line)
        assert doc["format"] == "repro.report/1"
        assert doc["kind"] == "campaign"
        assert doc["runs"] == 6
        assert sum(doc["outcomes"].values()) == 6
        assert set(doc["wall_percentiles"]) == {"p50", "p90", "p99", "max"}
        assert len(doc["slowest"]) == 5
        assert {"index", "wall_s", "outcome"} <= doc["slowest"][0].keys()
        assert doc["cache"]["uncached"] == 6
        # Same aggregates the text mode prints, machine-readable.
        from repro.obs import read_telemetry, summarize, summary_dict

        assert doc == json.loads(json.dumps(
            summary_dict(summarize(read_telemetry(path), top=5))
        ))


class TestTraceViewFlags:
    def test_ring_failure_story(self, capsys):
        rc = main(["ring", "--nprocs", "4", "--iters", "3",
                   "--kill-probe", "2:post_recv:2", "--failure-story"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FAILED" in out
        assert "send>1" not in out  # story view hides normal traffic

    def test_heat_spacetime(self, capsys):
        rc = main(["heat", "--nprocs", "3", "--steps", "3", "--spacetime"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time(us)" in out

    def test_abft_failure_story(self, capsys):
        rc = main(["abft", "--kill-probe", "2:computed:2",
                   "--failure-story"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FAILED" in out

    def test_farm_trace_cap(self, capsys):
        rc = main(["farm", "--nprocs", "4", "--tasks", "6",
                   "--trace-cap", "32", "--spacetime"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time(us)" in out
