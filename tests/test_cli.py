"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestRingCommand:
    def test_clean_run_exit_zero(self, capsys):
        rc = main(["ring", "--nprocs", "4", "--iters", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ran through" in out
        assert "completions" in out

    def test_kill_probe_injection(self, capsys):
        rc = main([
            "ring", "--nprocs", "5", "--iters", "4",
            "--kill-probe", "2:post_recv:2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "failed ranks: [2]" in out
        assert "resends: 1" in out

    def test_naive_hang_exit_code(self, capsys):
        rc = main([
            "ring", "--nprocs", "4", "--variant", "naive",
            "--termination", "root_bcast",
            "--kill-probe", "2:post_recv:2",
        ])
        out = capsys.readouterr().out
        assert rc == 2
        assert "HANG" in out
        assert "blocked processes" in out

    def test_kill_time_injection(self, capsys):
        rc = main([
            "ring", "--nprocs", "4", "--iters", "5", "--work", "1e-6",
            "--kill-time", "3:4.2e-6",
        ])
        assert rc == 0
        assert "failed ranks: [3]" in capsys.readouterr().out

    def test_spacetime_output(self, capsys):
        rc = main(["ring", "--nprocs", "3", "--iters", "2", "--spacetime"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time(us)" in out
        assert "send>1" in out

    def test_rootft_with_root_kill(self, capsys):
        rc = main([
            "ring", "--nprocs", "4", "--iters", "4", "--rootft",
            "--kill-probe", "0:root_post_send:2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "failed ranks: [0]" in out


class TestExploreCommand:
    def test_ft_marker_clean(self, capsys):
        rc = main(["explore", "--nprocs", "4", "--iters", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 hang(s)" in out

    def test_naive_reports_failures(self, capsys):
        rc = main(["explore", "--variant", "naive", "--iters", "2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "HANG" in out


class TestAppCommands:
    def test_heat(self, capsys):
        rc = main(["heat", "--nprocs", "4", "--steps", "6",
                   "--kill-time", "2:2.5e-6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "total heat" in out

    def test_farm(self, capsys):
        rc = main(["farm", "--nprocs", "4", "--tasks", "8",
                   "--kill-probe", "2:task_begin:2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tasks complete & correct: True" in out

    def test_abft(self, capsys):
        rc = main(["abft", "--kill-probe", "2:computed:2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "parity recoveries" in out

    def test_abft_degraded_exit_code(self, capsys):
        rc = main([
            "abft",
            "--kill-probe", "1:computed:2",
            "--kill-probe", "2:computed:2",
        ])
        assert rc == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_variant_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ring", "--variant", "bogus"])
