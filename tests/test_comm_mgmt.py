"""Communicator management: dup, split, translation, error handlers."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    ErrorHandler,
    InvalidArgumentError,
    Simulation,
    UNDEFINED,
)
from repro.ft import comm_validate_clear
from tests.conftest import run_sim


class TestIntrospection:
    def test_world_shape(self):
        def main(mpi):
            comm = mpi.comm_world
            return (comm.rank, comm.size, comm.cid, comm.group)

        r = run_sim(main, 3)
        for i in range(3):
            rank, size, cid, group = r.value(i)
            assert rank == i and size == 3 and cid == 0
            assert group == (0, 1, 2)

    def test_rank_translation(self):
        def main(mpi):
            comm = mpi.comm_world
            assert comm.world_rank(2) == 2
            assert comm.comm_rank_of_world(2) == 2
            assert comm.comm_rank_of_world(99) is None
            with pytest.raises(InvalidArgumentError):
                comm.world_rank(5)
            return "ok"

        assert run_sim(main, 3).value(0) == "ok"

    def test_contexts_are_distinct_per_comm(self):
        def main(mpi):
            comm = mpi.comm_world
            d = comm.dup()
            return (comm.context(), d.context())

        r = run_sim(main, 2)
        a, b = r.value(0)
        assert a != b


class TestDup:
    def test_dup_same_group_new_cid(self):
        def main(mpi):
            comm = mpi.comm_world
            d = comm.dup()
            return (d.cid, d.group, d.rank)

        r = run_sim(main, 4)
        cids = {r.value(i)[0] for i in range(4)}
        assert len(cids) == 1 and 0 not in cids
        assert all(r.value(i)[1] == (0, 1, 2, 3) for i in range(4))

    def test_dup_traffic_isolated(self):
        def main(mpi):
            comm = mpi.comm_world
            d = comm.dup()
            if comm.rank == 0:
                comm.send("world", dest=1, tag=3)
                d.send("dup", dest=1, tag=3)
            else:
                on_dup, _ = d.recv(source=0, tag=3)
                on_world, _ = comm.recv(source=0, tag=3)
                return (on_world, on_dup)

        assert run_sim(main, 2).value(1) == ("world", "dup")

    def test_successive_dups_get_distinct_cids(self):
        def main(mpi):
            comm = mpi.comm_world
            return (comm.dup().cid, comm.dup().cid)

        r = run_sim(main, 2)
        a, b = r.value(0)
        assert a != b
        assert r.value(1) == (a, b)  # agreed across ranks

    def test_dup_does_not_inherit_recognition(self):
        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_clear(comm, [2])
            d = comm.dup()
            return (sorted(comm.recognized), sorted(d.recognized))

        # dup() is a collective: run it before the failure instead.
        def main2(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            d = comm.dup()
            d.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_clear(comm, [2])
            return (sorted(comm.recognized), sorted(d.recognized))

        r = run_sim(main2, 3, kills=[(2, 0.5)])
        assert r.value(0) == ([2], [])
        assert r.value(1) == ([2], [])


class TestSplit:
    def test_split_by_parity(self):
        def main(mpi):
            comm = mpi.comm_world
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.rank, sub.size, sub.group)

        r = run_sim(main, 6)
        assert r.value(0) == (0, 3, (0, 2, 4))
        assert r.value(1) == (0, 3, (1, 3, 5))
        assert r.value(4) == (2, 3, (0, 2, 4))

    def test_split_key_reorders(self):
        def main(mpi):
            comm = mpi.comm_world
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        r = run_sim(main, 4)
        # key = -rank reverses the ordering.
        assert [r.value(i) for i in range(4)] == [3, 2, 1, 0]

    def test_split_undefined_returns_none(self):
        def main(mpi):
            comm = mpi.comm_world
            color = UNDEFINED if comm.rank == 0 else 1
            sub = comm.split(color=color, key=comm.rank)
            return None if sub is None else sub.group

        r = run_sim(main, 3)
        assert r.value(0) is None
        assert r.value(1) == (1, 2)

    def test_split_comm_collectives_work(self):
        def main(mpi):
            comm = mpi.comm_world
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.allreduce(comm.rank, "sum")

        r = run_sim(main, 6)
        assert r.value(0) == 0 + 2 + 4
        assert r.value(1) == 1 + 3 + 5

    def test_split_p2p_uses_comm_ranks(self):
        def main(mpi):
            comm = mpi.comm_world
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            if sub.rank == 0:
                sub.send(f"from-{comm.rank}", dest=1)
            elif sub.rank == 1:
                data, status = sub.recv(source=0)
                return (data, status.source)

        r = run_sim(main, 4)
        assert r.value(2) == ("from-0", 0)
        assert r.value(3) == ("from-1", 0)


class TestErrorHandlers:
    def test_default_is_fatal(self):
        def main(mpi):
            comm = mpi.comm_world
            assert comm.errhandler is ErrorHandler.ERRORS_ARE_FATAL
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"

    def test_fatal_error_aborts_job(self):
        def main(mpi):
            comm = mpi.comm_world  # ERRORS_ARE_FATAL
            if comm.rank == 0:
                mpi.compute(2.0)
                comm.send("x", dest=1)  # rank 1 dead & known -> abort
                return "unreachable"
            mpi.compute(1.0)

        r = run_sim(main, 2, kills=[(1, 0.5)], on_deadlock="return")
        assert r.aborted is not None
        assert r.aborted.origin_rank == 0

    def test_errors_return_raises_catchable(self):
        from repro.simmpi import RankFailStopError

        def main(mpi):
            comm = mpi.comm_world
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 0:
                mpi.compute(2.0)
                try:
                    comm.send("x", dest=1)
                except RankFailStopError as e:
                    return ("caught", e.peer)
            mpi.compute(1.0)

        r = run_sim(main, 2, kills=[(1, 0.5)])
        assert r.value(0) == ("caught", 1)
