"""Local validate operations and rank states (paper Fig. 1)."""

from __future__ import annotations

import pytest

from repro.ft import (
    RankInfo,
    RankState,
    comm_validate,
    comm_validate_clear,
    comm_validate_rank,
    rank_state,
)
from repro.simmpi import ErrorHandler, InvalidArgumentError
from tests.conftest import run_sim


def returning(mpi):
    mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
    return mpi.comm_world


class TestRankInfo:
    def test_ok_helper(self):
        assert RankInfo(0, 0, RankState.OK).ok()
        assert not RankInfo(0, 0, RankState.FAILED).ok()
        assert not RankInfo(0, 0, RankState.NULL).ok()

    def test_frozen(self):
        info = RankInfo(1, 0, RankState.OK)
        with pytest.raises(AttributeError):
            info.rank = 2  # type: ignore[misc]


class TestValidateRank:
    def test_alive_rank_is_ok(self):
        def main(mpi):
            comm = returning(mpi)
            info = comm_validate_rank(comm, 1)
            return (info.rank, info.generation, info.state)

        assert run_sim(main, 2).value(0) == (1, 0, RankState.OK)

    def test_failed_unrecognized_is_failed(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            return comm_validate_rank(comm, 1).state

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) is RankState.FAILED

    def test_recognized_is_null(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_clear(comm, [1])
            return comm_validate_rank(comm, 1).state

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) is RankState.NULL

    def test_out_of_range_rejected(self):
        def main(mpi):
            comm = returning(mpi)
            with pytest.raises(InvalidArgumentError):
                comm_validate_rank(comm, 17)
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_unknown_failure_still_ok(self):
        # Before detection the observer sees the rank as OK (the detector
        # is accurate and complete, not instantaneous).
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            return comm_validate_rank(comm, 1).state

        r = run_sim(main, 2, kills=[(1, 0.5)], detection_latency=100.0)
        assert r.value(0) is RankState.OK


class TestValidateList:
    def test_empty_when_no_failures(self):
        def main(mpi):
            return comm_validate(returning(mpi))

        assert run_sim(main, 3).value(0) == []

    def test_lists_failed_and_recognized(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank in (1, 2):
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_clear(comm, [1])
            infos = comm_validate(comm)
            return [(i.rank, i.state) for i in infos]

        r = run_sim(main, 4, kills=[(1, 0.4), (2, 0.5)])
        assert r.value(0) == [(1, RankState.NULL), (2, RankState.FAILED)]


class TestValidateClear:
    def test_returns_newly_recognized_count(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank in (1, 2):
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            first = comm_validate_clear(comm, [1, 2])
            again = comm_validate_clear(comm, [1, 2])
            return (first, again)

        assert run_sim(main, 3, kills=[(1, 0.4), (2, 0.5)]).value(0) == (2, 0)

    def test_accepts_rank_infos(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            infos = comm_validate(comm)
            n = comm_validate_clear(comm, infos)
            return (n, rank_state(comm, 1))

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == (1, RankState.NULL)

    def test_alive_ranks_ignored(self):
        def main(mpi):
            comm = returning(mpi)
            n = comm_validate_clear(comm, [1])
            return (n, rank_state(comm, 1))

        assert run_sim(main, 2).value(0) == (0, RankState.OK)

    def test_out_of_range_rejected(self):
        def main(mpi):
            comm = returning(mpi)
            with pytest.raises(InvalidArgumentError):
                comm_validate_clear(comm, [55])
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"

    def test_recognition_is_per_communicator(self):
        def main(mpi):
            comm = returning(mpi)
            dup = comm.dup()
            dup.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_clear(comm, [1])
            return (rank_state(comm, 1), rank_state(dup, 1))

        r = run_sim(main, 2, kills=[(1, 0.5)])
        assert r.value(0) == (RankState.NULL, RankState.FAILED)
