"""Fault-injection framework mechanics (paper §III-E)."""

from __future__ import annotations

import pytest

from repro.core import RingConfig, Termination, make_ring_main
from repro.faults import (
    CompositeInjector,
    KillAtCall,
    KillAtProbe,
    KillAtTime,
    KillRandomly,
    Window,
    enumerate_windows,
    explore,
    run_campaign,
    run_window,
)
from repro.simmpi import Simulation
from repro.analysis import no_hang, standard_ring_invariants
from tests.conftest import run_sim


def counting_main(mpi):
    for i in range(10):
        mpi.probe_point("tick")
        mpi.compute(1e-7)
    return mpi.probe_counts.get("tick")


class TestInjectors:
    def test_kill_at_time(self):
        r = run_sim(counting_main, 2, injectors=[KillAtTime(rank=1, time=3.5e-7)],
                    on_deadlock="return")
        assert r.failed_ranks == {1}
        assert r.value(0) == 10

    def test_kill_at_probe_hit(self):
        r = run_sim(counting_main, 2,
                    injectors=[KillAtProbe(rank=1, probe="tick", hit=4)],
                    on_deadlock="return")
        assert r.failed_ranks == {1}
        # The victim died exactly at its 4th tick.
        failures = r.trace.filter(rank=1)
        assert r.outcomes[1].state == "failed"

    def test_kill_at_probe_wrong_name_never_fires(self):
        r = run_sim(counting_main, 2,
                    injectors=[KillAtProbe(rank=1, probe="nope", hit=1)])
        assert r.failed_ranks == set()

    def test_kill_at_call(self):
        r = run_sim(counting_main, 2,
                    injectors=[KillAtCall(rank=1, call_no=5)],
                    on_deadlock="return")
        assert r.failed_ranks == {1}

    def test_kill_at_call_filters_op(self):
        def main(mpi):
            comm = mpi.comm_world
            if comm.rank == 0:
                comm.send(1, dest=1)
                comm.send(2, dest=1)
                return "alive"
            comm.recv(source=0)
            comm.recv(source=0)

        r = run_sim(main, 2,
                    injectors=[KillAtCall(rank=1, call_no=2, op="recv")],
                    on_deadlock="return")
        assert r.failed_ranks == {1}
        assert r.value(0) == "alive"

    def test_kill_randomly_respects_protect_and_cap(self):
        inj = KillRandomly(rate=1.0, seed=1, max_failures=2, protect=(0,))
        r = run_sim(counting_main, 5, injectors=[inj], on_deadlock="return")
        assert len(r.failed_ranks) == 2
        assert 0 not in r.failed_ranks

    def test_kill_randomly_rate_zero(self):
        inj = KillRandomly(rate=0.0, seed=1)
        r = run_sim(counting_main, 3, injectors=[inj])
        assert r.failed_ranks == set()

    def test_kill_randomly_invalid_rate(self):
        with pytest.raises(ValueError):
            KillRandomly(rate=1.5)

    def test_composite(self):
        inj = CompositeInjector([
            KillAtProbe(rank=1, probe="tick", hit=2),
            KillAtProbe(rank=2, probe="tick", hit=5),
        ])
        r = run_sim(counting_main, 3, injectors=[inj], on_deadlock="return")
        assert r.failed_ranks == {1, 2}


def ring_factory():
    cfg = RingConfig(max_iter=3, termination=Termination.VALIDATE_ALL)
    return Simulation(nprocs=4), make_ring_main(cfg)


class TestExplorer:
    def test_enumerate_windows_matches_reference(self):
        windows = enumerate_windows(ring_factory)
        # root: post_send/post_recv/pre_termination; non-roots: recv/send
        # per iteration + pre_termination.
        per_nonroot = [w for w in windows if w.rank == 1]
        assert len(per_nonroot) == 3 * 2 + 1
        assert {w.probe for w in windows if w.rank == 0} == {
            "root_post_send", "root_post_recv", "pre_termination"
        }

    def test_filtering(self):
        wins = enumerate_windows(ring_factory, probes=["post_recv"], ranks=[2])
        assert all(w.rank == 2 and w.probe == "post_recv" for w in wins)
        assert len(wins) == 3

    def test_run_window_outcome(self):
        out = run_window(
            ring_factory,
            Window(rank=2, probe="post_recv", hit=2),
            invariants=[no_hang],
        )
        assert out.ok
        assert not out.hung

    def test_explore_summary_counts(self):
        rep = explore(
            ring_factory,
            invariants=standard_ring_invariants(3, 4),
            ranks=[1, 2, 3],
        )
        s = rep.summary()
        assert s["runs"] == s["windows"] == len(rep.reference_windows)
        assert s["ok"] == s["runs"]
        assert rep.failures == []
        assert "ok" in rep.format()

    def test_explore_max_windows_cap(self):
        rep = explore(ring_factory, ranks=[1], max_windows=2)
        assert len(rep.reference_windows) == 2

    def test_explore_keep_results(self):
        rep = explore(ring_factory, ranks=[1], max_windows=1,
                      keep_results=True)
        assert rep.outcomes[0].result is not None

    def test_window_str(self):
        assert str(Window(2, "post_recv", 3)) == "r2@post_recv#3"


class TestCampaign:
    def test_campaign_runs_and_reports(self):
        def factory():
            cfg = RingConfig(max_iter=4, termination=Termination.VALIDATE_ALL,
                             work_per_iter=1e-6)
            return Simulation(nprocs=4), make_ring_main(cfg)

        rep = run_campaign(
            factory,
            seeds=range(8),
            horizon=8e-6,
            invariants=standard_ring_invariants(4, 4),
        )
        s = rep.summary()
        assert s["runs"] == 8
        assert s["ok"] == 8
        assert "campaign" in rep.format()
        # Kills were actually placed (deterministically per seed).
        assert all(len(r.kills) == 1 for r in rep.runs)
        assert all(1 <= r.kills[0][0] <= 3 for r in rep.runs)

    def test_campaign_rejects_too_many_kills(self):
        def factory():
            return Simulation(nprocs=2), lambda mpi: None

        with pytest.raises(ValueError):
            run_campaign(factory, seeds=[1], horizon=1.0, kills_per_run=5)

    def test_campaign_deterministic_per_seed(self):
        def factory():
            cfg = RingConfig(max_iter=3, termination=Termination.VALIDATE_ALL,
                             work_per_iter=1e-6)
            return Simulation(nprocs=4), make_ring_main(cfg)

        r1 = run_campaign(factory, seeds=[42], horizon=5e-6)
        r2 = run_campaign(factory, seeds=[42], horizon=5e-6)
        assert r1.runs[0].kills == r2.runs[0].kills
