"""Trace export: Perfetto/JSONL golden pins, schema validity, round-trip.

The golden files pin the exporters byte-for-byte for two paper presets —
``fig2`` (clean baseline ring) and ``fig6`` (naive ring, one fail-stop).
Regenerate deliberately after an intended format change::

    PYTHONPATH=src python - <<'EOF'
    from pathlib import Path
    from repro.obs import (dumps_perfetto, make_scenario, trace_to_jsonl,
                           trace_to_perfetto)
    for name in ('fig2', 'fig6'):
        sim, main, nprocs = make_scenario(name, metrics=True)
        r = sim.run(main, on_deadlock='return', raise_app_errors=False)
        doc = trace_to_perfetto(r.trace, nprocs, metrics=r.metrics)
        Path(f'tests/golden/{name}_perfetto.json').write_text(
            dumps_perfetto(doc))
        Path(f'tests/golden/{name}_trace.jsonl').write_text(
            trace_to_jsonl(r.trace, nprocs))
    EOF
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import (
    dumps_perfetto,
    jsonl_errors,
    load_trace_jsonl,
    make_scenario,
    perfetto_errors,
    trace_to_jsonl,
    trace_to_perfetto,
)
from repro.simmpi.trace import TraceKind

GOLDEN = Path(__file__).parent / "golden"


def run_preset(name: str, **kwargs):
    sim, main, nprocs = make_scenario(name, **kwargs)
    result = sim.run(main, on_deadlock="return", raise_app_errors=False)
    return result, nprocs


@pytest.fixture(scope="module")
def fig2():
    return run_preset("fig2", metrics=True)


@pytest.fixture(scope="module")
def fig6():
    return run_preset("fig6", metrics=True)


# ---------------------------------------------------------------------------
# Golden pins
# ---------------------------------------------------------------------------


def test_fig2_perfetto_golden(fig2):
    result, nprocs = fig2
    doc = trace_to_perfetto(result.trace, nprocs, metrics=result.metrics)
    assert dumps_perfetto(doc) == (GOLDEN / "fig2_perfetto.json").read_text()


def test_fig6_perfetto_golden(fig6):
    result, nprocs = fig6
    doc = trace_to_perfetto(result.trace, nprocs, metrics=result.metrics)
    assert dumps_perfetto(doc) == (GOLDEN / "fig6_perfetto.json").read_text()


def test_fig2_jsonl_golden(fig2):
    result, nprocs = fig2
    assert trace_to_jsonl(result.trace, nprocs) == (
        GOLDEN / "fig2_trace.jsonl"
    ).read_text()


def test_fig6_jsonl_golden(fig6):
    result, nprocs = fig6
    assert trace_to_jsonl(result.trace, nprocs) == (
        GOLDEN / "fig6_trace.jsonl"
    ).read_text()


# ---------------------------------------------------------------------------
# Schema validity: every exported event, every preset
# ---------------------------------------------------------------------------


# ``farm`` is the regression preset for slice durations: its manager
# matches already-arrived results instantly, and the two virtual clocks
# involved (fiber-local vs. arrival) can disagree by one float ULP,
# which used to produce a negative ``dur``.
@pytest.mark.parametrize(
    "preset", ["fig2", "fig6", "fig7", "fig8", "ring", "farm"]
)
def test_perfetto_schema_valid(preset):
    result, nprocs = run_preset(preset, metrics=True)
    doc = trace_to_perfetto(result.trace, nprocs, metrics=result.metrics)
    assert perfetto_errors(doc) == []


@pytest.mark.parametrize("preset", ["fig2", "fig6", "fig7", "fig8", "ring"])
def test_jsonl_schema_valid(preset):
    result, nprocs = run_preset(preset)
    assert jsonl_errors(trace_to_jsonl(result.trace, nprocs)) == []


# ---------------------------------------------------------------------------
# Perfetto semantics: flows and instants
# ---------------------------------------------------------------------------


def _events(doc, ph):
    return [e for e in doc["traceEvents"] if e["ph"] == ph]


def test_every_matched_pair_has_flow(fig6):
    """Every send whose message was delivered and received carries a
    complete flow (start + finish with the same id)."""
    result, nprocs = fig6
    doc = trace_to_perfetto(result.trace, nprocs)
    sent = {ev.detail["msg"]
            for ev in result.trace.filter(kind=TraceKind.SEND_POST)}
    delivered = {ev.detail["msg"]
                 for ev in result.trace.filter(kind=TraceKind.DELIVER)
                 if not ev.detail.get("am")}
    completed = {ev.detail.get("msg")
                 for ev in result.trace.filter(kind=TraceKind.RECV_COMPLETE)}
    matched = sent & delivered & completed
    assert matched, "fig6 must exchange at least one matched message"
    starts = {e["id"] for e in _events(doc, "s")}
    finishes = {e["id"] for e in _events(doc, "f")}
    assert starts == matched
    assert finishes == matched


def test_flow_ids_balanced(fig2):
    """Chrome Trace requires each flow id to open and close exactly once."""
    result, nprocs = fig2
    doc = trace_to_perfetto(result.trace, nprocs)
    starts = sorted(e["id"] for e in _events(doc, "s"))
    finishes = sorted(e["id"] for e in _events(doc, "f"))
    assert starts == finishes
    assert len(starts) == len(set(starts))


def test_every_injected_failure_is_instant(fig6):
    result, nprocs = fig6
    doc = trace_to_perfetto(result.trace, nprocs)
    failures = result.trace.filter(kind=TraceKind.FAILURE)
    assert failures, "fig6 injects a failure"
    instants = [e for e in _events(doc, "i") if e["name"] == "failure"]
    assert {(e["tid"], e["ts"]) for e in instants} == {
        (ev.rank, ev.time * 1e6) for ev in failures
    }
    detect = [e for e in _events(doc, "i") if e["name"] == "detect"]
    assert len(detect) == len(result.trace.filter(kind=TraceKind.DETECT))


def test_one_track_per_rank(fig2):
    result, nprocs = fig2
    doc = trace_to_perfetto(result.trace, nprocs)
    names = {e["args"]["name"]: e["tid"]
             for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert names == {f"rank {r}": r for r in range(nprocs)}


def test_counters_only_with_metrics(fig2):
    result, nprocs = fig2
    with_counters = trace_to_perfetto(result.trace, nprocs,
                                      metrics=result.metrics)
    without = trace_to_perfetto(result.trace, nprocs)
    assert _events(with_counters, "C")
    assert not _events(without, "C")


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("preset", ["fig2", "fig6", "fig8"])
def test_jsonl_round_trip(preset):
    result, nprocs = run_preset(preset)
    text = trace_to_jsonl(result.trace, nprocs)
    loaded, header = load_trace_jsonl(text)
    assert header["nprocs"] == nprocs
    assert header["events"] == len(result.trace)
    assert loaded.keys() == result.trace.keys()


def test_jsonl_round_trip_survives_file(tmp_path):
    from repro.obs import write_trace_jsonl

    result, nprocs = run_preset("fig6")
    path = tmp_path / "fig6.jsonl"
    write_trace_jsonl(result.trace, path, nprocs=nprocs)
    loaded, _header = load_trace_jsonl(path)
    assert loaded.keys() == result.trace.keys()


def test_jsonl_errors_flag_corruption(fig2):
    result, nprocs = fig2
    lines = trace_to_jsonl(result.trace, nprocs).splitlines()
    # Drop one event: the declared count no longer matches.
    assert jsonl_errors("\n".join(lines[:-1]) + "\n")
    # Break the header format tag.
    bad = "\n".join(['{"format":"bogus/9"}'] + lines[1:]) + "\n"
    assert jsonl_errors(bad)
