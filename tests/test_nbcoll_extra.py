"""Further non-blocking barrier coverage: subcomms, concurrency, stress."""

from __future__ import annotations

import pytest

from repro.ft import comm_validate_all
from repro.simmpi import ErrorHandler, Simulation, wait, waitall
from repro.simmpi.nbcoll import ibarrier
from tests.conftest import run_sim


def returning(mpi):
    mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
    return mpi.comm_world


class TestIbarrierSubcomms:
    def test_ibarrier_on_split_comm(self):
        def main(mpi):
            comm = returning(mpi)
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            sub.set_errhandler(ErrorHandler.ERRORS_RETURN)
            mpi.compute(comm.rank * 1e-6)
            wait(ibarrier(sub))
            return mpi.now

        r = run_sim(main, 6)
        # Even subcomm {0,2,4}: nobody leaves before rank 4 arrives.
        assert r.value(0) >= 4e-6
        # Odd subcomm {1,3,5}: nobody leaves before rank 5 arrives.
        assert r.value(1) >= 5e-6

    def test_world_and_sub_barriers_interleave(self):
        def main(mpi):
            comm = returning(mpi)
            sub = comm.split(color=0 if comm.rank < 2 else 1, key=comm.rank)
            sub.set_errhandler(ErrorHandler.ERRORS_RETURN)
            r1 = ibarrier(sub)
            r2 = ibarrier(comm)
            waitall([r1, r2])
            return "ok"

        r = run_sim(main, 4)
        assert all(v == "ok" for v in r.values().values())


class TestIbarrierConcurrency:
    def test_two_outstanding_barriers_same_comm(self):
        def main(mpi):
            comm = returning(mpi)
            a = ibarrier(comm)
            b = ibarrier(comm)
            waitall([a, b])
            return "ok"

        r = run_sim(main, 5)
        assert all(v == "ok" for v in r.values().values())

    def test_many_sequential_barriers(self):
        def main(mpi):
            comm = returning(mpi)
            for _ in range(10):
                wait(ibarrier(comm))
            return "ok"

        r = run_sim(main, 8)
        assert all(v == "ok" for v in r.values().values())

    def test_barrier_over_survivors_after_validate(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank in (1, 4):
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_all(comm)
            mpi.compute(comm.rank * 1e-6)
            wait(ibarrier(comm))
            return mpi.now

        r = run_sim(main, 6, kills=[(1, 0.4), (4, 0.5)])
        times = [r.value(i) for i in (0, 2, 3, 5)]
        # All survivors leave after the last survivor's arrival.
        assert min(times) >= 2.0 + 5 * 1e-6 - 1e-9


class TestRingTaggedProperty:
    def test_tagged_variant_random_campaign(self):
        import random

        from repro.analysis import standard_ring_invariants
        from repro.core import (
            RingConfig,
            RingVariant,
            Termination,
            make_ring_main,
        )

        rng = random.Random(42)
        for _ in range(25):
            n = rng.choice([4, 5, 6])
            cfg = RingConfig(max_iter=4, variant=RingVariant.FT_TAGGED,
                             termination=Termination.VALIDATE_ALL,
                             work_per_iter=1e-6)
            sim = Simulation(nprocs=n, seed=rng.randrange(5),
                             policy="random",
                             detection_latency=rng.choice([0.0, 1e-6, 2e-6]))
            for v in rng.sample(range(1, n), rng.randint(1, 2)):
                sim.kill(v, at_time=rng.uniform(1e-7, 8e-6))
            r = sim.run(make_ring_main(cfg), on_deadlock="return")
            for inv in standard_ring_invariants(4, n):
                assert inv(r) is None, (n, inv)
