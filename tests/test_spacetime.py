"""Space-time diagram rendering from traces."""

from __future__ import annotations

from repro.analysis import SpacetimeOptions, failure_story, render_spacetime
from repro.core import RingConfig, Termination, make_ring_main
from repro.faults import KillAtProbe
from repro.simmpi import Trace, TraceKind
from tests.conftest import run_sim


def ring_result():
    cfg = RingConfig(max_iter=2, termination=Termination.VALIDATE_ALL)
    return run_sim(
        make_ring_main(cfg), 4,
        injectors=[KillAtProbe(rank=2, probe="post_recv", hit=1)],
        on_deadlock="return",
    )


class TestRenderSpacetime:
    def test_header_has_all_rank_columns(self):
        r = ring_result()
        out = render_spacetime(r.trace, 4)
        header = out.splitlines()[0]
        for col in ("time(us)", "r0", "r1", "r2", "r3"):
            assert col in header

    def test_failure_and_detection_rendered(self):
        r = ring_result()
        out = render_spacetime(r.trace, 4)
        assert "FAILED" in out
        assert "detect(2)" in out
        assert "err<2" in out

    def test_sends_and_recvs_rendered_with_peers(self):
        r = ring_result()
        out = render_spacetime(r.trace, 4)
        assert "send>1" in out
        assert "recv<0" in out

    def test_validate_decisions_rendered(self):
        r = ring_result()
        out = render_spacetime(r.trace, 4)
        assert "decide[2]" in out

    def test_rank_filter(self):
        r = ring_result()
        out = render_spacetime(r.trace, 4, ranks=[0, 1])
        assert "r3" not in out.splitlines()[0]
        # Events of excluded ranks disappear.
        assert "FAILED" not in out

    def test_am_traffic_hidden_by_default(self):
        r = ring_result()
        default = render_spacetime(r.trace, 4)
        opt = SpacetimeOptions(include_am=True)
        with_am = render_spacetime(r.trace, 4, options=opt)
        assert len(with_am.splitlines()) > len(default.splitlines())

    def test_max_lines_truncation(self):
        r = ring_result()
        opt = SpacetimeOptions(max_lines=3)
        out = render_spacetime(r.trace, 4, options=opt)
        assert "more events" in out

    def test_truncation_counts_only_renderable_events(self):
        """The '(N more events)' tail must count events that *would have
        rendered* — not raw trace events that the kind/rank/AM filters
        drop anyway."""
        r = ring_result()
        full = render_spacetime(r.trace, 4)
        # Rendered body lines = total lines minus header + rule.
        rendered = len(full.splitlines()) - 2
        opt = SpacetimeOptions(max_lines=3)
        out = render_spacetime(r.trace, 4, options=opt)
        assert out.splitlines()[-1] == f"... ({rendered - 3} more events)"

    def test_no_truncation_tail_when_everything_fits(self):
        r = ring_result()
        full = render_spacetime(r.trace, 4)
        rendered = len(full.splitlines()) - 2
        opt = SpacetimeOptions(max_lines=rendered)
        assert render_spacetime(r.trace, 4, options=opt) == full

    def test_empty_trace(self):
        out = render_spacetime(Trace(), 2)
        assert len(out.splitlines()) == 2  # header + rule only

    def test_failure_story_is_subset(self):
        r = ring_result()
        story = failure_story(r.trace, 4)
        assert "FAILED" in story
        assert "send>1" not in story  # normal traffic filtered out

    def test_columns_aligned(self):
        r = ring_result()
        out = render_spacetime(r.trace, 4)
        lines = out.splitlines()
        opt = SpacetimeOptions()
        # A r2 event must start exactly at r2's column offset.
        r2_lines = [
            ln for ln in lines if "FAILED" in ln
        ]
        assert r2_lines
        expected_off = opt.time_width + 2 * opt.col_width
        assert r2_lines[0].index("FAILED") == expected_off

    def test_abort_and_deadlock_markers(self):
        # Construct a trace by hand to cover rare kinds.
        t = Trace()
        t.record(0.0, TraceKind.ABORT, 1, code=-1)
        t.record(0.0, TraceKind.DEADLOCK, 0, waiting="x")
        t.record(0.0, TraceKind.SEND_DROP, 0, dst=1)
        out = render_spacetime(t, 2)
        assert "ABORT(-1)" in out
        assert "BLOCKED*" in out
        assert "drop>1" in out
