"""Golden-file determinism: kernel changes must not move a single byte.

The kernel hot path (fiber handoff, event queue, matching engine, trace
recording) is rewritten for speed from time to time.  These tests pin the
*exact* observable behaviour across such rewrites: for every **fiber
backend × scheduling policy** combination, a failure-heavy ring scenario
must produce a ``trace.format()`` output that is byte-identical to the
golden file checked in under ``tests/golden/`` — and identical between
two runs in the same process.  One golden file per policy serves every
backend: a fiber backend decides *how* a call stack suspends, never
*which* fiber runs next, so switching backends must not move a byte.

Regenerate the goldens (only when an *intentional* semantic change lands)
with::

    PYTHONPATH=src python tests/test_determinism_golden.py --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import RingConfig, RingVariant, Termination, make_ring_main
from repro.faults import KillAtProbe, KillAtTime
from repro.simmpi import Simulation, available_backends

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: (golden file stem, policy spec, seed) — ``seed`` feeds RandomPolicy.
CASES = [
    ("trace_rr", "rr", 0),
    ("trace_lowest", "lowest", 0),
    ("trace_random_s0", "random", 0),
    ("trace_random_s1", "random", 1),
    ("trace_random_s2", "random", 2),
    ("trace_random_s3", "random", 3),
]

#: (golden file stem, protocol) — the recovery-protocol presets of
#: ``repro trace`` (fig7's shape: 4 logical ranks, 4 iterations, rank 2
#: fail-stopped mid-run) driven by each :mod:`repro.protocols` family.
PROTOCOL_CASES = [
    ("trace_shrink_repair", "shrink_repair"),
    ("trace_replication", "replication"),
    ("trace_partial_restart", "partial_restart"),
]

#: Every importable fiber backend verifies against the *same* goldens.
BACKENDS = available_backends()


def _run_scenario(policy: str, seed: int, fibers: str | None = None) -> str:
    """A failure-heavy 5-rank ring: one probe-window kill plus one timed
    kill, with a non-zero detection latency so DETECT events land at
    distinct times.  Deadlocks are returned (recorded in the trace), not
    raised, so every policy yields a complete timeline."""
    sim = Simulation(
        nprocs=5, seed=seed, policy=policy, detection_latency=2e-6,
        fibers=fibers,
    )
    sim.add_injector(KillAtProbe(rank=2, probe="post_recv", hit=2))
    sim.add_injector(KillAtTime(rank=3, time=1.5e-5))
    cfg = RingConfig(
        max_iter=4,
        variant=RingVariant.FT_MARKER,
        termination=Termination.VALIDATE_ALL,
    )
    result = sim.run(make_ring_main(cfg), on_deadlock="return")
    return result.trace.format() + "\n"


def _run_protocol_scenario(protocol: str, fibers: str | None = None) -> str:
    """The ``repro trace`` preset shape for the recovery-protocol
    families: the fig7 ring (4 logical ranks, 4 iterations) with rank 2
    fail-stopped at a fixed virtual time and a non-zero detection
    latency.  Each family turns the same kill into a different timeline
    — revoke/shrink epochs, replica failover, respawn + state transfer —
    and each timeline must be byte-stable across kernels and backends."""
    from repro.protocols import ProtocolRingConfig, ring_mains

    nproc, main = ring_mains(protocol, ProtocolRingConfig(max_iter=4), 4)
    sim = Simulation(
        nprocs=nproc, seed=0, detection_latency=2e-6, fibers=fibers
    )
    sim.add_injector(KillAtTime(rank=2, time=1.5e-5))
    result = sim.run(main, on_deadlock="return")
    return result.trace.format() + "\n"


@pytest.mark.parametrize("fibers", BACKENDS)
@pytest.mark.parametrize("stem,policy,seed", CASES)
def test_trace_matches_golden(
    stem: str, policy: str, seed: int, fibers: str
) -> None:
    golden = (GOLDEN_DIR / f"{stem}.txt").read_text()
    assert _run_scenario(policy, seed, fibers) == golden


@pytest.mark.parametrize("fibers", BACKENDS)
@pytest.mark.parametrize("stem,policy,seed", CASES)
def test_trace_stable_across_runs(
    stem: str, policy: str, seed: int, fibers: str
) -> None:
    assert (_run_scenario(policy, seed, fibers)
            == _run_scenario(policy, seed, fibers))


@pytest.mark.parametrize("fibers", BACKENDS)
@pytest.mark.parametrize("stem,protocol", PROTOCOL_CASES)
def test_protocol_trace_matches_golden(
    stem: str, protocol: str, fibers: str
) -> None:
    golden = (GOLDEN_DIR / f"{stem}.txt").read_text()
    assert _run_protocol_scenario(protocol, fibers) == golden


@pytest.mark.parametrize("fibers", BACKENDS)
@pytest.mark.parametrize("stem,protocol", PROTOCOL_CASES)
def test_protocol_trace_stable_across_runs(
    stem: str, protocol: str, fibers: str
) -> None:
    assert (_run_protocol_scenario(protocol, fibers)
            == _run_protocol_scenario(protocol, fibers))


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden files")
    GOLDEN_DIR.mkdir(exist_ok=True)
    for stem, policy, seed in CASES:
        out = _run_scenario(policy, seed)
        (GOLDEN_DIR / f"{stem}.txt").write_text(out)
        print(f"wrote {stem}.txt ({len(out.splitlines())} lines)")
    for stem, protocol in PROTOCOL_CASES:
        out = _run_protocol_scenario(protocol)
        (GOLDEN_DIR / f"{stem}.txt").write_text(out)
        print(f"wrote {stem}.txt ({len(out.splitlines())} lines)")
