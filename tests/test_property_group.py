"""Property-based tests: group set-algebra laws and translation."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simmpi import UNDEFINED
from repro.simmpi.group import Group

ranks_lists = st.lists(st.integers(0, 15), unique=True, max_size=10)


class TestGroupAlgebraLaws:
    @given(a=ranks_lists, b=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_union_members(self, a, b):
        g = Group(a).union(Group(b))
        assert set(g.ranks) == set(a) | set(b)
        # Self's order first, then other's extras in other's order.
        assert list(g.ranks[: len(a)]) == a

    @given(a=ranks_lists, b=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_intersection_members_and_order(self, a, b):
        g = Group(a).intersection(Group(b))
        assert set(g.ranks) == set(a) & set(b)
        assert list(g.ranks) == [r for r in a if r in set(b)]

    @given(a=ranks_lists, b=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_difference_members_and_order(self, a, b):
        g = Group(a).difference(Group(b))
        assert set(g.ranks) == set(a) - set(b)
        assert list(g.ranks) == [r for r in a if r not in set(b)]

    @given(a=ranks_lists, b=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_partition_identity(self, a, b):
        ga, gb = Group(a), Group(b)
        inter = ga.intersection(gb)
        diff = ga.difference(gb)
        # a = (a & b) + (a - b), as sets and in total size.
        assert set(inter.ranks) | set(diff.ranks) == set(a)
        assert inter.size + diff.size == ga.size

    @given(a=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_incl_excl_inverse(self, a):
        g = Group(a)
        idx = list(range(0, len(a), 2))
        sub = g.incl(idx)
        rest = g.excl(idx)
        assert set(sub.ranks) | set(rest.ranks) == set(a)
        assert set(sub.ranks) & set(rest.ranks) == set()

    @given(a=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_translation_roundtrip(self, a):
        g = Group(a)
        for gr, wr in enumerate(a):
            assert g.world_rank(gr) == wr
            assert g.rank_of_world(wr) == gr
        assert g.rank_of_world(99) == UNDEFINED

    @given(a=ranks_lists, b=ranks_lists)
    @settings(max_examples=200, deadline=None)
    def test_translate_ranks_consistent(self, a, b):
        ga, gb = Group(a), Group(b)
        out = ga.translate_ranks(list(range(ga.size)), gb)
        for gr, tr in enumerate(out):
            wr = ga.world_rank(gr)
            if wr in gb:
                assert gb.world_rank(tr) == wr
            else:
                assert tr == UNDEFINED
