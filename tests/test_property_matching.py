"""Property-based tests for the matching engine and event queue."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simmpi.clock import EventQueue
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.matching import Message, MatchingEngine


class _FakeReq:
    """Minimal stand-in for a Request in pure matching tests."""

    def __init__(self, peer: int, tag: int) -> None:
        self.peer = peer
        self.tag = tag


def msg(src=0, dst=0, tag=0, ctx=0, payload=None):
    return Message(src=src, dst=dst, tag=tag, context=ctx,
                   payload=payload, nbytes=8)


messages = st.builds(
    msg,
    src=st.integers(0, 3),
    tag=st.integers(0, 3),
    ctx=st.integers(0, 1),
    payload=st.integers(),
)


class TestMatchingProperties:
    @given(st.lists(messages, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_unmatched_messages_all_queue(self, msgs):
        eng = MatchingEngine(rank=0)
        for m in msgs:
            assert eng.deliver(m) is None  # no receives posted
        assert eng.stats()["unexpected"] == len(msgs)
        assert eng.stats()["posted"] == 0

    @given(st.lists(messages, min_size=1, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_fifo_matching_per_selector(self, msgs):
        # Posting a wildcard receive after deliveries must return the
        # earliest-delivered matching message (non-overtaking).
        eng = MatchingEngine(rank=0)
        for m in msgs:
            eng.deliver(m)
        got = eng.post_recv(_FakeReq(ANY_SOURCE, ANY_TAG), context=msgs[0].context)
        expected = next(m for m in msgs if m.context == msgs[0].context)
        assert got is expected

    @given(st.lists(messages, max_size=30), st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=200, deadline=None)
    def test_specific_recv_only_matches_selector(self, msgs, src, tag):
        eng = MatchingEngine(rank=0)
        for m in msgs:
            eng.deliver(m)
        got = eng.post_recv(_FakeReq(src, tag), context=0)
        matching = [m for m in msgs if m.context == 0 and m.src == src and m.tag == tag]
        if matching:
            assert got is matching[0]
        else:
            assert got is None

    @given(st.lists(messages, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_conservation(self, msgs):
        # Every delivered message is either matched exactly once or still
        # in the unexpected queue: nothing duplicated, nothing lost.
        eng = MatchingEngine(rank=0)
        for m in msgs:
            eng.deliver(m)
        matched = []
        while True:
            got = eng.post_recv(_FakeReq(ANY_SOURCE, ANY_TAG), context=0)
            if got is None:
                break
            matched.append(got)
        ctx0 = [m for m in msgs if m.context == 0]
        assert matched == ctx0
        assert eng.stats()["unexpected"] == len(msgs) - len(ctx0)

    @given(st.lists(messages, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_posted_recvs_match_in_post_order(self, msgs):
        eng = MatchingEngine(rank=0)
        reqs = [_FakeReq(ANY_SOURCE, ANY_TAG) for _ in range(len(msgs))]
        for r in reqs:
            eng.post_recv(r, context=0)
        hits = []
        for m in msgs:
            got = eng.deliver(m)
            if m.context == 0:
                hits.append(got)
            else:
                assert got is None
        # Messages on context 0 match the earliest-posted pending receive.
        assert hits == reqs[: len(hits)]

    def test_cancel_removes_posted(self):
        eng = MatchingEngine(rank=0)
        r = _FakeReq(1, 1)
        eng.post_recv(r, context=0)
        assert eng.cancel_recv(r)
        assert not eng.cancel_recv(r)
        assert eng.deliver(msg(src=1, tag=1)) is None


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_pop_order_is_sorted_stable(self, times):
        q = EventQueue()
        for i, t in enumerate(times):
            q.schedule(t, lambda: None, label=str(i))
        popped = []
        while q:
            popped.append(q.pop())
        assert [e.time for e in popped] == sorted(t for t in times)
        # Stability: equal times pop in scheduling order.
        for a, b in zip(popped, popped[1:]):
            if a.time == b.time:
                assert a.seq < b.seq

    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                 min_size=1, max_size=30),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancellation_removes_exactly_those(self, times, data):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in times]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(events) - 1),
                    max_size=len(events))
        )
        for i in to_cancel:
            events[i].cancel()
            q.note_cancelled()
        survivors = []
        while q:
            survivors.append(q.pop())
        assert len(survivors) == len(events) - len(to_cancel)
        assert all(not e.cancelled for e in survivors)
