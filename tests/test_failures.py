"""Fail-stop semantics and the perfect failure detector (paper §II)."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ErrorHandler,
    RankFailStopError,
    Simulation,
    TraceKind,
    wait,
    waitany,
)
from repro.ft import comm_validate_clear
from tests.conftest import run_sim


def returning(mpi):
    mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
    return mpi.comm_world


class TestFailStop:
    def test_killed_process_reported_failed(self):
        def main(mpi):
            mpi.compute(1.0)
            return "survived"

        r = run_sim(main, 3, kills=[(1, 0.5)])
        assert r.failed_ranks == {1}
        assert r.outcomes[1].state == "failed"
        assert r.value(0) == "survived"

    def test_kill_after_completion_is_noop(self):
        def main(mpi):
            return "done"

        r = run_sim(main, 2, kills=[(1, 100.0)])
        assert r.failed_ranks == set()

    def test_send_to_known_failed_raises(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                mpi.compute(1.0)
                with pytest.raises(RankFailStopError) as e:
                    comm.send("x", dest=1)
                assert e.value.peer == 1
                return "ok"
            mpi.compute(2.0)

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == "ok"

    def test_recv_posted_to_peer_that_later_fails(self):
        # The watchdog semantic: pending receives error at detection.
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                req = comm.irecv(source=1)
                with pytest.raises(RankFailStopError):
                    wait(req)
                return mpi.now
            mpi.compute(2.0)

        r = run_sim(main, 2, kills=[(1, 0.5)])
        assert r.value(0) == pytest.approx(0.5)

    def test_any_source_recv_with_unrecognized_failure_errors(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                mpi.compute(1.0)
                with pytest.raises(RankFailStopError):
                    comm.recv(source=ANY_SOURCE)
                return "errored"
            mpi.compute(2.0)

        assert run_sim(main, 3, kills=[(1, 0.5)]).value(0) == "errored"

    def test_any_source_ok_after_recognition(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                mpi.compute(1.0)
                comm_validate_clear(comm, [1])
                data, status = comm.recv(source=ANY_SOURCE)
                return (data, status.source)
            if comm.rank == 1:
                mpi.compute(2.0)
                return
            comm.send("from2", dest=0)
            mpi.compute(2.0)

        r = run_sim(main, 3, kills=[(1, 0.5)])
        assert r.value(0) == ("from2", 2)

    def test_in_flight_message_from_dead_sender_still_delivered(self):
        # Fail-stop wire semantics: what was sent before death arrives.
        # Detection must lag delivery for the receiver to consume it.
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                comm.send("last words", dest=0)
                mpi.compute(1.0)
            else:
                data, _ = comm.recv(source=1)
                return data

        r = run_sim(
            main, 2, kills=[(1, 1e-7)], detection_latency=1e-3,
            on_deadlock="return",
        )
        assert r.value(0) == "last words"

    def test_message_to_dead_rank_dropped(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                comm.send("into the void", dest=1)
                return "sent"
            mpi.compute(1.0)

        # Detection latency ensures the send is posted before rank 0
        # learns of the death (so it does not raise).
        r = run_sim(
            main, 2, kills=[(1, 1e-9)], detection_latency=1.0,
            on_deadlock="return",
        )
        assert r.value(0) == "sent"
        assert r.trace.count(TraceKind.SEND_DROP) == 1


class TestRecognition:
    def test_send_to_recognized_failed_is_proc_null(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                mpi.compute(1.0)
                comm_validate_clear(comm, [1])
                comm.send("x", dest=1)  # no error: PROC_NULL semantics
                return "ok"
            mpi.compute(2.0)

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == "ok"

    def test_recv_from_recognized_failed_completes_empty(self):
        from repro.simmpi import PROC_NULL

        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                mpi.compute(1.0)
                comm_validate_clear(comm, [1])
                data, status = comm.recv(source=1)
                return (data, status.source)
            mpi.compute(2.0)

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == (None, PROC_NULL)


class TestDetectionLatency:
    def test_uniform_latency_delays_knowledge(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                req = comm.irecv(source=1)
                with pytest.raises(RankFailStopError):
                    wait(req)
                return mpi.now
            mpi.compute(1.0)

        r = run_sim(main, 2, kills=[(1, 0.5)], detection_latency=0.25)
        assert r.value(0) == pytest.approx(0.75)

    def test_per_observer_latency(self):
        def lat(observer: int, failed: int) -> float:
            return 0.1 if observer == 0 else 0.9

        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            req = comm.irecv(source=2)
            with pytest.raises(RankFailStopError):
                wait(req)
            return mpi.now

        r = run_sim(main, 3, kills=[(2, 0.5)], detection_latency=lat)
        assert r.value(0) == pytest.approx(0.6)
        assert r.value(1) == pytest.approx(1.4)

    def test_detect_events_traced_per_observer(self):
        def main(mpi):
            mpi.compute(1.0)

        r = run_sim(main, 4, kills=[(2, 0.5)])
        detects = r.trace.filter(kind=TraceKind.DETECT)
        assert {e.rank for e in detects} == {0, 1, 3}


class TestSsendFailure:
    def test_pending_ssend_errors_when_peer_dies(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                req = comm.issend("never matched", dest=1)
                with pytest.raises(RankFailStopError):
                    wait(req)
                return "errored"
            mpi.compute(1.0)  # never posts the receive

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == "errored"

    def test_issend_to_known_failed_completes_in_error(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                mpi.compute(1.0)
                req = comm.issend("x", dest=1)
                assert req.done and req.failed()
                return "ok"
            mpi.compute(2.0)

        assert run_sim(main, 2, kills=[(1, 0.5)]).value(0) == "ok"


class TestWatchdogPattern:
    def test_watchdog_irecv_detects_right_neighbor_death(self):
        # The paper's central trick in isolation (Fig. 9 mechanism).
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 0:
                data_req = comm.irecv(source=1, tag=1)
                watchdog = comm.irecv(source=2, tag=1)
                try:
                    waitany([data_req, watchdog])
                except RankFailStopError as e:
                    data_req.cancel()
                    return ("watchdog fired", e.index, e.peer)
            elif comm.rank == 1:
                mpi.compute(5.0)  # silent; never sends
                comm.send("data", dest=0, tag=1)
            else:
                mpi.compute(1.0)

        r = run_sim(main, 3, kills=[(2, 0.5)])
        assert r.value(0) == ("watchdog fired", 1, 2)
