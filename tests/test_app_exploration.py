"""Exhaustive failure-window sweeps over the domain applications.

The explorer is application-agnostic: anything with probe points can be
swept.  These tests put every app through the §III-E treatment with the
generic invariants (no hang; survivors finish) plus app-specific checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import no_hang, survivors_done
from repro.apps import (
    AbftConfig,
    FarmConfig,
    HeatConfig,
    expected_results,
    make_abft_main,
    make_farm_mains,
    make_heat_main,
    reference_result,
)
from repro.faults import explore
from repro.simmpi import Simulation


class TestHeatExploration:
    def test_every_step_window_survives(self):
        cfg = HeatConfig(cells_per_rank=4, steps=5)

        def factory():
            return Simulation(nprocs=4), make_heat_main(cfg)

        def fields_finite(result):
            for o in result.outcomes:
                if o.state == "done":
                    f = np.array(o.value["field"])
                    if not np.all(np.isfinite(f)):
                        return f"rank {o.rank} produced non-finite values"
            return None

        rep = explore(
            factory,
            invariants=[no_hang, survivors_done, fields_finite],
            probes=["step_top", "halos_posted", "step_done"],
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()

    def test_window_pairs_on_distinct_ranks(self):
        cfg = HeatConfig(cells_per_rank=4, steps=3)

        def factory():
            return Simulation(nprocs=4), make_heat_main(cfg)

        rep = explore(
            factory,
            invariants=[no_hang, survivors_done],
            probes=["step_top", "step_done"],
            pairs=True,
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()


class TestFarmExploration:
    def test_every_worker_window_completes_farm(self):
        cfg = FarmConfig(num_tasks=8, work_per_task=1e-6)
        nprocs = 4

        def factory():
            return Simulation(nprocs=nprocs), make_farm_mains(cfg, nprocs)

        def farm_complete(result):
            if result.aborted is not None:
                return None  # all-workers-dead abort is legitimate
            if result.outcomes[0].state != "done":
                return "manager did not finish"
            if result.outcomes[0].value["results"] != expected_results(cfg):
                return "results incomplete or wrong"
            return None

        rep = explore(
            factory,
            invariants=[no_hang, farm_complete],
            ranks=[1, 2, 3],  # the manager (rank 0) is assumed immortal
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()


class TestAbftExploration:
    def test_every_compute_window_stays_exact(self):
        cfg = AbftConfig(iterations=3)
        nprocs = 4  # 3 compute + 1 parity

        def factory():
            return Simulation(nprocs=nprocs), make_abft_main(cfg)

        def blocks_exact(result):
            done = [o for o in result.outcomes if o.state == "done"]
            if not done:
                return "nobody finished"
            rep = done[0].value
            if rep["degraded"]:
                return "degraded under a single failure"
            for it in range(cfg.iterations):
                ref = reference_result(cfg, nprocs, it)
                got = rep["results"][it]["blocks"]
                for k, v in ref.items():
                    if k not in got or not np.allclose(got[k], v):
                        return f"iteration {it} block {k} wrong"
            return None

        rep = explore(
            factory,
            invariants=[no_hang, survivors_done, blocks_exact],
            ranks=[0, 1, 2],  # any compute rank, any window
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()

    def test_parity_windows_lose_only_redundancy(self):
        cfg = AbftConfig(iterations=3)
        nprocs = 4

        def factory():
            return Simulation(nprocs=nprocs), make_abft_main(cfg)

        def still_exact(result):
            done = [o for o in result.outcomes if o.state == "done"]
            rep = done[0].value
            if rep["degraded"]:
                return "parity loss alone must not degrade results"
            return None

        rep = explore(
            factory,
            invariants=[no_hang, survivors_done, still_exact],
            ranks=[nprocs - 1],
        )
        assert rep.summary()["ok"] == rep.summary()["runs"], rep.format()
