"""One-sided (RMA) operations with run-through stabilization semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ft import comm_validate_all, comm_validate_clear
from repro.simmpi import (
    ErrorHandler,
    InvalidArgumentError,
    RankFailStopError,
    Simulation,
    wait,
)
from repro.simmpi.rma import win_create
from tests.conftest import run_sim


def returning(mpi):
    mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
    return mpi.comm_world


class TestBasicRMA:
    def test_put_lands_in_target_window(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=comm.size)
            if comm.rank != 0:
                wait(win.put([float(comm.rank * 10)], target=0,
                             offset=comm.rank))
            win.fence()
            return win.local.tolist()

        r = run_sim(main, 4)
        assert r.value(0) == [0.0, 10.0, 20.0, 30.0]

    def test_get_reads_remote_values(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=3, init=float(comm.rank))
            win.fence()
            req = win.get(target=(comm.rank + 1) % comm.size, count=3)
            wait(req)
            return req.data.tolist()

        r = run_sim(main, 3)
        assert r.value(0) == [1.0, 1.0, 1.0]
        assert r.value(2) == [0.0, 0.0, 0.0]

    def test_accumulate_is_atomic_per_element(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            wait(win.accumulate([1.0], target=0, op="sum"))
            win.fence()
            return win.local[0]

        r = run_sim(main, 6)
        assert r.value(0) == 6.0

    def test_accumulate_other_ops(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1, init=1.0)
            wait(win.accumulate([float(comm.rank + 1)], target=0, op="max"))
            win.fence()
            return win.local[0]

        r = run_sim(main, 4)
        assert r.value(0) == 4.0

    def test_target_thread_never_participates(self):
        # The defining RMA property: the target can be blocked elsewhere
        # while the progress engine applies the put.
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            if comm.rank == 0:
                # Block in an unrelated recv the whole time.
                data, _ = comm.recv(source=1, tag=9)
                return (win.local[0], data)
            wait(win.put([7.0], target=0))
            if comm.rank == 1:
                comm.send("late", dest=0, tag=9)

        r = run_sim(main, 3)
        value, data = r.value(0)
        assert value == 7.0 and data == "late"

    def test_local_view_mutable(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=2)
            win.local[:] = [5.0, 6.0]
            win.fence()
            req = win.get(target=comm.rank, count=2)
            wait(req)
            return req.data.tolist()

        r = run_sim(main, 2)
        assert r.value(0) == [5.0, 6.0]

    def test_multiple_windows_isolated(self):
        def main(mpi):
            comm = returning(mpi)
            a = win_create(comm, size=1)
            b = win_create(comm, size=1)
            if comm.rank == 1:
                wait(a.put([1.0], target=0))
                wait(b.put([2.0], target=0))
            a.fence()
            b.fence()
            return (a.local[0], b.local[0])

        r = run_sim(main, 2)
        assert r.value(0) == (1.0, 2.0)

    def test_invalid_target_and_op(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            with pytest.raises(InvalidArgumentError):
                win.put([1.0], target=44)
            with pytest.raises(InvalidArgumentError):
                win.accumulate([1.0], target=0, op="frobnicate")
            win.fence()
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"


class TestRMAFailureSemantics:
    def test_op_to_known_failed_raises(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            win.fence()
            if comm.rank == 0:
                mpi.compute(1.0)
                with pytest.raises(RankFailStopError):
                    win.put([1.0], target=1)
                return "caught"
            mpi.compute(2.0)

        r = run_sim(main, 2, kills=[(1, 0.5)], on_deadlock="return")
        assert r.outcomes[0].value == "caught"

    def test_op_to_recognized_failed_is_proc_null(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=2)
            win.fence()
            if comm.rank == 0:
                mpi.compute(1.0)
                comm_validate_clear(comm, [1])
                wait(win.put([1.0], target=1))  # no-op, succeeds
                req = win.get(target=1, count=2)
                wait(req)
                return req.data.tolist()
            mpi.compute(2.0)

        r = run_sim(main, 2, kills=[(1, 0.5)], on_deadlock="return")
        assert r.outcomes[0].value == [0.0, 0.0]  # zeros, per PROC_NULL

    def test_in_flight_op_errors_when_target_dies(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            if comm.rank == 0:
                req = win.put([1.0], target=1)
                with pytest.raises(RankFailStopError):
                    wait(req)
                return "errored"
            mpi.compute(1.0)

        # Detection latency lets the put be issued before rank 0 knows.
        r = run_sim(
            main, 2, kills=[(1, 1e-9)], detection_latency=1e-3,
            on_deadlock="return",
        )
        assert r.outcomes[0].value == "errored"

    def test_fence_disabled_until_validate(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            with pytest.raises(RankFailStopError):
                win.fence()
            comm_validate_all(comm)
            win.fence()  # over survivors now
            return "ok"

        r = run_sim(main, 3, kills=[(2, 0.5)])
        assert r.value(0) == "ok" and r.value(1) == "ok"

    def test_rma_continues_over_survivors_after_validate(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=comm.size)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            comm_validate_all(comm)
            if comm.rank != 0:
                wait(win.put([float(comm.rank)], target=0, offset=comm.rank))
            win.fence()
            return win.local.tolist()

        r = run_sim(main, 4, kills=[(1, 0.5)])
        assert r.value(0) == [0.0, 0.0, 2.0, 3.0]

    def test_win_free(self):
        def main(mpi):
            comm = returning(mpi)
            win = win_create(comm, size=1)
            win.fence()
            win.free()
            return "ok"

        assert run_sim(main, 2).value(0) == "ok"
