"""Kernel metrics timelines and the RunReport summary.

The load-bearing invariant: ``metrics=True`` is strictly opt-in.  A
default-constructed simulation allocates **no** obs state (``Runtime.obs``
is ``None``, ``SimulationResult.metrics`` is ``None``) — the same
zero-cost-when-disabled discipline the trace uses, bench-guarded in
``benchmarks/bench_kernel.py``.
"""

from __future__ import annotations

import pytest

from repro.core import RingConfig, RingVariant, Termination, make_ring_main
from repro.faults import FailureSchedule
from repro.obs import KernelMetrics, make_scenario, run_report
from repro.simmpi import Simulation


def run_ring(metrics: bool, nprocs: int = 4, **sched):
    cfg = RingConfig(max_iter=3, termination=Termination.VALIDATE_ALL)
    sim = Simulation(nprocs=nprocs, metrics=metrics)
    if sched:
        s = FailureSchedule()
        s.at_probe(sched["rank"], sched["probe"], sched["hit"])
        sim.add_injector(s.injector())
    return sim.run(make_ring_main(cfg), on_deadlock="return")


# ---------------------------------------------------------------------------
# Opt-in contract
# ---------------------------------------------------------------------------


def test_metrics_default_off():
    sim = Simulation(nprocs=2)
    assert sim.runtime.obs is None
    result = sim.run(make_ring_main(RingConfig(max_iter=1)))
    assert result.metrics is None


def test_metrics_opt_in_allocates():
    result = run_ring(metrics=True)
    assert isinstance(result.metrics, KernelMetrics)


def test_metrics_do_not_perturb_the_run():
    """The hooks observe; they must not change the schedule or the trace."""
    plain = run_ring(metrics=False)
    observed = run_ring(metrics=True)
    assert plain.trace.keys() == observed.trace.keys()
    assert plain.final_time == observed.final_time


# ---------------------------------------------------------------------------
# Series content
# ---------------------------------------------------------------------------


def test_series_populated():
    m = run_ring(metrics=True).metrics
    assert len(m.event_queue) > 0
    assert len(m.in_flight) > 0
    assert m.in_flight.last() == 0  # every message eventually done
    assert m.in_flight.maximum() >= 1
    assert any(len(s) for s in m.posted)
    # Sample times never precede the virtual epoch.  (They are *not*
    # globally monotone within a series: a fiber's local clock runs ahead
    # of the global event queue, and the Perfetto UI sorts by ts anyway.)
    for series in m.counter_series():
        assert all(t >= 0.0 for t in series.times)


def test_blocked_intervals_close():
    m = run_ring(metrics=True).metrics
    total = sum(len(iv) for iv in m.blocked_intervals)
    assert total > 0
    for ivs in m.blocked_intervals:
        for start, end in ivs:
            assert end >= start


def test_queue_sample_ranks_in_range():
    m = run_ring(metrics=True, nprocs=3).metrics
    assert len(m.posted) == 3 and len(m.unexpected) == 3


# ---------------------------------------------------------------------------
# RunReport
# ---------------------------------------------------------------------------


def test_run_report_clean_run():
    result = run_ring(metrics=True)
    rep = run_report(result)
    assert rep.nprocs == 4
    assert len(rep.ranks) == 4
    for r in rep.ranks:
        assert r.failed_s == 0.0
        assert r.busy_s >= 0.0 and r.blocked_s >= 0.0
        assert r.busy_s + r.blocked_s == pytest.approx(rep.final_time)
    assert rep.detection_latencies == []


def test_run_report_detection_latency():
    sim, main, nprocs = make_scenario("fig8")  # detection_latency=2us
    result = sim.run(main, on_deadlock="return", raise_app_errors=False)
    rep = run_report(result, nprocs=nprocs)
    assert rep.detection_latencies
    worst = max(lat for _o, _f, lat in rep.detection_latencies)
    assert worst == pytest.approx(2e-6)


def test_run_report_failed_time():
    result = run_ring(metrics=True, rank=2, probe="post_recv", hit=1)
    rep = run_report(result)
    failed = {r.rank: r.failed_s for r in rep.ranks}
    assert failed[2] >= 0.0
    assert all(failed[r] == 0.0 for r in (0, 1, 3))


def test_run_report_without_metrics_agrees_on_shape():
    """Trace-only fallback produces the same report structure (blocked
    accounting may differ at the margins, states and latencies match)."""
    with_m = run_report(run_ring(metrics=True))
    without = run_report(run_ring(metrics=False))
    assert [r.state for r in with_m.ranks] == [r.state for r in without.ranks]
    assert with_m.final_time == without.final_time
    assert with_m.detection_latencies == without.detection_latencies


def test_run_report_format_smoke():
    text = run_report(run_ring(metrics=True)).format()
    assert "run report: 4 rank(s)" in text
    assert "blocked(us)" in text


def test_consensus_timings_recorded():
    # A failure under validate_all termination drives the consensus
    # engine; the kernel hooks time every instance from first round entry
    # to decision.
    result = run_ring(metrics=True, rank=2, probe="post_recv", hit=1)
    rep = run_report(result)
    assert rep.consensus
    assert rep.validate_latencies
    for _rank, start, dur, rounds, how in rep.consensus:
        assert dur >= 0.0 and rounds >= 0 and start >= 0.0
        assert isinstance(how, str)
