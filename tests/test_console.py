"""The live campaign console (``repro top``): tail-tolerant telemetry
reads, dashboard rendering, and the follow loop's completion logic.
"""

from __future__ import annotations

import io
import json
import threading

from repro.faults import run_campaign
from repro.obs.console import read_telemetry_tail, render_top, top
from repro.obs.telemetry import TELEMETRY_FORMAT
from repro.parallel import RemoteRunner, WorkerServer
from tests.conftest import (
    RING_INVARIANTS as INVARIANTS,
    RING_SCENARIO as SCENARIO,
)


def _campaign(runner=None, **kw):
    return run_campaign(
        SCENARIO,
        seeds=range(6),
        horizon=8e-6,
        invariants=INVARIANTS,
        runner=runner,
        **kw,
    )


def _telemetry(tmp_path, runner=None):
    log = tmp_path / "tel.jsonl"
    _campaign(runner=runner, telemetry=str(log))
    return log


class TestTailReader:
    def test_missing_file_and_wrong_header_give_empty(self, tmp_path):
        assert read_telemetry_tail(tmp_path / "nope.jsonl") == []
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format":"something-else"}\n')
        assert read_telemetry_tail(bad) == []

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        log = _telemetry(tmp_path)
        whole = len(read_telemetry_tail(log))
        log.write_text(log.read_text() + '{"kind":"job","ind')
        assert len(read_telemetry_tail(log)) == whole


class TestRenderTop:
    def test_dashboard_sections(self, tmp_path):
        records = read_telemetry_tail(_telemetry(tmp_path))
        text = render_top(records)
        assert "repro top — campaign sweep" in text
        assert "6/6 (100%)" in text
        assert "eta done" in text
        assert "ok               6" in text
        assert "job wall   p50=" in text
        assert "cache      off" in text
        assert "retries    0" in text
        assert "workers (local pids)" in text
        assert "slowest 3" in text

    def test_partial_stream_shows_progress_and_eta(self, tmp_path):
        log = _telemetry(tmp_path)
        records = read_telemetry_tail(log)
        partial = records[:1] + [
            r for r in records[1:] if r.get("kind") == "job"
        ][:3]
        text = render_top(partial)
        assert "3/6 (50%)" in text
        assert "eta done" not in text

    def test_remote_worker_table(self, tmp_path):
        server = WorkerServer(("127.0.0.1", 0))
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            log = _telemetry(
                tmp_path, runner=RemoteRunner(addresses=[server.address])
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        text = render_top(read_telemetry_tail(log))
        assert "workers (remote transport)" in text
        assert f"{server.address[0]}:{server.address[1]}" in text
        assert "rtt ms" in text and "wire B" in text


class TestTopLoop:
    def test_one_shot_renders_and_exits_zero(self, tmp_path):
        out = io.StringIO()
        assert top(_telemetry(tmp_path), out=out) == 0
        assert "repro top — campaign sweep" in out.getvalue()

    def test_one_shot_missing_file_exits_one(self, tmp_path):
        out = io.StringIO()
        assert top(tmp_path / "nope.jsonl", out=out) == 1
        assert "waiting for telemetry" in out.getvalue()

    def test_follow_exits_when_stream_completes(self, tmp_path):
        log = _telemetry(tmp_path)
        full = log.read_text()
        lines = full.splitlines(keepends=True)
        header = json.loads(lines[0])
        assert header["format"] == TELEMETRY_FORMAT
        log.write_text("".join(lines[:3]))  # mid-campaign snapshot

        def grow(_interval):
            log.write_text(full)  # the campaign "finishes" between paints

        out = io.StringIO()
        assert top(log, follow=True, out=out, sleep=grow) == 0
        assert out.getvalue().count("repro top — campaign sweep") == 2

    def test_follow_interrupt_exits_zero(self, tmp_path):
        log = _telemetry(tmp_path)
        lines = log.read_text().splitlines(keepends=True)
        log.write_text("".join(lines[:3]))  # never completes

        def interrupt(_interval):
            raise KeyboardInterrupt

        assert top(log, follow=True, out=io.StringIO(), sleep=interrupt) == 0

    def test_cli_top_command(self, tmp_path, capsys):
        from repro.cli import main

        log = _telemetry(tmp_path)
        assert main(["top", "--telemetry", str(log)]) == 0
        assert "repro top — campaign sweep" in capsys.readouterr().out
