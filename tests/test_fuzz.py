"""The schedule-space fuzzer: determinism, shrinking, replay, CLI.

The property under test everywhere here is the tentpole guarantee: one
``(seed,)`` tuple fully determines a fuzz campaign — same corpus, same
digests, same report text — no matter how (serial, pooled) or when it
runs.  On top of that: the delta-debugging shrinker must minimize real
failures, and ``.repro.json`` files must replay byte-identically.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    FuzzConfig,
    FuzzJob,
    JitterSpec,
    fuzz,
    load_repro,
    replay,
    result_digest,
    sample_configs,
    shrink,
    write_repro,
)
from repro.parallel import AppScenario, ProcessPoolRunner, RingScenario
from repro.simmpi import DEFAULT_COST, JitteredCostModel
from tests.conftest import RING_SCENARIO

NAIVE = RingScenario(nprocs=4, iters=3, variant="naive")


# ---------------------------------------------------------------------------
# Seeded jitter hook
# ---------------------------------------------------------------------------


class TestJitteredCostModel:
    def _model(self, **kw) -> JitteredCostModel:
        base = DEFAULT_COST
        return JitteredCostModel(
            latency=base.latency, byte_cost=base.byte_cost,
            overhead=base.overhead, **kw,
        )

    def test_zero_amplitudes_match_plain_model(self):
        plain = DEFAULT_COST
        jittered = self._model(jitter_seed=123)
        for src, dst, n in [(0, 1, 8), (3, 2, 1024), (1, 1, 0)]:
            assert jittered.send_overhead(src, dst, n) == plain.send_overhead(src, dst, n)
            assert jittered.recv_overhead(dst, src, n) == plain.recv_overhead(dst, src, n)
            assert jittered.transit_time(src, dst, n) == plain.transit_time(src, dst, n)

    def test_same_seed_same_costs_across_instances(self):
        a = self._model(jitter_seed=7, latency_jitter=0.3, overhead_jitter=0.2)
        b = self._model(jitter_seed=7, latency_jitter=0.3, overhead_jitter=0.2)
        seq_a = [a.transit_time(0, 1, 64) for _ in range(5)]
        seq_b = [b.transit_time(0, 1, 64) for _ in range(5)]
        assert seq_a == seq_b

    def test_occurrences_and_seeds_perturb_costs(self):
        m = self._model(jitter_seed=7, latency_jitter=0.3)
        # Repeated messages on one edge see different perturbations...
        assert len({m.transit_time(0, 1, 64) for _ in range(4)}) > 1
        # ...and a different seed gives a different first perturbation.
        other = self._model(jitter_seed=8, latency_jitter=0.3)
        assert m.transit_time(2, 3, 64) != other.transit_time(2, 3, 64)

    def test_amplitude_bounds_validated(self):
        with pytest.raises(ValueError):
            self._model(latency_jitter=1.5)
        with pytest.raises(ValueError):
            self._model(overhead_jitter=-0.1)

    def test_jitter_spec_cost_model(self):
        assert JitterSpec().cost_model() is None
        model = JitterSpec(seed=3, latency=0.2).cost_model()
        assert isinstance(model, JitteredCostModel)
        assert model.jitter_seed == 3


# ---------------------------------------------------------------------------
# Corpus sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_same_seed_same_corpus(self):
        a = sample_configs(RING_SCENARIO, 20, seed=4)
        b = sample_configs(RING_SCENARIO, 20, seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = sample_configs(RING_SCENARIO, 20, seed=4)
        b = sample_configs(RING_SCENARIO, 20, seed=5)
        assert a != b

    def test_kill_bounds_and_root_spared(self):
        configs = sample_configs(
            RING_SCENARIO, 30, seed=0, min_kills=1, max_kills=2
        )
        for c in configs:
            assert 1 <= len(c.faults) <= 2
            # The paper's root-survives assumption: rank 0 never killed
            # unless the scenario is explicitly root-failure tolerant.
            assert all(spec.rank != 0 for spec in c.faults)

    def test_rootft_scenario_may_kill_root(self):
        rootft = RingScenario(nprocs=4, iters=3, rootft=True)
        configs = sample_configs(rootft, 40, seed=0, min_kills=1, max_kills=1)
        assert any(spec.rank == 0 for c in configs for spec in c.faults)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            sample_configs(RING_SCENARIO, -1, seed=0)
        with pytest.raises(ValueError):
            sample_configs(RING_SCENARIO, 5, seed=0, min_kills=3, max_kills=1)


# ---------------------------------------------------------------------------
# Campaign determinism (the tentpole property)
# ---------------------------------------------------------------------------


class TestFuzzDeterminism:
    def test_same_seed_identical_report_and_digests(self):
        a = fuzz(RING_SCENARIO, runs=12, seed=3, min_kills=1, max_kills=2)
        b = fuzz(RING_SCENARIO, runs=12, seed=3, min_kills=1, max_kills=2)
        assert a.format(verbose=True) == b.format(verbose=True)
        assert [o.digest for o in a.outcomes] == [o.digest for o in b.outcomes]
        assert [o.perf for o in a.outcomes] == [o.perf for o in b.outcomes]

    def test_serial_and_pooled_batches_merge_identically(self):
        serial = fuzz(RING_SCENARIO, runs=10, seed=5, min_kills=1, max_kills=2)
        pooled = fuzz(
            RING_SCENARIO, runs=10, seed=5, min_kills=1, max_kills=2,
            runner=ProcessPoolRunner(workers=2),
        )
        assert serial.format(verbose=True) == pooled.format(verbose=True)
        assert [o.digest for o in serial.outcomes] == [
            o.digest for o in pooled.outcomes
        ]
        assert [o.perf for o in serial.outcomes] == [
            o.perf for o in pooled.outcomes
        ]

    def test_digest_excludes_wall_clock(self):
        # Two runs of the same config can differ in host wall time but
        # must share a digest; perf dicts must not carry wall_s at all.
        config = FuzzConfig(RING_SCENARIO, policy="random", policy_seed=9)
        ra, rb = config.run(), config.run()
        assert result_digest(ra) == result_digest(rb)
        outcome = FuzzJob(config)()
        assert "wall_s" not in outcome.perf
        assert outcome.perf  # counters did come along

    def test_marker_ring_survives_fuzzing(self):
        report = fuzz(RING_SCENARIO, runs=15, seed=0, min_kills=1, max_kills=2)
        assert not report.failures, report.format()

    def test_fuzz_finds_the_naive_hang(self):
        report = fuzz(NAIVE, runs=15, seed=1, min_kills=1, max_kills=2)
        assert report.failures
        assert any(o.hung for o in report.failures)
        # Every failure was shrunk, and each shrunk config still fails
        # with at most the faults it started with.
        assert len(report.shrunk) == len(report.failures)
        for outcome, sr in zip(report.failures, report.shrunk):
            assert sr.violations
            assert len(sr.config.faults) <= len(outcome.config.faults)


class TestAppFuzzing:
    @pytest.mark.parametrize(
        "app", ["heat1d", "ring_allreduce", "abft_matvec", "manager_worker"]
    )
    def test_apps_survive_a_small_fuzz(self, app):
        scenario = AppScenario(app=app, nprocs=4, size=4, steps=3)
        report = fuzz(scenario, runs=6, seed=2, max_kills=1)
        assert not report.failures, report.format()

    @pytest.mark.slow
    def test_apps_survive_a_deep_fuzz(self):
        for app in ("heat1d", "ring_allreduce", "abft_matvec",
                    "manager_worker"):
            scenario = AppScenario(app=app, nprocs=4, size=4, steps=3)
            report = fuzz(scenario, runs=40, seed=2, max_kills=2)
            assert not report.failures, report.format()


@pytest.mark.slow
class TestDeepRingFuzz:
    """The CI smoke corpus, kept green: seed 1, 100 runs, marker ring."""

    def test_smoke_corpus_passes_and_is_deterministic(self):
        a = fuzz(RING_SCENARIO, runs=100, seed=1, min_kills=0, max_kills=2)
        b = fuzz(RING_SCENARIO, runs=100, seed=1, min_kills=0, max_kills=2)
        assert not a.failures, a.format()
        assert a.format(verbose=True) == b.format(verbose=True)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


class TestShrink:
    def test_naive_failure_shrinks_to_minimal_config(self):
        report = fuzz(NAIVE, runs=20, seed=1, min_kills=1, max_kills=2,
                      shrink_failures=False)
        assert report.failures
        sr = shrink(report.failures[0].config)
        assert sr.violations
        # One fault suffices for the Fig. 6 hang, and neither a seeded
        # policy nor jitter is needed once it is pinned.
        assert len(sr.config.faults) == 1
        assert sr.config.policy == "rr"
        assert sr.config.jitter.is_zero

    def test_shrinking_a_passing_config_is_an_error(self):
        with pytest.raises(ValueError):
            shrink(FuzzConfig(RING_SCENARIO))

    def test_shrunk_config_still_replays_its_violation(self):
        report = fuzz(NAIVE, runs=20, seed=1, min_kills=1, max_kills=2)
        sr = report.shrunk[0]
        rep = replay(sr.config)
        assert rep.outcome.failed
        assert list(rep.outcome.violations) == list(sr.violations)


# ---------------------------------------------------------------------------
# Reproducer files and replay
# ---------------------------------------------------------------------------


class TestReproFiles:
    def test_config_dict_round_trip(self):
        for config in sample_configs(NAIVE, 10, seed=3, min_kills=1):
            assert FuzzConfig.from_dict(config.to_dict()) == config
        app = FuzzConfig(AppScenario(app="heat1d", nprocs=4))
        assert FuzzConfig.from_dict(app.to_dict()) == app

    def test_write_then_replay_is_byte_identical(self, tmp_path):
        report = fuzz(NAIVE, runs=20, seed=1, min_kills=1, max_kills=2)
        path = tmp_path / "fail.repro.json"
        write_repro(report.shrunk[0].config, path)
        rep = replay(path)
        assert rep.ok, rep.format()
        assert rep.expect["digest"] == rep.outcome.digest

    def test_replay_detects_divergence(self, tmp_path):
        report = fuzz(NAIVE, runs=20, seed=1, min_kills=1, max_kills=2)
        path = tmp_path / "fail.repro.json"
        write_repro(report.shrunk[0].config, path)
        doc = json.loads(path.read_text())
        doc["expect"]["digest"] = "0" * 32
        path.write_text(json.dumps(doc))
        rep = replay(path)
        assert not rep.ok
        assert any("digest" in m for m in rep.mismatches)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.repro.json"
        doc = FuzzConfig(RING_SCENARIO).to_dict()
        doc["format"] = "repro.fuzz/99"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_repro(path)

    def test_scenario_registry_rejects_unknown_kind(self):
        from repro.fuzz import scenario_from_dict, scenario_to_dict

        with pytest.raises(ValueError):
            scenario_from_dict({"kind": "nonesuch"})
        with pytest.raises(TypeError):
            scenario_to_dict(object())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFuzzCli:
    def test_fuzz_command_is_deterministic(self, capsys):
        from repro.cli import main

        argv = ["fuzz", "--runs", "10", "--seed", "3",
                "--min-kills", "1", "--max-kills", "2"]
        rc_a = main(argv)
        out_a = capsys.readouterr().out
        rc_b = main(argv)
        out_b = capsys.readouterr().out
        assert rc_a == rc_b == 0
        assert out_a == out_b

    def test_fuzz_command_writes_and_replays_repros(self, capsys, tmp_path):
        from repro.cli import main

        rc = main(["fuzz", "--runs", "10", "--seed", "1",
                   "--variant", "naive", "--min-kills", "1",
                   "--out-dir", str(tmp_path)])
        capsys.readouterr()
        assert rc == 1
        repros = sorted(tmp_path.glob("*.repro.json"))
        assert repros
        rc = main(["replay", "--perf", str(repros[0])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replay matches recorded expectation" in out
        assert "handoffs" in out  # perf counters attached

    def test_fuzz_command_on_an_app(self, capsys):
        from repro.cli import main

        rc = main(["fuzz", "--scenario", "heat1d", "--nprocs", "4",
                   "--size", "4", "--steps", "3", "--runs", "5",
                   "--seed", "2", "--max-kills", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failure(s)" in out
