"""Pipeline span tracing: recorder mechanics, the ``repro.spans/1``
stream contract, canonical serial==pooled==remote identity, the
Perfetto export, and the zero-perturbation guarantee (digests, cache
keys, and report stdout are byte-identical spans-on vs spans-off).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cache import RunCache
from repro.faults import run_campaign
from repro.obs.export import perfetto_errors
from repro.obs.spans import (
    CANONICAL_CATEGORIES,
    SPANS_FORMAT,
    SPAN_VOLATILE_KEYS,
    SpanRecorder,
    active,
    canonical_spans,
    dumps_spans,
    read_spans,
    recording,
    span_errors,
    spans_to_perfetto,
    spans_to_records,
    write_spans,
)
from repro.parallel import ProcessPoolRunner, RemoteRunner, WorkerServer
from tests.conftest import (
    RING_INVARIANTS as INVARIANTS,
    RING_SCENARIO as SCENARIO,
)


@pytest.fixture
def worker_addr():
    server = WorkerServer(("127.0.0.1", 0))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield server.address
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _campaign(runner=None, **kw):
    return run_campaign(
        SCENARIO,
        seeds=range(6),
        horizon=8e-6,
        invariants=INVARIANTS,
        runner=runner,
        **kw,
    )


def _recorded_campaign(runner=None, **kw):
    recorder = SpanRecorder(kind="campaign")
    with recording(recorder):
        report = _campaign(runner=runner, **kw)
    return report, recorder


# ---------------------------------------------------------------------------
# Recorder mechanics
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_begin_end_nesting_and_ids(self):
        t = [0.0]
        rec = SpanRecorder(clock=lambda: t[0])
        outer = rec.begin("outer", "sweep")
        t[0] = 1.0
        inner = rec.begin("inner", "round", parent=outer.id)
        t[0] = 3.0
        rec.end(inner)
        rec.end(outer)
        assert (outer.id, inner.id) == (1, 2)
        assert inner.parent == outer.id
        assert inner.t == 1.0 and inner.dur == 2.0
        assert outer.t == 0.0 and outer.dur == 3.0

    def test_event_has_zero_duration(self):
        rec = SpanRecorder()
        ev = rec.event("frame.send", "net", attrs={"bytes": 7})
        assert ev.dur == 0.0
        assert ev.attrs == {"bytes": 7}

    def test_span_contextmanager_closes_on_error(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("x", "sweep"):
                raise RuntimeError("boom")
        assert rec.spans[0].dur >= 0.0

    def test_chunk_lifecycle_and_flow(self):
        rec = SpanRecorder()
        dispatch = rec.chunk_begin(4, 2)
        assert dispatch.attrs == {"start": 4, "jobs": 2, "flow": 1}
        raw = [
            {"id": 1, "parent": None, "name": "chunk.exec", "cat": "exec",
             "t": 0.0, "dur": 0.5, "attrs": {"jobs": 2}},
            {"id": 2, "parent": 1, "name": "job", "cat": "job",
             "t": 0.1, "dur": 0.2, "attrs": {"index": 4, "outcome": "ok"}},
        ]
        rec.chunk_absorb(4, raw, track="worker:a")
        closed = rec.chunk_end(4, "done")
        assert closed is dispatch and dispatch.attrs["status"] == "done"
        rec.chunk_merge(dispatch)
        exec_span = next(s for s in rec.spans if s.cat == "exec")
        job_span = next(s for s in rec.spans if s.cat == "job")
        merge = next(s for s in rec.spans if s.cat == "merge")
        # Ids remapped into this recorder's sequence, parents rewired,
        # times re-anchored at the dispatch, flow id propagated.
        assert exec_span.parent == dispatch.id
        assert job_span.parent == exec_span.id
        assert exec_span.t == pytest.approx(dispatch.t)
        assert exec_span.attrs["flow"] == 1
        assert merge.attrs == {"start": 4, "flow": 1}
        assert exec_span.track == job_span.track == "worker:a"

    def test_chunk_end_without_dispatch_returns_none(self):
        assert SpanRecorder().chunk_end(0, "lost") is None

    def test_retried_chunk_gets_fresh_flow_id(self):
        rec = SpanRecorder()
        first = rec.chunk_begin(0, 1)
        rec.chunk_end(0, "lost")
        second = rec.chunk_begin(0, 1)
        assert second.attrs["flow"] != first.attrs["flow"]

    def test_active_is_thread_local(self):
        rec = SpanRecorder()
        seen = []
        with recording(rec):
            thread = threading.Thread(target=lambda: seen.append(active()))
            thread.start()
            thread.join()
            assert active() is rec
        assert seen == [None]
        assert active() is None


# ---------------------------------------------------------------------------
# repro.spans/1 stream contract
# ---------------------------------------------------------------------------


def _valid_records():
    rec = SpanRecorder(kind="campaign")
    with rec.span("sweep.run", "sweep") as root:
        rec.begin("job", "job", parent=root.id,
                  attrs={"index": 0, "outcome": "ok"})
    return spans_to_records(rec)


class TestStreamContract:
    def test_roundtrip_and_validator(self, tmp_path):
        rec = SpanRecorder(kind="campaign")
        with rec.span("sweep.run", "sweep"):
            pass
        path = tmp_path / "spans.jsonl"
        write_spans(path, rec)
        records = read_spans(path)
        assert records[0] == {
            "format": SPANS_FORMAT, "kind": "campaign", "spans": 1
        }
        assert span_errors(path) == []
        assert dumps_spans(records) == path.read_text()

    @pytest.mark.parametrize(
        "mutate, expect",
        [
            (lambda r: r[0].update(format="nope"), "format"),
            (lambda r: r[0].update(spans=99), "declares"),
            (lambda r: r[1].update(cat="mystery"), "unknown category"),
            (lambda r: r[1].update(id=r[2]["id"]), "duplicate id"),
            (lambda r: r[2].update(parent=777), "not in stream"),
            (lambda r: r[2]["attrs"].pop("index"), "attrs.index"),
            (lambda r: r[2]["attrs"].update(outcome="confused"), "outcome"),
            (lambda r: r[1].update(t=-1.0), ">= 0"),
            (lambda r: r[1].pop("track"), "missing keys"),
            (lambda r: r[1].update(bonus=1), "unknown keys"),
        ],
    )
    def test_corruptions_detected(self, mutate, expect):
        records = _valid_records()
        assert span_errors(records) == []
        mutate(records)
        assert any(expect in e for e in span_errors(records)), (
            expect, span_errors(records)
        )

    def test_canonical_keeps_only_job_spans_without_volatiles(self):
        lines = canonical_spans(_valid_records())
        assert lines == [
            '{"attrs":{"index":0,"outcome":"ok"},"cat":"job","name":"job"}'
        ]
        for line in lines:
            assert not SPAN_VOLATILE_KEYS & json.loads(line).keys()
        assert CANONICAL_CATEGORIES == {"job"}


# ---------------------------------------------------------------------------
# Canonical identity + validity across every transport
# ---------------------------------------------------------------------------


class TestTransportIdentity:
    def test_serial_pooled_remote_canonicalize_identically(self, worker_addr):
        serial, serial_rec = _recorded_campaign()
        pooled, pooled_rec = _recorded_campaign(
            runner=ProcessPoolRunner(workers=2)
        )
        remote, remote_rec = _recorded_campaign(
            runner=RemoteRunner(addresses=[worker_addr])
        )
        assert serial.format() == pooled.format() == remote.format()
        for rec in (serial_rec, pooled_rec, remote_rec):
            assert span_errors(rec) == []
        canon = canonical_spans(serial_rec)
        assert len(canon) == 6  # exactly one job span per run
        assert canonical_spans(pooled_rec) == canon
        assert canonical_spans(remote_rec) == canon

    def test_streamed_runs_carry_global_indices(self, worker_addr):
        _, materialized = _recorded_campaign(
            runner=RemoteRunner(addresses=[worker_addr], chunk_size=2)
        )
        _, streamed = _recorded_campaign(
            runner=RemoteRunner(addresses=[worker_addr], chunk_size=2),
            stream=True,
            stream_window=2,
        )
        assert span_errors(streamed) == []
        assert canonical_spans(streamed) == canonical_spans(materialized)

    def test_remote_spans_cover_the_whole_pipeline(self, worker_addr):
        _, rec = _recorded_campaign(
            runner=RemoteRunner(addresses=[worker_addr], chunk_size=2)
        )
        cats = {s.cat for s in rec.spans}
        assert {"sweep", "round", "chunk", "exec", "job", "merge",
                "net"} <= cats
        worker_tracks = {
            s.track for s in rec.spans if s.cat in ("exec", "job")
        }
        assert worker_tracks == {
            f"worker:{worker_addr[0]}:{worker_addr[1]}"
        }


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


class TestPerfettoExport:
    def test_remote_doc_validates_with_worker_tracks_and_flows(
        self, worker_addr
    ):
        _, rec = _recorded_campaign(
            runner=RemoteRunner(addresses=[worker_addr], chunk_size=2)
        )
        doc = spans_to_perfetto(rec)
        assert perfetto_errors(doc) == []
        events = doc["traceEvents"]
        tracks = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "sweep" in tracks
        assert f"worker:{worker_addr[0]}:{worker_addr[1]}" in tracks
        # Complete chunk->exec->merge arrows for every completed chunk.
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 3  # ceil(6 runs / 2)
        assert all(e["pid"] == 1 for e in events)

    def test_lost_dispatch_emits_no_dangling_arrows(self):
        rec = SpanRecorder()
        rec.chunk_begin(0, 1)
        rec.chunk_end(0, "lost")
        doc = spans_to_perfetto(rec)
        assert perfetto_errors(doc) == []
        assert not [e for e in doc["traceEvents"] if e["ph"] in "stf"]


# ---------------------------------------------------------------------------
# Zero perturbation: spans must never change what a sweep produces
# ---------------------------------------------------------------------------


class TestNonPerturbation:
    def test_report_and_digests_identical_spans_on_vs_off(self):
        plain = _campaign()
        recorded, rec = _recorded_campaign()
        assert rec.spans  # actually recorded something
        assert plain.format() == recorded.format()
        assert [r.result for r in plain.runs] == [
            r.result for r in recorded.runs
        ]

    def test_cache_keys_unchanged_and_batches_traced(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _campaign(cache=RunCache(cache_dir))
        warm, rec = _recorded_campaign(cache=RunCache(cache_dir))
        # Same keys: the spans-on run is served entirely from the
        # spans-off run's entries.
        cache_spans = [s for s in rec.spans if s.cat == "cache"]
        gets = [s for s in cache_spans if s.name == "cache.get_many"]
        assert gets and sum(s.attrs["hits"] for s in gets) == 6
        assert not [s for s in cache_spans if s.name == "cache.put_many"]
        assert warm.format() == _campaign().format()

    def test_cli_stdout_identical_and_spans_written(self, tmp_path, capsys):
        from repro.cli import main

        base = ["campaign", "--nprocs", "4", "--iters", "3",
                "--runs", "5", "--horizon", "8e-6"]
        assert main(base) == 0
        plain_out = capsys.readouterr().out
        spans_path = tmp_path / "spans.jsonl"
        assert main(base + ["--spans", str(spans_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain_out
        assert f"[spans] wrote {spans_path}" in captured.err
        assert span_errors(spans_path) == []
        assert len(canonical_spans(spans_path)) == 5

    def test_spans_cli_validate_canon_and_perfetto(self, tmp_path, capsys):
        from repro.cli import main

        _, rec = _recorded_campaign()
        path = tmp_path / "spans.jsonl"
        write_spans(path, rec)
        assert main(["spans", str(path), "--validate"]) == 0
        assert "valid" in capsys.readouterr().err
        assert main(["spans", str(path), "--canon"]) == 0
        canon_out = capsys.readouterr().out
        assert canon_out.splitlines() == canonical_spans(path)
        out_doc = tmp_path / "spans.perfetto.json"
        assert main(["spans", str(path), "--format", "perfetto",
                     "-o", str(out_doc)]) == 0
        capsys.readouterr()
        assert perfetto_errors(json.loads(out_doc.read_text())) == []

    def test_spans_cli_flags_invalid_stream(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format":"nope"}\n')
        assert main(["spans", str(bad), "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().err
