"""Domain applications: heat diffusion, ring allreduce, manager/worker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    AllreduceConfig,
    FarmConfig,
    HeatConfig,
    expected_results,
    expected_sum,
    make_allreduce_main,
    make_farm_mains,
    make_heat_main,
)
from repro.faults import KillAtProbe, KillAtTime
from tests.conftest import run_sim


class TestHeatFailureFree:
    def test_heat_spreads_from_center(self):
        cfg = HeatConfig(cells_per_rank=8, steps=15)
        r = run_sim(make_heat_main(cfg), 4)
        fields = [np.array(r.value(i)["field"]) for i in range(4)]
        full = np.concatenate(fields)
        # The bump diffused: peak decreased, tails rose, heat conserved
        # up to the (tiny) boundary loss at this scale.
        assert full.max() < 1.0
        assert full.sum() == pytest.approx(2.0, abs=1e-3)
        # Symmetric around the center.
        assert np.allclose(full, full[::-1], atol=1e-12)

    def test_zero_retries_without_failures(self):
        cfg = HeatConfig(cells_per_rank=4, steps=5)
        r = run_sim(make_heat_main(cfg), 3)
        assert all(r.value(i)["halo_retries"] == 0 for i in range(3))

    def test_matches_serial_reference(self):
        cfg = HeatConfig(cells_per_rank=6, steps=12, nu=0.2)
        r = run_sim(make_heat_main(cfg), 4)
        parallel = np.concatenate(
            [np.array(r.value(i)["field"]) for i in range(4)]
        )
        # Serial reference of the same update rule.
        n = 24
        u = np.zeros(n)
        u[n // 2] = 1.0
        u[(n - 1) // 2] = 1.0
        for _ in range(cfg.steps):
            padded = np.concatenate([[cfg.boundary], u, [cfg.boundary]])
            u = padded[1:-1] + cfg.nu * (
                padded[:-2] - 2 * padded[1:-1] + padded[2:]
            )
        assert np.allclose(parallel, u, atol=1e-12)


class TestHeatWithFailures:
    def test_survivors_run_through(self):
        cfg = HeatConfig(cells_per_rank=8, steps=12)
        r = run_sim(
            make_heat_main(cfg), 4,
            kills=[(2, 5.5e-6)], on_deadlock="return",
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 1, 3}

    def test_mid_exchange_death_triggers_retry(self):
        # The victim dies right after posting its halos; with a lagging
        # detector its neighbors only learn of the death while blocked in
        # the exchange and must take the retry path.
        cfg = HeatConfig(cells_per_rank=8, steps=10)
        r = run_sim(
            make_heat_main(cfg), 4,
            injectors=[KillAtProbe(rank=2, probe="halos_posted", hit=4)],
            on_deadlock="return", detection_latency=5e-7,
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 1, 3}
        assert any(r.value(i)["halo_retries"] > 0 for i in (1, 3))

    def test_edge_rank_death(self):
        cfg = HeatConfig(cells_per_rank=8, steps=12)
        r = run_sim(
            make_heat_main(cfg), 4,
            kills=[(0, 5.5e-6)], on_deadlock="return",
        )
        assert not r.hung
        assert set(r.completed_ranks) == {1, 2, 3}

    def test_probe_window_death_mid_step(self):
        cfg = HeatConfig(cells_per_rank=8, steps=10)
        r = run_sim(
            make_heat_main(cfg), 5,
            injectors=[KillAtProbe(rank=2, probe="step_top", hit=4)],
            on_deadlock="return",
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 1, 3, 4}

    def test_remaining_field_stays_finite_and_positive(self):
        cfg = HeatConfig(cells_per_rank=8, steps=15)
        r = run_sim(
            make_heat_main(cfg), 4,
            kills=[(1, 4.2e-6)], on_deadlock="return",
        )
        for i in r.completed_ranks:
            f = np.array(r.value(i)["field"])
            assert np.all(np.isfinite(f))
            assert np.all(f >= -1e-12)

    def test_two_deaths(self):
        cfg = HeatConfig(cells_per_rank=6, steps=12)
        r = run_sim(
            make_heat_main(cfg), 6,
            kills=[(2, 3.1e-6), (4, 7.3e-6)], on_deadlock="return",
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 1, 3, 5}

    def test_regression_cascading_deaths_drift_beyond_one_step(self):
        # Regression: ranks 2 then 1 die in sequence, leaving ranks 0 and
        # 3 as neighbors more than one step apart.  An earlier exchange
        # implementation deadlocked here because a stashed future halo
        # did not mark intermediate steps as insulated (found by the
        # randomized fault campaign; params replay that exact run).
        cfg = HeatConfig(cells_per_rank=4, steps=10)
        r = run_sim(
            make_heat_main(cfg), 4, seed=7, policy="random",
            kills=[(2, 5.1463146710153945e-06), (1, 7.659063818870926e-06)],
            on_deadlock="return",
        )
        assert not r.hung
        assert set(r.completed_ranks) == {0, 3}


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_failure_free_sums_everyone(self, n):
        cfg = AllreduceConfig(vector_len=4)
        r = run_sim(make_allreduce_main(cfg), n)
        expect = expected_sum(list(range(n)), 4)
        for i in range(n):
            rec = r.value(i)["allreduce"][0]
            assert rec["sum"] == expect
            assert rec["contributors"] == list(range(n))

    def test_multiple_rounds(self):
        cfg = AllreduceConfig(vector_len=3, rounds=3)
        r = run_sim(make_allreduce_main(cfg), 4)
        recs = r.value(2)["allreduce"]
        assert [x["round"] for x in recs] == [0, 1, 2]
        assert all(x["sum"] == expected_sum([0, 1, 2, 3], 3) for x in recs)

    def test_victim_before_contributing_is_excluded(self):
        cfg = AllreduceConfig(vector_len=4)
        r = run_sim(
            make_allreduce_main(cfg), 5,
            injectors=[KillAtProbe(rank=3, probe="post_recv", hit=1)],
            on_deadlock="return",
        )
        assert not r.hung
        rec = r.value(0)["allreduce"][0]
        assert rec["contributors"] == [0, 1, 2, 4]
        assert rec["sum"] == expected_sum([0, 1, 2, 4], 4)

    def test_survivors_agree_on_result(self):
        cfg = AllreduceConfig(vector_len=4, rounds=2)
        r = run_sim(
            make_allreduce_main(cfg), 6,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
            on_deadlock="return",
        )
        assert not r.hung
        sums = {tuple(r.value(i)["allreduce"][-1]["sum"])
                for i in r.completed_ranks}
        assert len(sums) == 1

    def test_contribution_never_double_counted(self):
        # Resends could re-deliver phase-1 buffers; the contributor-set
        # guard must keep each rank's vector counted exactly once.
        cfg = AllreduceConfig(vector_len=2)
        r = run_sim(
            make_allreduce_main(cfg), 5,
            injectors=[KillAtProbe(rank=2, probe="post_send", hit=1)],
            on_deadlock="return", detection_latency=2e-6,
        )
        assert not r.hung
        rec = r.value(0)["allreduce"][0]
        assert rec["sum"] == expected_sum(rec["contributors"], 2)


class TestManagerWorker:
    def test_failure_free_full_results(self):
        cfg = FarmConfig(num_tasks=15)
        r = run_sim(make_farm_mains(cfg, 4), 4)
        assert r.value(0)["results"] == expected_results(cfg)
        total_done = sum(r.value(i)["tasks_done"] for i in range(1, 4))
        assert total_done == 15

    def test_worker_death_mid_task_reassigned(self):
        cfg = FarmConfig(num_tasks=12)
        r = run_sim(
            make_farm_mains(cfg, 4), 4,
            injectors=[KillAtProbe(rank=2, probe="task_begin", hit=3)],
            on_deadlock="return",
        )
        assert not r.hung
        rep = r.value(0)
        assert rep["results"] == expected_results(cfg)
        assert rep["reassignments"] >= 1
        assert rep["dead_workers"] == [2]

    def test_worker_death_after_reporting_not_reassigned_twice(self):
        cfg = FarmConfig(num_tasks=8)
        r = run_sim(
            make_farm_mains(cfg, 3), 3,
            injectors=[KillAtProbe(rank=1, probe="task_reported", hit=2)],
            on_deadlock="return",
        )
        assert not r.hung
        assert r.value(0)["results"] == expected_results(cfg)

    def test_two_workers_die(self):
        cfg = FarmConfig(num_tasks=10)
        r = run_sim(
            make_farm_mains(cfg, 5), 5,
            injectors=[
                KillAtProbe(rank=1, probe="task_begin", hit=2),
                KillAtProbe(rank=3, probe="task_computed", hit=1),
            ],
            on_deadlock="return",
        )
        assert not r.hung
        rep = r.value(0)
        assert rep["results"] == expected_results(cfg)
        assert set(rep["dead_workers"]) == {1, 3}

    def test_all_workers_die_aborts(self):
        cfg = FarmConfig(num_tasks=20, work_per_task=1e-6)
        r = run_sim(
            make_farm_mains(cfg, 3), 3,
            injectors=[
                KillAtProbe(rank=1, probe="task_begin", hit=1),
                KillAtProbe(rank=2, probe="task_begin", hit=1),
            ],
            on_deadlock="return",
        )
        assert r.aborted is not None

    def test_single_worker_carries_farm(self):
        cfg = FarmConfig(num_tasks=9)
        r = run_sim(
            make_farm_mains(cfg, 3), 3,
            injectors=[KillAtProbe(rank=1, probe="task_begin", hit=1)],
            on_deadlock="return",
        )
        assert not r.hung
        assert r.value(0)["results"] == expected_results(cfg)
        assert r.value(2)["tasks_done"] >= 8
