"""Unit tests for the event queue and virtual clock."""

from __future__ import annotations

import pytest

from repro.simmpi.clock import Event, EventQueue, VirtualClock


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        while q:
            q.pop().fn()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(1.0, lambda i=i: fired.append(i))
        while q:
            q.pop().fn()
        assert fired == list(range(10))

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.schedule(1.0, lambda: None)
        assert q
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, lambda: fired.append("x"))
        q.schedule(2.0, lambda: fired.append("y"))
        ev.cancel()
        q.note_cancelled()
        first = q.pop()
        first.fn()
        assert fired == ["y"]
        assert not q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(5.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(4.0, lambda: None)
        ev.cancel()
        q.note_cancelled()
        assert q.peek_time() == 4.0

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(float("nan"), lambda: None)

    def test_events_compare_by_time_then_seq(self):
        a = Event(time=1.0, seq=0, fn=lambda: None)
        b = Event(time=1.0, seq=1, fn=lambda: None)
        c = Event(time=0.5, seq=2, fn=lambda: None)
        assert c < a < b


class TestEventQueueCancellation:
    """Edge cases of the cancel-in-heap accounting.

    Cancelled events stay in the heap as tombstones; the live count and
    ``cancelled_total`` must stay exact through every interleaving of
    cancel and pop, or ``while queue:`` loops spin or exit early.
    """

    def test_cancel_then_pop_skips_without_miscounting(self):
        q = EventQueue()
        evs = [q.schedule(float(i), lambda: None) for i in range(6)]
        for ev in evs[::2]:  # cancel the head and every other event
            ev.cancel()
        assert len(q) == 3
        popped = [q.pop() for _ in range(3)]
        assert [e.time for e in popped] == [1.0, 3.0, 5.0]
        assert len(q) == 0 and not q
        with pytest.raises(IndexError):
            q.pop()

    def test_len_and_bool_track_cancellations(self):
        q = EventQueue()
        evs = [q.schedule(1.0, lambda: None) for _ in range(4)]
        assert len(q) == 4
        evs[0].cancel()
        evs[3].cancel()
        assert len(q) == 2 and q
        evs[1].cancel()
        evs[2].cancel()
        assert len(q) == 0 and not q  # only tombstones left in the heap
        with pytest.raises(IndexError):
            q.pop()

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        for _ in range(3):
            ev.cancel()
        assert len(q) == 1
        assert q.cancelled_total == 1

    def test_cancel_after_pop_does_not_corrupt_live_count(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert q.pop() is ev
        ev.cancel()  # too late: already executed/popped
        assert len(q) == 1  # the remaining event is still live
        assert q.cancelled_total == 0  # not counted as a queue cancellation
        assert q.pop().time == 2.0

    def test_cancelled_total_accumulates_across_refills(self):
        q = EventQueue()
        for round_no in range(3):
            evs = [q.schedule(float(i), lambda: None) for i in range(4)]
            evs[0].cancel()
            evs[2].cancel()
            while q:
                q.pop()
            assert q.cancelled_total == 2 * (round_no + 1)

    def test_peek_time_after_mass_cancellation(self):
        q = EventQueue()
        evs = [q.schedule(float(i), lambda: None) for i in range(5)]
        for ev in evs[:4]:
            ev.cancel()
        assert q.peek_time() == 4.0
        evs[4].cancel()
        assert q.peek_time() is None

    def test_schedule_rejects_nan_but_allows_inf(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(float("nan"), lambda: None)
        assert len(q) == 0  # the rejected event was never queued
        q.schedule(float("inf"), lambda: None)
        q.schedule(1.0, lambda: None)
        assert q.pop().time == 1.0
        assert q.pop().time == float("inf")


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advances_forward(self):
        c = VirtualClock()
        c.advance_to(3.5)
        assert c.now == 3.5

    def test_never_goes_backwards(self):
        c = VirtualClock()
        c.advance_to(2.0)
        c.advance_to(1.0)
        assert c.now == 2.0
