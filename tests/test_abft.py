"""ABFT matrix–vector products with parity recovery (paper §IV lineage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import AbftConfig, make_abft_main, reference_result
from repro.faults import KillAtProbe
from tests.conftest import run_sim

N = 5  # 4 compute ranks + 1 parity rank
CFG = AbftConfig(iterations=4)


def blocks_match_reference(report, cfg, nprocs, iteration) -> bool:
    ref = reference_result(cfg, nprocs, iteration)
    got = report["results"][iteration]["blocks"]
    return all(k in got and np.allclose(got[k], ref[k]) for k in ref)


class TestFailureFree:
    def test_every_iteration_exact(self):
        r = run_sim(make_abft_main(CFG), N)
        for rank in range(N):
            rep = r.value(rank)
            for it in range(CFG.iterations):
                assert blocks_match_reference(rep, CFG, N, it)
            assert rep["recoveries"] == 0
            assert not rep["degraded"]

    def test_roles(self):
        r = run_sim(make_abft_main(CFG), N)
        assert r.value(N - 1)["role"] == "parity"
        assert all(r.value(i)["role"] == "compute" for i in range(N - 1))

    def test_parity_identity_holds(self):
        # y_P == sum of compute blocks, by construction of the encoding.
        r = run_sim(make_abft_main(CFG), N)
        rep = r.value(0)
        for it in range(CFG.iterations):
            ref = reference_result(CFG, N, it)
            total = np.sum([np.array(v) for v in ref.values()], axis=0)
            # Recompute what the parity rank would produce.
            from repro.apps.abft_matvec import _block, _x

            parity = sum(_block(rk, CFG) for rk in range(N - 1)) @ _x(it, CFG)
            assert np.allclose(parity, total)


class TestSingleFailureRecovery:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_lost_block_recovered_exactly(self, victim):
        r = run_sim(
            make_abft_main(CFG), N,
            injectors=[KillAtProbe(rank=victim, probe="computed", hit=3)],
            on_deadlock="return",
        )
        assert not r.hung
        for rank in r.completed_ranks:
            rep = r.value(rank)
            assert not rep["degraded"]
            for it in range(CFG.iterations):
                assert blocks_match_reference(rep, CFG, N, it), (victim, it)

    def test_recovery_marked_in_results(self):
        r = run_sim(
            make_abft_main(CFG), N,
            injectors=[KillAtProbe(rank=2, probe="computed", hit=3)],
            on_deadlock="return",
        )
        rep = r.value(0)
        assert rep["results"][1]["recovered"] == []
        assert rep["results"][2]["recovered"] == [2]
        assert rep["results"][3]["recovered"] == [2]
        assert rep["recoveries"] == 2

    def test_death_between_iterations(self):
        r = run_sim(
            make_abft_main(CFG), N,
            injectors=[KillAtProbe(rank=1, probe="iter_done", hit=2)],
            on_deadlock="return",
        )
        assert not r.hung
        rep = r.value(3)
        for it in range(CFG.iterations):
            assert blocks_match_reference(rep, CFG, N, it)


class TestBeyondCodeStrength:
    def test_two_compute_deaths_degrade(self):
        r = run_sim(
            make_abft_main(CFG), N,
            injectors=[
                KillAtProbe(rank=1, probe="computed", hit=2),
                KillAtProbe(rank=2, probe="computed", hit=2),
            ],
            on_deadlock="return",
        )
        assert not r.hung
        rep = r.value(0)
        assert rep["degraded"]  # one parity cannot rebuild two blocks

    def test_parity_death_disables_recovery_of_later_failure(self):
        r = run_sim(
            make_abft_main(CFG), N,
            injectors=[
                KillAtProbe(rank=N - 1, probe="computed", hit=2),
                KillAtProbe(rank=1, probe="computed", hit=3),
            ],
            on_deadlock="return",
        )
        assert not r.hung
        rep = r.value(0)
        assert rep["degraded"]

    def test_parity_death_alone_keeps_full_results(self):
        # Losing only the parity rank loses redundancy, not data.
        r = run_sim(
            make_abft_main(CFG), N,
            injectors=[KillAtProbe(rank=N - 1, probe="computed", hit=2)],
            on_deadlock="return",
        )
        assert not r.hung
        rep = r.value(0)
        assert not rep["degraded"]
        for it in range(CFG.iterations):
            assert blocks_match_reference(rep, CFG, N, it)
