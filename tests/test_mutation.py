"""Mutation smoke test: would the fuzzer notice a regressed defense?

The strongest claim a fuzzer can make is not "the protocol passes" but
"if the protocol were broken, I would catch it".  This suite proves that
claim for the ring's duplicate-iteration marker check (paper Fig. 10):
the ``ring_no_dedup`` mutation switch disables the check, the fuzzer is
pointed at the weakened build, and it must find the Fig. 8 duplicate
pathology *and* shrink it to a minimal (≤ 2 fault) reproducer.  The same
corpus against the unmutated build passes — the signal is the defense,
not the corpus.
"""

from __future__ import annotations

import pytest

from repro import mutation
from repro.fuzz import fuzz, replay, shrink
from tests.conftest import RING_SCENARIO

#: The corpus every test here uses: empirically verified to contain
#: schedules that trigger resends (a kill mid-ring forces the Fig. 7
#: recovery resend, which is what the dedup check defends against).
CORPUS = dict(runs=40, seed=11, min_kills=1, max_kills=2)


class TestRegistry:
    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            mutation.activate("nonesuch")
        with pytest.raises(ValueError):
            mutation.deactivate("nonesuch")

    def test_activate_deactivate(self):
        assert not mutation.active("ring_no_dedup")
        mutation.activate("ring_no_dedup")
        try:
            assert mutation.active("ring_no_dedup")
        finally:
            mutation.deactivate("ring_no_dedup")
        assert not mutation.active("ring_no_dedup")

    def test_enabled_context_restores_state(self):
        with mutation.enabled("ring_no_dedup"):
            assert mutation.active("ring_no_dedup")
        assert not mutation.active("ring_no_dedup")
        # Nested activation is not clobbered by an inner exit.
        mutation.activate("ring_no_dedup")
        try:
            with mutation.enabled("ring_no_dedup"):
                pass
            assert mutation.active("ring_no_dedup")
        finally:
            mutation.deactivate("ring_no_dedup")

    def test_env_var_seeds_workers(self, monkeypatch):
        # Spawned worker processes pick mutations up from the
        # environment at import time; _load_env is that hook.
        monkeypatch.setenv("REPRO_MUTATIONS", "ring_no_dedup")
        try:
            mutation._load_env()
            assert mutation.active("ring_no_dedup")
        finally:
            mutation.deactivate("ring_no_dedup")


class TestMutationSmoke:
    def test_fuzzer_catches_disabled_dedup(self):
        with mutation.enabled("ring_no_dedup"):
            report = fuzz(RING_SCENARIO, **CORPUS)
        assert report.failures, (
            "fuzzer failed to detect the disabled duplicate check"
        )
        # The violation is the Fig. 8 pathology, not some other break.
        assert any(
            "twice" in v or "duplicate" in v
            for o in report.failures for v in o.violations
        )
        # Every failure shrank to a small reproducer.
        for sr in report.shrunk:
            assert len(sr.config.faults) <= 2
            assert sr.violations

    def test_same_corpus_passes_without_the_mutation(self):
        report = fuzz(RING_SCENARIO, **CORPUS)
        assert not report.failures, report.format()

    def test_shrunk_reproducer_replays_under_the_mutation(self):
        with mutation.enabled("ring_no_dedup"):
            report = fuzz(RING_SCENARIO, **CORPUS)
            sr = shrink(report.failures[0].config)
            rep = replay(sr.config)
            assert rep.outcome.failed
        # The identical config is clean once the defense is restored:
        # the failure really was the mutation, not the schedule.
        assert not replay(sr.config).outcome.failed
