"""The fault-tolerant consensus behind MPI_Comm_validate_all (paper §II).

Agreement, validity, and termination are checked under failure-free runs,
failures before the call, failures *during* the protocol (including many
simultaneous deaths), both consensus modes, repeated validates, and
subcommunicators.
"""

from __future__ import annotations

import pytest

from repro.ft import comm_validate_all, icomm_validate_all
from repro.simmpi import ErrorHandler, RankFailStopError, Simulation, wait
from tests.conftest import run_sim

MODES = ["full", "early"]


def returning(mpi):
    mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
    return mpi.comm_world


class TestFailureFree:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9])
    def test_zero_failures_agreed(self, n, mode):
        def main(mpi):
            return comm_validate_all(returning(mpi), mode=mode)

        r = run_sim(main, n)
        assert all(v == 0 for v in r.values().values())

    @pytest.mark.parametrize("mode", MODES)
    def test_repeated_validates(self, mode):
        def main(mpi):
            comm = returning(mpi)
            return [comm_validate_all(comm, mode=mode) for _ in range(3)]

        r = run_sim(main, 4)
        assert all(v == [0, 0, 0] for v in r.values().values())

    def test_single_rank_trivial(self):
        def main(mpi):
            return comm_validate_all(returning(mpi))

        assert run_sim(main, 1).value(0) == 0

    def test_invalid_mode_rejected(self):
        def main(mpi):
            with pytest.raises(ValueError):
                comm_validate_all(returning(mpi), mode="psychic")
            return "ok"

        assert run_sim(main, 1).value(0) == "ok"


class TestWithPriorFailures:
    @pytest.mark.parametrize("mode", MODES)
    def test_known_failure_counted_and_recognized(self, mode):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            n = comm_validate_all(comm, mode=mode)
            return (n, sorted(comm.validated), sorted(comm.recognized))

        r = run_sim(main, 4, kills=[(2, 0.5)])
        for i in (0, 1, 3):
            assert r.value(i) == (1, [2], [2])

    @pytest.mark.parametrize("mode", MODES)
    def test_multiple_prior_failures(self, mode):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank in (1, 3, 4):
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            return comm_validate_all(comm, mode=mode)

        r = run_sim(main, 6, kills=[(1, 0.3), (3, 0.4), (4, 0.5)])
        assert all(r.value(i) == 3 for i in (0, 2, 5))

    def test_count_accumulates_across_validates(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            if comm.rank == 2:
                mpi.compute(3.0)
                return
            mpi.compute(2.0)
            first = comm_validate_all(comm)
            mpi.compute(2.5)  # wait past the second failure
            second = comm_validate_all(comm)
            return (first, second)

        r = run_sim(main, 4, kills=[(1, 0.5), (2, 2.5)])
        # The second validate returns the *total* failures, per the paper.
        assert r.value(0) == (1, 2)
        assert r.value(3) == (1, 2)


class TestFailuresDuringProtocol:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("victim_time", [1e-8, 5e-7, 2e-6, 1e-5])
    def test_death_mid_protocol_agreement(self, mode, victim_time):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            return comm_validate_all(comm, mode=mode)

        r = run_sim(main, 5, kills=[(1, victim_time)], on_deadlock="return")
        assert not r.hung
        vals = {v for k, v in r.values().items()}
        assert len(vals) == 1  # agreement

    @pytest.mark.parametrize("mode", MODES)
    def test_many_simultaneous_deaths(self, mode):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank in (1, 2, 3, 4):
                mpi.compute(1.0)
                return
            return comm_validate_all(comm, mode=mode)

        kills = [(i, 1e-7) for i in (1, 2, 3, 4)]
        r = run_sim(main, 6, kills=kills, on_deadlock="return")
        assert not r.hung
        assert r.value(0) == r.value(5)

    @pytest.mark.parametrize("mode", MODES)
    def test_all_but_one_die(self, mode):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank != 0:
                mpi.compute(1.0)
                return
            return comm_validate_all(comm, mode=mode)

        kills = [(i, 1e-7) for i in range(1, 4)]
        r = run_sim(main, 4, kills=kills, on_deadlock="return")
        assert not r.hung
        assert isinstance(r.value(0), int)

    @pytest.mark.parametrize("mode", MODES)
    def test_staggered_deaths_agreement(self, mode):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank in (2, 5):
                mpi.compute(1.0)
                return
            return comm_validate_all(comm, mode=mode)

        r = run_sim(
            main, 7, kills=[(2, 3e-7), (5, 9e-7)], on_deadlock="return",
            detection_latency=5e-7,
        )
        assert not r.hung
        vals = {v for v in r.values().values() if v is not None}
        assert len(vals) == 1


class TestNonBlocking:
    def test_icomm_request_completes(self):
        def main(mpi):
            comm = returning(mpi)
            req = icomm_validate_all(comm)
            status = wait(req)
            return (status.count, sorted(req.data))

        r = run_sim(main, 3)
        assert all(v == (0, []) for v in r.values().values())

    def test_icomm_progresses_while_blocked_elsewhere(self):
        # The consensus must complete in the progress engine even while
        # the application thread waits in an unrelated recv — the property
        # paper Fig. 13 relies on.
        def main(mpi):
            comm = returning(mpi)
            req = icomm_validate_all(comm)
            if comm.rank == 0:
                # Block on a message that arrives only after the others
                # have finished their validates.
                data, _ = comm.recv(source=1, tag=77)
                wait(req)
                return (data, req.status.count)
            wait(req)
            if comm.rank == 1:
                comm.send("late", dest=0, tag=77)
            return req.status.count

        r = run_sim(main, 3)
        assert r.value(0) == ("late", 0)

    def test_decision_applied_on_completion(self):
        def main(mpi):
            comm = returning(mpi)
            if comm.rank == 1:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            req = icomm_validate_all(comm)
            wait(req)
            return (sorted(req.data), sorted(comm.validated))

        r = run_sim(main, 3, kills=[(1, 0.5)])
        assert r.value(0) == ([1], [1])


class TestSubcommunicators:
    def test_validate_on_split_comm(self):
        def main(mpi):
            comm = returning(mpi)
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            sub.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 2:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            n = comm_validate_all(sub)
            return (n, sorted(sub.validated))

        r = run_sim(main, 6, kills=[(2, 0.5)])
        # Rank 2 is comm rank 1 of the even subcomm {0,2,4}.
        assert r.value(0) == (1, [1])
        assert r.value(4) == (1, [1])
        # The odd subcomm {1,3,5} sees no failure.
        assert r.value(1) == (0, [])

    def test_validate_world_and_sub_independent(self):
        def main(mpi):
            comm = returning(mpi)
            sub = comm.split(color=0 if comm.rank < 2 else 1, key=comm.rank)
            sub.set_errhandler(ErrorHandler.ERRORS_RETURN)
            if comm.rank == 3:
                mpi.compute(1.0)
                return
            mpi.compute(2.0)
            n_world = comm_validate_all(comm)
            n_sub = comm_validate_all(sub)
            return (n_world, n_sub)

        r = run_sim(main, 4, kills=[(3, 0.5)])
        assert r.value(0) == (1, 0)  # sub {0,1} unaffected
        assert r.value(2) == (1, 1)  # sub {2,3} lost rank 3
