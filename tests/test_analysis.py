"""Invariants, run statistics, and table formatting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ascii_table,
    completions_in_order,
    dict_table,
    format_cell,
    make_min_completions,
    make_value_bounds,
    message_stats,
    no_abort,
    no_duplicate_completions,
    no_hang,
    ring_summary,
    survivors_done,
)
from repro.core import RingConfig, RingVariant, Termination, make_ring_main
from repro.faults import KillAtProbe
from tests.conftest import run_sim


def clean_run(**kw):
    cfg = RingConfig(max_iter=3, termination=Termination.VALIDATE_ALL)
    return run_sim(make_ring_main(cfg), 4, on_deadlock="return", **kw)


def hang_run():
    cfg = RingConfig(max_iter=3, variant=RingVariant.NAIVE)
    return run_sim(
        make_ring_main(cfg), 4,
        injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
        on_deadlock="return",
    )


def dup_run():
    cfg = RingConfig(max_iter=4, variant=RingVariant.FT_NO_MARKER,
                     termination=Termination.ROOT_BCAST)
    return run_sim(
        make_ring_main(cfg), 4,
        injectors=[KillAtProbe(rank=2, probe="post_send", hit=2)],
        on_deadlock="return", detection_latency=2e-6,
    )


class TestInvariants:
    def test_no_hang(self):
        assert no_hang(clean_run()) is None
        assert no_hang(hang_run()) is not None

    def test_no_abort(self):
        assert no_abort(clean_run()) is None

    def test_survivors_done(self):
        assert survivors_done(clean_run()) is None

    def test_no_duplicate_completions(self):
        assert no_duplicate_completions(clean_run()) is None
        v = no_duplicate_completions(dup_run())
        assert v is not None and "twice" in v

    def test_completions_in_order(self):
        assert completions_in_order(clean_run()) is None
        assert completions_in_order(dup_run()) is not None

    def test_min_completions(self):
        assert make_min_completions(3)(clean_run()) is None
        assert make_min_completions(99)(clean_run()) is not None

    def test_value_bounds(self):
        assert make_value_bounds(4)(clean_run()) is None
        assert make_value_bounds(2)(clean_run()) is not None


class TestStats:
    def test_message_stats_counts(self):
        r = clean_run()
        ms = message_stats(r)
        assert ms.sends > 0
        assert ms.deliveries <= ms.sends
        assert ms.drops == 0
        assert ms.lost == 0

    def test_message_stats_with_failure(self):
        cfg = RingConfig(max_iter=4, termination=Termination.VALIDATE_ALL)
        r = run_sim(
            make_ring_main(cfg), 4,
            injectors=[KillAtProbe(rank=2, probe="post_recv", hit=2)],
            on_deadlock="return",
        )
        ms = message_stats(r)
        assert ms.detections == 3  # three survivors notice one death
        assert ms.recv_errors >= 1

    def test_ring_summary_clean(self):
        s = ring_summary(clean_run())
        assert s["hung"] is False
        assert s["survivors"] == 4
        assert s["distinct_markers"] == 3
        assert s["duplicate_completions"] == 0

    def test_ring_summary_duplicates(self):
        s = ring_summary(dup_run())
        assert s["duplicate_completions"] >= 1


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.0) == "0"
        assert format_cell(1.5) == "1.5"
        assert format_cell(1e-9) == "1.000e-09"
        assert format_cell(123456.0) == "1.235e+05"
        assert format_cell("txt") == "txt"

    def test_ascii_table_layout(self):
        text = ascii_table(
            ["name", "value"],
            [["alpha", 1], ["beta", 22]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_ascii_table_width_adapts(self):
        text = ascii_table(["h"], [["very-long-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-cell-content")

    def test_dict_table_default_columns(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        text = dict_table(rows)
        assert "a" in text and "4" in text

    def test_dict_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = dict_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_dict_table_empty(self):
        assert dict_table([], title="empty") == "empty"
