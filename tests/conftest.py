"""Shared pytest fixtures and helpers for the repro test suite."""

from __future__ import annotations

from typing import Any, Callable, Sequence

import pytest

from repro.simmpi import CostModel, Simulation, SimulationResult


def run_sim(
    main: Callable[..., Any] | Sequence[Callable[..., Any]],
    nprocs: int,
    *,
    seed: int = 0,
    kills: Sequence[tuple[int, float]] = (),
    injectors: Sequence[Any] = (),
    on_deadlock: str = "raise",
    **sim_kwargs: Any,
) -> SimulationResult:
    """One-line simulation driver used throughout the tests."""
    sim = Simulation(nprocs=nprocs, seed=seed, **sim_kwargs)
    for rank, time in kills:
        sim.kill(rank, at_time=time)
    for inj in injectors:
        sim.add_injector(inj)
    return sim.run(main, on_deadlock=on_deadlock)


@pytest.fixture
def zero_cost() -> CostModel:
    """A cost model where time never advances (pure-ordering tests)."""
    from repro.simmpi import ZERO_COST

    return ZERO_COST
