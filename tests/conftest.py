"""Shared pytest fixtures, helpers, and the test-taxonomy hook.

Two tiers of tests exist (``docs/testing.md``):

* **tier1** — the fast default set, run on every commit (``pytest``);
  every test not explicitly marked otherwise lands here automatically
  via :func:`pytest_collection_modifyitems`.
* **slow** — long fuzz/property campaigns, deselected by default
  (``addopts`` carries ``-m 'not slow'``); CI's fuzz-smoke job and
  nightly-style runs select them with ``pytest -m slow``.

The module-level helpers below are the single home of the small
scenario/invariant specs that several suites used to each define for
themselves (``tests/test_parallel.py``, ``tests/test_exploration.py``,
the fuzz tests); import them as ``from tests.conftest import ...``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import pytest

from repro.core import (
    RingConfig,
    RingVariant,
    Termination,
    make_ring_main,
    make_rootft_main,
)
from repro.parallel import RingScenario, StandardRingInvariants
from repro.simmpi import CostModel, Simulation, SimulationResult

# ---------------------------------------------------------------------------
# Taxonomy: everything not marked slow is tier1
# ---------------------------------------------------------------------------


def pytest_collection_modifyitems(config, items) -> None:
    for item in items:
        if not any(item.iter_markers(name="slow")):
            item.add_marker(pytest.mark.tier1)


# ---------------------------------------------------------------------------
# Simulation drivers
# ---------------------------------------------------------------------------


def run_sim(
    main: Callable[..., Any] | Sequence[Callable[..., Any]],
    nprocs: int,
    *,
    seed: int = 0,
    kills: Sequence[tuple[int, float]] = (),
    injectors: Sequence[Any] = (),
    on_deadlock: str = "raise",
    **sim_kwargs: Any,
) -> SimulationResult:
    """One-line simulation driver used throughout the tests."""
    sim = Simulation(nprocs=nprocs, seed=seed, **sim_kwargs)
    for rank, time in kills:
        sim.kill(rank, at_time=time)
    for inj in injectors:
        sim.add_injector(inj)
    return sim.run(main, on_deadlock=on_deadlock)


def factory_for(variant=RingVariant.FT_MARKER, rootft=False, nprocs=4,
                max_iter=3, term=Termination.VALIDATE_ALL, **sim_kw):
    """Closure-style ring scenario factory (serial sweeps only — use
    :data:`RING_SCENARIO` / :class:`~repro.parallel.RingScenario` when
    the factory must cross a process boundary)."""
    def factory():
        cfg = RingConfig(max_iter=max_iter, variant=variant, termination=term)
        main = make_rootft_main(cfg) if rootft else make_ring_main(cfg)
        return Simulation(nprocs=nprocs, **sim_kw), main

    return factory


# ---------------------------------------------------------------------------
# Canonical small-ring specs (picklable: safe for pooled runners)
# ---------------------------------------------------------------------------

#: The 4-rank, 3-iteration marker ring most sweep/fuzz tests target.
RING_SCENARIO = RingScenario(nprocs=4, iters=3)

#: Its matching full invariant battery.
RING_INVARIANTS = StandardRingInvariants(3, 4)


# ---------------------------------------------------------------------------
# Report comparators (serial-vs-parallel equivalence assertions)
# ---------------------------------------------------------------------------


def campaign_fields(report):
    """Every per-run field of a campaign report that must survive a
    process boundary unchanged."""
    return [
        (r.seed, r.kills, r.hung, r.aborted, r.violations, r.result)
        for r in report.runs
    ]


def outcome_fields(report):
    """Every per-window field of an exploration report, likewise."""
    return [
        (o.windows, o.hung, o.aborted, o.violations, o.result)
        for o in report.outcomes
    ]


@pytest.fixture
def zero_cost() -> CostModel:
    """A cost model where time never advances (pure-ordering tests)."""
    from repro.simmpi import ZERO_COST

    return ZERO_COST
