#!/usr/bin/env python
"""§III-D live: the root dies mid-run and its successor takes over.

A 5-rank ring runs 6 iterations; rank 0 (the root) is fail-stopped right
after launching iteration 2.  Watch the §III-D choreography:

1. rank 4 (the dead root's predecessor) notices via its watchdog and
   resends the last buffer it passed to the old root;
2. rank 1 — now the lowest alive rank, elected by Fig. 12 — receives that
   resend, determines the last known iteration, and resumes control;
3. termination is the Fig. 13 consensus validate, which (unlike the
   Fig. 11 root broadcast) needs no root at all.

Run:  python examples/root_failure_recovery.py
"""

from __future__ import annotations

from repro.analysis import dict_table
from repro.core import RingConfig, make_rootft_main
from repro.faults import KillAtProbe
from repro.simmpi import Simulation, TraceKind


def main() -> None:
    sim = Simulation(nprocs=5, seed=0)
    sim.add_injector(KillAtProbe(rank=0, probe="root_post_send", hit=3))
    cfg = RingConfig(max_iter=6)
    result = sim.run(make_rootft_main(cfg))

    print("== who ended up in charge ==")
    reports = [result.value(i) for i in result.completed_ranks]
    print(dict_table(
        reports,
        columns=["rank", "role", "root", "cur_marker", "forwards",
                 "resends"],
    ))

    new_root = next(rep for rep in reports if rep["role"] == "root")
    print(f"\nnew root: rank {new_root['rank']}")
    print("completions recorded at the new root (marker, value):")
    for marker, value in new_root["root_completions"]:
        print(f"  iteration {marker}: value {value}")

    print("\n== recovery timeline ==")
    for ev in result.trace:
        if ev.kind in (TraceKind.FAILURE, TraceKind.DETECT):
            print(ev.format())
        if ev.kind is TraceKind.PROBE and ev.detail.get("name") in (
            "became_root", "root_recovered"
        ):
            print(ev.format())


if __name__ == "__main__":
    main()
