#!/usr/bin/env python
"""Algorithm-Based Fault Tolerance: recover lost results from parity.

The paper's §IV traces ABFT to checksum-encoded matrix operations (Huang
& Abraham) and diskless checkpointing (Plank).  This example runs the
bundled ABFT matrix–vector app: four compute ranks hold row blocks of a
matrix, a fifth rank holds their block-sum (the parity).  Rank 2 is
fail-stopped right after computing its block in iteration 3; the
survivors collectively validate, re-gather, and *reconstruct rank 2's
block algebraically* — the answer stays exact, no restart, no disk.

Run:  python examples/abft_matvec.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import AbftConfig, make_abft_main, reference_result
from repro.faults import KillAtProbe
from repro.simmpi import Simulation

CFG = AbftConfig(rows_per_rank=3, cols=6, iterations=5)
N = 5  # 4 compute + 1 parity


def main() -> None:
    sim = Simulation(nprocs=N)
    sim.add_injector(KillAtProbe(rank=2, probe="computed", hit=3))
    result = sim.run(make_abft_main(CFG), on_deadlock="return")

    rep = result.value(0)
    print(f"ran through: {not result.hung};  "
          f"failed ranks: {sorted(result.failed_ranks)};  "
          f"parity recoveries: {rep['recoveries']}\n")

    for it in range(CFG.iterations):
        ref = reference_result(CFG, N, it)
        got = rep["results"][it]["blocks"]
        recovered = rep["results"][it]["recovered"]
        exact = all(np.allclose(got[k], ref[k]) for k in ref)
        marker = f"  <- block {recovered} rebuilt from parity" if recovered else ""
        print(f"iteration {it}: y blocks exact: {exact}{marker}")

    print("\niteration 3, rank 2's result vector:")
    print(f"  ground truth       : {reference_result(CFG, N, 3)[2]}")
    print(f"  rebuilt by survivors: {rep['results'][3]['blocks'][2]}")
    print("\nThe encoding y_P = sum(y_i) lets the survivors solve for the "
          "dead rank's block: ABFT turns redundancy into recovery, with "
          "MPI_Comm_validate_all as the recovery-block boundary (Randell "
          "via paper §II).")


if __name__ == "__main__":
    main()
