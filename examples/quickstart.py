#!/usr/bin/env python
"""Quickstart: run the paper's fault-tolerant ring and kill a rank.

This is the 60-second tour: an 8-rank ring, 6 iterations, and rank 3
fail-stopped in the middle of iteration 2 — precisely in the window where
it has received the buffer but not yet forwarded it (the scenario that
hangs the naive design in the paper's Fig. 6).  The fault-tolerant design
notices through its watchdog receive, resends past the gap, and runs
through.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import dict_table, ring_summary
from repro.core import RingConfig, Termination, make_ring_main
from repro.faults import KillAtProbe
from repro.simmpi import Simulation, TraceKind


def main() -> None:
    sim = Simulation(nprocs=8, seed=1)
    # Fail-stop rank 3 at the second hit of its post-receive window:
    # iteration 2's buffer dies with it.
    sim.add_injector(KillAtProbe(rank=3, probe="post_recv", hit=2))

    cfg = RingConfig(max_iter=6, termination=Termination.VALIDATE_ALL)
    result = sim.run(make_ring_main(cfg))

    print("== outcome ==")
    summary = ring_summary(result)
    print(f"ran through: {not summary['hung']}")
    print(f"failed ranks: {summary['failed_ranks']}")
    print(f"iterations completed at root: {summary['completions']}")
    print(f"resends that repaired the ring: {summary['resends']}")
    print(f"virtual completion time: {summary['final_time']:.3e} s")

    print("\n== per-rank reports ==")
    reports = [result.value(i) for i in result.completed_ranks]
    print(dict_table(
        reports,
        columns=["rank", "role", "left", "right", "forwards", "resends",
                 "duplicates_discarded"],
    ))

    print("\n== failure timeline ==")
    for ev in result.trace:
        if ev.kind in (TraceKind.FAILURE, TraceKind.DETECT,
                       TraceKind.REQ_ERROR):
            print(ev.format())


if __name__ == "__main__":
    main()
