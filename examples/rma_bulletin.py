#!/usr/bin/env python
"""One-sided progress board: the proposal's RMA extension in action.

The paper notes the FT Working Group was extending the run-through
stabilization proposal to one-sided operations (§II).  This example uses
the repository's RMA implementation: every worker rank publishes its
progress counter into rank 0's window with ``put`` (no receive code at
rank 0 — the progress engine applies it), while rank 0 polls its own
window.  When a worker dies mid-run, rank 0 sees its counter freeze,
recognizes the failure, and finishes the board without it.

Run:  python examples/rma_bulletin.py
"""

from __future__ import annotations

from repro.ft import comm_validate_clear
from repro.simmpi import ErrorHandler, Simulation, wait
from repro.simmpi.rma import win_create

STEPS = 8


def main_rank(mpi):
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    win = win_create(comm, size=comm.size)
    snapshots = []
    if comm.rank == 0:
        for _ in range(STEPS):
            mpi.compute(2e-6)  # poll at half the workers' publish rate
            snapshots.append([int(v) for v in win.local])
        comm_validate_clear(
            comm, sorted(comm.known_failed_comm_ranks() - comm.recognized)
        )
        return snapshots
    for step in range(1, STEPS + 1):
        mpi.compute(1e-6)
        wait(win.put([float(step)], target=0, offset=comm.rank))
    return "worker done"


def main() -> None:
    sim = Simulation(nprocs=5)
    sim.kill(3, at_time=5.2e-6)  # worker 3 dies mid-run
    result = sim.run(main_rank, on_deadlock="return")

    print("rank 0's progress board over time (one row per poll):")
    print("  step   " + "  ".join(f"r{r}" for r in range(1, 5)))
    for i, snap in enumerate(result.value(0)):
        print(f"  {i:>4}   " + "  ".join(f"{v:>2}" for v in snap[1:]))
    print(f"\nfailed ranks: {sorted(result.failed_ranks)} — watch r3's "
          f"column freeze while the others keep publishing.")
    print("No receive code exists at rank 0: the puts are applied by the "
          "simulated progress engine, which is what makes one-sided "
          "communication one-sided.")


if __name__ == "__main__":
    main()
