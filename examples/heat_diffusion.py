#!/usr/bin/env python
"""Fault-tolerant 1-D heat diffusion: the ring's lessons in a stencil code.

Eight ranks solve the heat equation on a shared 1-D bar; rank 3 is
fail-stopped a third of the way through.  Its neighbors recognize the
failure (``MPI_Comm_validate_clear``), bridge the gap as an insulated
edge, and run through — the *natural fault tolerance* style the paper's
related-work section points to: the answer degrades gracefully instead of
the job dying.

The script prints an ASCII rendering of the final temperature field from
both the failure-free and the failure runs, so the degradation is visible.

Run:  python examples/heat_diffusion.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import HeatConfig, make_heat_main
from repro.simmpi import Simulation

N = 8
CFG = HeatConfig(cells_per_rank=8, steps=30)


def run(kill: bool):
    sim = Simulation(nprocs=N)
    if kill:
        sim.kill(3, at_time=10.5e-6)
    return sim.run(make_heat_main(CFG), on_deadlock="return")


def render(result) -> str:
    cells = CFG.cells_per_rank
    peak = 0.25  # display scale
    chars = " .:-=+*#%@"
    out = []
    for rank in range(N):
        if rank in result.failed_ranks:
            out.append("X" * cells)
            continue
        field = np.array(result.value(rank)["field"])
        out.append("".join(
            chars[min(int(v / peak * (len(chars) - 1)), len(chars) - 1)]
            for v in field
        ))
    return "|".join(out)


def main() -> None:
    clean = run(kill=False)
    failed = run(kill=True)

    print("final temperature field (one block per rank; X = dead rank):\n")
    print(f"  failure-free : {render(clean)}")
    print(f"  rank 3 dies  : {render(failed)}")

    clean_heat = sum(clean.value(i)["total_heat"] for i in clean.completed_ranks)
    kept_heat = sum(failed.value(i)["total_heat"] for i in failed.completed_ranks)
    retries = {i: failed.value(i)["halo_retries"]
               for i in failed.completed_ranks
               if failed.value(i)["halo_retries"]}
    print(f"\nheat on surviving subdomains: {kept_heat:.4f} "
          f"(failure-free total: {clean_heat:.4f})")
    print(f"halo exchanges redone after the failure, by rank: {retries or 'none'}")
    print("\nrank 3's subdomain (and the heat it held) is lost; its "
          "neighbors treat the gap as an insulated edge and the survivors "
          "keep diffusing — run-through stabilization for a stencil code.")


if __name__ == "__main__":
    main()
