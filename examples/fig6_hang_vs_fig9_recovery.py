#!/usr/bin/env python
"""The paper's central lesson, demonstrated: Fig. 6 hang vs Fig. 9 recovery.

Runs the *same* failure scenario twice — rank 2 dies after receiving but
before forwarding iteration 1's buffer — first with the naive receive
(retarget-the-left, the design the paper shows is broken), then with the
watchdog receive of Fig. 9.  The simulator's deadlock detector *proves*
the naive hang; the FT run completes and shows the repair arrows of
Fig. 7 (who resent what).

Run:  python examples/fig6_hang_vs_fig9_recovery.py
"""

from __future__ import annotations

from repro.core import RingConfig, RingVariant, Termination, make_ring_main
from repro.faults import KillAtProbe
from repro.simmpi import Simulation, TraceKind


def run_variant(variant: RingVariant):
    sim = Simulation(nprocs=4, seed=0)
    sim.add_injector(KillAtProbe(rank=2, probe="post_recv", hit=2))
    cfg = RingConfig(max_iter=4, variant=variant,
                     termination=Termination.ROOT_BCAST)
    return sim.run(make_ring_main(cfg), on_deadlock="return")


def main() -> None:
    print("scenario: 4 ranks, 4 iterations; rank 2 dies after RECEIVING")
    print("iteration 1's buffer, before forwarding it (control is lost).\n")

    naive = run_variant(RingVariant.NAIVE)
    print("-- naive receive (modeled after FT_Send_right, paper Fig. 6) --")
    if naive.hung:
        print(f"DEADLOCK proven at t={naive.final_time:.3e}s; blocked:")
        for rank, why in naive.deadlock.blocked:
            print(f"  rank {rank}: {why}")
    else:  # pragma: no cover - the point of the example
        print("unexpectedly completed!")

    ft = run_variant(RingVariant.FT_MARKER)
    print("\n-- FT receive with watchdog Irecv (paper Fig. 9) --")
    print(f"ran through: {not ft.hung}")
    print(f"root completions (marker, value): "
          f"{ft.value(0)['root_completions']}")
    resenders = {
        i: ft.value(i)["resends"]
        for i in ft.completed_ranks
        if ft.value(i)["resends"]
    }
    print(f"repair resends by rank: {resenders}  (the Fig. 7 arrow)")
    print("\nnote the values: iterations completed after the failure "
          "accumulate one fewer increment — rank 2's contribution is gone, "
          "but the ring ran through.")

    print("\n-- space-time diagram of the FT run (the paper's Fig. 7, "
          "rendered from the trace) --")
    from repro.analysis import render_spacetime

    print(render_spacetime(ft.trace, 4))


if __name__ == "__main__":
    main()
