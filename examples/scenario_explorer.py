#!/usr/bin/env python
"""§III-E answered: exhaustively map every failure window of a design.

The paper closes asking how a developer can know they have covered *all*
problematic fault scenarios.  With a deterministic simulator the reachable
windows are enumerable: this script sweeps a fail-stop through every
(rank, iteration, receive/send boundary) of a 4-rank ring — and every
*pair* of such windows — for each design stage, and prints the coverage
map.  The naive design's hangs and the no-marker design's duplicate
completions appear exactly where the paper says they will.

Run:  python examples/scenario_explorer.py
"""

from __future__ import annotations

from repro.analysis import ascii_table, standard_ring_invariants
from repro.core import RingConfig, RingVariant, Termination, make_ring_main
from repro.faults import explore
from repro.simmpi import Simulation

N, ITERS = 4, 3


def factory_for(variant: RingVariant):
    # A lagging detector (2 us > one message hop) is what lets the Fig. 8
    # duplicate materialize for the no-marker design; the marker design
    # must survive the same regime.
    def factory():
        cfg = RingConfig(max_iter=ITERS, variant=variant,
                         termination=Termination.VALIDATE_ALL)
        sim = Simulation(nprocs=N, detection_latency=2e-6)
        return sim, make_ring_main(cfg)

    return factory


def main() -> None:
    invariants = standard_ring_invariants(ITERS, N)
    rows = []
    details: list[str] = []
    for variant in (RingVariant.NAIVE, RingVariant.FT_NO_MARKER,
                    RingVariant.FT_MARKER):
        rep = explore(factory_for(variant), invariants=invariants,
                      ranks=[1, 2, 3], pairs=(variant is RingVariant.FT_MARKER))
        s = rep.summary()
        rows.append([variant.value, s["runs"], s["ok"], s["hangs"],
                     s["violations"]])
        for outcome in rep.failures[:4]:
            wins = "+".join(str(w) for w in outcome.windows)
            why = "deadlock" if outcome.hung else "; ".join(outcome.violations)
            details.append(f"  {variant.value} @ {wins}: {why}")
        if len(rep.failures) > 4:
            details.append(
                f"  {variant.value}: ... and {len(rep.failures) - 4} more"
            )

    print(ascii_table(
        ["design", "scenarios run", "ok", "hangs", "violations"],
        rows,
        title=f"exhaustive failure-window sweep (n={N}, {ITERS} iterations; "
              "ft_marker also sweeps window *pairs*)",
    ))
    if details:
        print("\nexample failures found:")
        print("\n".join(details))
    print("\nft_marker survives every single and double failure window — "
          "the coverage answer the paper's §III-E asks for.")


if __name__ == "__main__":
    main()
