"""Observability: trace export, metrics timelines, sweep telemetry.

Three layers over the deterministic kernel (see ``docs/observability.md``):

* :mod:`repro.obs.export` — Chrome Trace Event (Perfetto) and JSONL
  trace exporters with validators and an exact round-trip loader;
* :mod:`repro.obs.metrics` — :class:`KernelMetrics` (per-rank time
  series sampled by kernel hooks behind ``if obs is not None:`` guards)
  and :func:`run_report` (per-rank busy/blocked/failed accounting,
  detection and validate latencies);
* :mod:`repro.obs.telemetry` — per-job JSONL telemetry for sweeps
  (explore/campaign/fuzz), canonically serial==pooled, aggregated
  offline by ``repro report``.

Everything here is opt-in: a simulation without ``metrics=True`` and a
sweep without ``telemetry=`` allocate no obs state at all.
"""

from .export import (
    JSONL_FORMAT,
    dumps_perfetto,
    jsonl_errors,
    load_trace_jsonl,
    perfetto_errors,
    trace_to_jsonl,
    trace_to_perfetto,
    write_perfetto,
    write_trace_jsonl,
)
from .metrics import KernelMetrics, RankSummary, RunReport, Series, run_report
from .scenarios import SCENARIOS, make_scenario
from .telemetry import (
    TELEMETRY_FORMAT,
    TelemetryJob,
    TelemetryResult,
    TelemetrySummary,
    TelemetryWriter,
    VOLATILE_KEYS,
    canonical_lines,
    outcome_class,
    read_telemetry,
    run_recorded,
    run_recorded_stream,
    runner_worker_stats,
    summarize,
    telemetry_errors,
)

__all__ = [
    "JSONL_FORMAT",
    "KernelMetrics",
    "RankSummary",
    "RunReport",
    "SCENARIOS",
    "Series",
    "TELEMETRY_FORMAT",
    "TelemetryJob",
    "TelemetryResult",
    "TelemetrySummary",
    "TelemetryWriter",
    "VOLATILE_KEYS",
    "canonical_lines",
    "dumps_perfetto",
    "jsonl_errors",
    "load_trace_jsonl",
    "make_scenario",
    "outcome_class",
    "perfetto_errors",
    "read_telemetry",
    "run_recorded",
    "run_recorded_stream",
    "run_report",
    "runner_worker_stats",
    "summarize",
    "telemetry_errors",
    "trace_to_jsonl",
    "trace_to_perfetto",
    "write_perfetto",
    "write_trace_jsonl",
]
