"""Observability: trace export, metrics timelines, sweep telemetry.

Three layers over the deterministic kernel (see ``docs/observability.md``):

* :mod:`repro.obs.export` — Chrome Trace Event (Perfetto) and JSONL
  trace exporters with validators and an exact round-trip loader;
* :mod:`repro.obs.metrics` — :class:`KernelMetrics` (per-rank time
  series sampled by kernel hooks behind ``if obs is not None:`` guards)
  and :func:`run_report` (per-rank busy/blocked/failed accounting,
  detection and validate latencies);
* :mod:`repro.obs.telemetry` — per-job JSONL telemetry for sweeps
  (explore/campaign/fuzz), canonically serial==pooled, aggregated
  offline by ``repro report``;
* :mod:`repro.obs.spans` — orchestration span tracing over the sweep
  pipeline (rounds, chunks, wire frames, worker-side execution, cache
  batches), exported as ``repro.spans/1`` JSONL or Perfetto tracks;
* :mod:`repro.obs.registry` — a stdlib Prometheus-style metrics
  registry (counters/gauges/histograms) with text exposition and the
  ``repro metrics serve`` scrape endpoint;
* :mod:`repro.obs.console` — the ``repro top`` live campaign dashboard
  over a telemetry stream.

Everything here is opt-in: a simulation without ``metrics=True`` and a
sweep without ``telemetry=`` allocate no obs state at all, and spans
cost one thread-local read per instrumentation site when no recorder
is installed.
"""

from .export import (
    JSONL_FORMAT,
    dumps_perfetto,
    jsonl_errors,
    load_trace_jsonl,
    perfetto_errors,
    trace_to_jsonl,
    trace_to_perfetto,
    write_perfetto,
    write_trace_jsonl,
)
from .console import read_telemetry_tail, render_top, top
from .metrics import KernelMetrics, RankSummary, RunReport, Series, run_report
from .registry import (
    EXPOSITION_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    REGISTRY,
    registry_from_telemetry,
)
from .scenarios import SCENARIOS, make_scenario
from .spans import (
    CANONICAL_CATEGORIES,
    SPANS_FORMAT,
    SPAN_CATEGORIES,
    SPAN_VOLATILE_KEYS,
    Span,
    SpanRecorder,
    active,
    canonical_spans,
    dumps_spans,
    read_spans,
    recording,
    span_errors,
    spans_to_perfetto,
    spans_to_records,
    write_spans,
)
from .telemetry import (
    TELEMETRY_FORMAT,
    TelemetryJob,
    TelemetryResult,
    TelemetrySummary,
    TelemetryWriter,
    VOLATILE_KEYS,
    canonical_lines,
    outcome_class,
    read_telemetry,
    run_recorded,
    run_recorded_stream,
    runner_worker_stats,
    summarize,
    summary_dict,
    telemetry_errors,
)

__all__ = [
    "CANONICAL_CATEGORIES",
    "Counter",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "JSONL_FORMAT",
    "KernelMetrics",
    "MetricsRegistry",
    "MetricsServer",
    "REGISTRY",
    "RankSummary",
    "RunReport",
    "SCENARIOS",
    "SPANS_FORMAT",
    "SPAN_CATEGORIES",
    "SPAN_VOLATILE_KEYS",
    "Series",
    "Span",
    "SpanRecorder",
    "TELEMETRY_FORMAT",
    "TelemetryJob",
    "TelemetryResult",
    "TelemetrySummary",
    "TelemetryWriter",
    "VOLATILE_KEYS",
    "active",
    "canonical_lines",
    "canonical_spans",
    "dumps_perfetto",
    "dumps_spans",
    "jsonl_errors",
    "load_trace_jsonl",
    "make_scenario",
    "outcome_class",
    "perfetto_errors",
    "read_spans",
    "read_telemetry",
    "read_telemetry_tail",
    "recording",
    "registry_from_telemetry",
    "render_top",
    "run_recorded",
    "run_recorded_stream",
    "run_report",
    "runner_worker_stats",
    "span_errors",
    "spans_to_perfetto",
    "spans_to_records",
    "summarize",
    "summary_dict",
    "telemetry_errors",
    "top",
    "trace_to_jsonl",
    "trace_to_perfetto",
    "write_perfetto",
    "write_spans",
    "write_trace_jsonl",
]
