"""The live campaign console: render a ``repro.telemetry/1`` stream as
an in-terminal dashboard.

``repro top --telemetry FILE`` reads the telemetry file a campaign is
writing (``--telemetry`` on campaign/explore/fuzz) and renders
progress, throughput, an outcome histogram, wall-time percentiles, and
— for remote sweeps — the per-worker rtt/bytes/cache-hit table.  With
``--follow`` it re-reads on an interval until the declared run count
has landed, tolerating a mid-write trailing line (the writer appends
one JSON line per job, so the only torn state possible is a partial
last line, which the tail reader drops).

All aggregation is shared with ``repro report``
(:func:`repro.obs.telemetry.summarize`); this module only formats.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO

from .telemetry import TELEMETRY_FORMAT, summarize

__all__ = ["read_telemetry_tail", "render_top", "top"]

#: ANSI clear-screen + home, prefixed to each --follow repaint.
_CLEAR = "\x1b[2J\x1b[H"


def read_telemetry_tail(path: Any) -> list[dict[str, Any]]:
    """Best-effort read of a telemetry file that may still be growing:
    skips blank and partially-written lines instead of failing, returns
    ``[]`` when the file is missing or the header isn't telemetry."""
    try:
        text = Path(path).read_text()
    except OSError:
        return []
    records: list[dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of an in-flight write
        if isinstance(record, dict):
            records.append(record)
    if not records or records[0].get("format") != TELEMETRY_FORMAT:
        return []
    return records


def _bar(count: int, total: int, width: int) -> str:
    filled = int(width * count / total) if total > 0 else 0
    filled = min(width, filled)
    return "#" * filled + "-" * (width - filled)


def _progress(records: list[dict[str, Any]]) -> tuple[int, int]:
    """(jobs done, jobs declared).  Falls back to done when the header
    predates the run count (streamed fuzz declares runs up front too)."""
    declared = records[0].get("runs")
    done = sum(1 for r in records[1:] if r.get("kind") == "job")
    if not isinstance(declared, int) or declared < done:
        declared = done
    return done, declared


def render_top(records: list[dict[str, Any]], *, top: int = 3) -> str:
    """The dashboard for one snapshot of a telemetry stream."""
    summary = summarize(records, top=top)
    jobs = [r for r in records[1:] if r.get("kind") == "job"]
    done, declared = _progress(records)

    t_start = min((r["t_start"] for r in jobs
                   if isinstance(r.get("t_start"), (int, float))), default=0.0)
    t_end = max((r["t_end"] for r in jobs
                 if isinstance(r.get("t_end"), (int, float))), default=0.0)
    elapsed = max(0.0, t_end - t_start)
    rate = done / elapsed if elapsed > 0 else 0.0
    remaining = declared - done

    pct = 100.0 * done / declared if declared else 100.0
    lines = [
        f"repro top — {summary.kind} sweep",
        f"progress   [{_bar(done, declared, 30)}] {done}/{declared}"
        f" ({pct:.0f}%)",
    ]
    if remaining > 0:
        eta = f"{remaining / rate:.1f}s" if rate > 0 else "?"
    else:
        eta = "done"
    lines.append(
        f"throughput {rate:.1f} job/s   elapsed {elapsed:.2f}s   eta {eta}"
    )

    lines.append("outcomes")
    for outcome in ("ok", "hang", "violation", "abort"):
        count = summary.outcomes.get(outcome, 0)
        if count or outcome == "ok":
            lines.append(
                f"  {outcome:<10} {count:>7} [{_bar(count, done, 20)}]"
            )

    p = summary.wall_percentiles
    lines.append(
        f"job wall   p50={p['p50'] * 1e3:.2f}ms  p90={p['p90'] * 1e3:.2f}ms"
        f"  p99={p['p99'] * 1e3:.2f}ms  max={p['max'] * 1e3:.2f}ms"
    )

    hits = summary.cache.get("hit", 0)
    misses = summary.cache.get("miss", 0)
    if hits or misses:
        lookups = hits + misses
        ratio = 100.0 * hits / lookups if lookups else 0.0
        lines.append(
            f"cache      hits={hits} misses={misses} ({ratio:.0f}% hit)"
        )
    else:
        lines.append("cache      off")
    lines.append(f"retries    {summary.retries}")

    if summary.remote:
        lines.append("workers (remote transport)")
        lines.append(
            f"  {'worker':<22} {'chunks':>6} {'jobs':>6} {'rtt ms':>8}"
            f" {'wire B':>9} {'hit%':>5} {'disc':>4}"
        )
        for row in summary.remote:
            chunks = int(row.get("chunks", 0))
            rtt_ms = float(row.get("rtt_s", 0.0)) * 1e3
            wire = int(row.get("bytes_out", 0)) + int(row.get("bytes_in", 0))
            cache_hits = int(row.get("cache_hits", 0))
            classified = (
                cache_hits
                + int(row.get("cache_misses", 0))
                + int(row.get("cache_stale", 0))
            )
            hit_pct = (
                f"{100.0 * cache_hits / classified:.0f}" if classified else "-"
            )
            lines.append(
                f"  {str(row.get('worker', '?')):<22} {chunks:>6}"
                f" {int(row.get('jobs', 0)):>6} {rtt_ms:>8.1f}"
                f" {wire:>9} {hit_pct:>5} {int(row.get('disconnects', 0)):>4}"
            )
    elif summary.workers:
        lines.append("workers (local pids)")
        for pid, row in sorted(summary.workers.items()):
            lines.append(
                f"  pid {pid:<8} jobs={int(row.get('jobs', 0)):<6}"
                f" busy={float(row.get('busy_s', 0.0)) * 1e3:.1f}ms"
            )

    if summary.slowest:
        lines.append(f"slowest {min(top, len(summary.slowest))}")
        for index, wall_s, outcome in summary.slowest:
            lines.append(
                f"  run {index:<6} {wall_s * 1e3:>9.2f}ms  {outcome}"
            )
    return "\n".join(lines)


def top(
    path: Any,
    *,
    follow: bool = False,
    interval: float = 2.0,
    top_n: int = 3,
    out: TextIO | None = None,
    sleep=time.sleep,
) -> int:
    """The ``repro top`` loop.  One-shot by default; with *follow*,
    repaint every *interval* seconds until the stream is complete.
    Returns a shell exit code."""
    out = sys.stdout if out is None else out
    while True:
        records = read_telemetry_tail(path)
        if records:
            text = render_top(records, top=top_n)
            done, declared = _progress(records)
            complete = declared > 0 and done >= declared
        else:
            text = f"[top] waiting for telemetry at {path} ..."
            complete = False
        prefix = _CLEAR if follow else ""
        out.write(prefix + text + "\n")
        out.flush()
        if not follow:
            return 0 if records else 1
        if complete:
            return 0
        try:
            sleep(interval)
        except KeyboardInterrupt:
            return 0
