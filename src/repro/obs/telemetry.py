"""Sweep telemetry: a structured JSONL stream per explore/campaign/fuzz.

Every job of a sweep is wrapped in a :class:`TelemetryJob` that times its
execution and records where it ran; the parent writes one JSONL line per
job (plus a header) as results come back.  The stream answers the
operational questions a report cannot: which jobs are slow, which worker
ran them, how often chunks were retried, what the cache answered.

**Determinism contract** (CI-enforced): the *canonical* form of a
telemetry file — volatile fields dropped, lines sorted — is byte-
identical between a serial run and any pooled run of the same sweep.
Volatile fields are exactly the ones that depend on wall time or
placement (:data:`VOLATILE_KEYS`: start/end timestamps, wall seconds,
worker id, retry count, worker count); everything else (job kind, index,
outcome class, cache disposition) is a pure function of the sweep spec.

**Cache integration**: :class:`TelemetryJob` implements the
``repro.cache`` contract *by delegation* and exposes the wrapped job as
its ``cache_key_delegate``, so a telemetry-wrapped job has the **same
cache key** as the bare job — warm outcomes recorded without telemetry
are served to telemetry runs and vice versa.  The wrapper marks each
line ``cache: "hit" | "miss" | null`` accordingly.

:func:`summarize` / ``repro report`` aggregate a stream offline: outcome
histogram, wall-time percentiles, slowest jobs, per-worker utilization,
cache hit rate — no simulation is re-run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "TELEMETRY_FORMAT",
    "TelemetryJob",
    "TelemetryResult",
    "TelemetrySummary",
    "TelemetryWriter",
    "VOLATILE_KEYS",
    "canonical_lines",
    "outcome_class",
    "read_telemetry",
    "run_recorded",
    "run_recorded_stream",
    "runner_worker_stats",
    "summarize",
    "summary_dict",
    "telemetry_errors",
]

#: Header format tag; bump when the line layout changes.
TELEMETRY_FORMAT = "repro.telemetry/1"

#: Fields that legitimately differ between runs of the same sweep
#: (wall time and placement); dropped by :func:`canonical_lines`.
VOLATILE_KEYS = frozenset(
    {"t_start", "t_end", "wall_s", "worker", "retries", "workers"}
)


def outcome_class(value: Any) -> str:
    """Classify a sweep result by the outcome fields every job shape
    shares (``ScenarioOutcome``, ``CampaignRun``, ``FuzzOutcome``)."""
    if getattr(value, "hung", False):
        return "hang"
    if getattr(value, "violations", ()):
        return "violation"
    if getattr(value, "aborted", False):
        return "abort"
    return "ok"


@dataclass(frozen=True)
class TelemetryResult:
    """What a :class:`TelemetryJob` ships back across the pool."""

    index: int
    value: Any
    t_start: float
    t_end: float
    worker: int
    #: ``"hit"`` / ``"miss"`` when the cache answered/stored the job,
    #: ``None`` for an uncached execution.
    cached: str | None = None

    @property
    def wall_s(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class TelemetryJob:
    """Picklable wrapper timing one sweep job.

    Delegates the :mod:`repro.cache` contract to the wrapped job and
    keys as the wrapped job (via :attr:`cache_key_delegate`), so
    wrapping never splits the cache namespace.  ``index`` is the global
    submission index within the sweep (display/aggregation bookkeeping).
    """

    job: Any
    index: int

    #: repro.cache.keys.job_key hashes this object instead of the
    #: wrapper, making the telemetry run share the bare job's entries.
    @property
    def cache_key_delegate(self) -> Any:
        return self.job

    @property
    def cacheable(self) -> bool:
        return bool(
            hasattr(self.job, "cache_payload")
            and hasattr(self.job, "from_cached")
            and getattr(self.job, "cacheable", True)
        )

    def __call__(self) -> TelemetryResult:
        t0 = time.monotonic()
        value = self.job()
        return TelemetryResult(
            index=self.index, value=value, t_start=t0,
            t_end=time.monotonic(), worker=os.getpid(), cached=None,
        )

    # -- cache contract, by delegation ---------------------------------

    def cache_payload(self) -> tuple[TelemetryResult, dict[str, Any]]:
        t0 = time.monotonic()
        value, payload = self.job.cache_payload()
        wrapped = TelemetryResult(
            index=self.index, value=value, t_start=t0,
            t_end=time.monotonic(), worker=os.getpid(), cached="miss",
        )
        return wrapped, payload

    def from_cached(self, payload: dict[str, Any]) -> TelemetryResult:
        t0 = time.monotonic()
        value = self.job.from_cached(payload)
        return TelemetryResult(
            index=self.index, value=value, t_start=t0,
            t_end=time.monotonic(), worker=os.getpid(), cached="hit",
        )


class TelemetryWriter:
    """Streams one sweep's telemetry to a JSONL file.

    Usage::

        writer = TelemetryWriter(path, kind="campaign", total=len(jobs))
        try:
            values = run_recorded(runner, jobs, writer)
        finally:
            writer.close()

    Batched drivers call :meth:`wrap` with the batch's global start
    index, run the wrapped jobs, then :meth:`record` each batch; lines
    append in completion order (canonicalization sorts them anyway).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        kind: str,
        total: int,
        workers: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.path = Path(path)
        header: dict[str, Any] = {
            "format": TELEMETRY_FORMAT,
            "kind": kind,
            "runs": total,
            "workers": workers,
        }
        if extra:
            header.update(extra)
        self._fh = self.path.open("w")
        self._write(header)

    def _write(self, record: dict[str, Any]) -> None:
        self._fh.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def wrap(self, jobs: Sequence[Any], start: int = 0) -> list[TelemetryJob]:
        return [TelemetryJob(job=j, index=start + i) for i, j in enumerate(jobs)]

    def record(
        self,
        results: Sequence[TelemetryResult],
        retries: Sequence[int] | None = None,
    ) -> list[Any]:
        """Write one line per wrapped result; return the unwrapped values
        in the order given (submission order)."""
        values: list[Any] = []
        for i, res in enumerate(results):
            self._write({
                "kind": "job",
                "index": res.index,
                "outcome": outcome_class(res.value),
                "cache": res.cached,
                "t_start": res.t_start,
                "t_end": res.t_end,
                "wall_s": res.wall_s,
                "worker": res.worker,
                "retries": (retries[i] if retries is not None
                            and i < len(retries) else 0),
            })
            values.append(res.value)
        return values

    def record_workers(self, stats: Sequence[dict[str, Any]]) -> None:
        """Write one ``kind: "worker"`` line per remote worker.

        Emitted by distributed sweeps (``RemoteRunner.worker_stats()``):
        transport-level telemetry — chunks, rtt, bytes shipped raw vs
        on the wire, worker-side cache hits — that per-job lines cannot
        carry.  Entirely placement/wall-time dependent, so the whole
        line is volatile and :func:`canonical_lines` drops it (a serial
        run of the same sweep has no worker lines to match).
        """
        for s in stats:
            rec = {"kind": "worker"}
            rec.update(s)
            self._write(rec)

    def close(self) -> None:
        self._fh.close()


def runner_worker_stats(runner: Any) -> list[dict[str, Any]]:
    """Per-worker transport stats from *runner*, if it (or the runner it
    wraps, e.g. under ``CachedRunner``) exposes ``worker_stats()`` —
    empty for serial/pool runners, one row per address for remote."""
    for r in (runner, getattr(runner, "inner", None)):
        fn = getattr(r, "worker_stats", None)
        if callable(fn):
            return list(fn())
    return []


def run_recorded(
    runner: Any, jobs: Sequence[Any], writer: TelemetryWriter
) -> list[Any]:
    """Run *jobs* through *runner* with telemetry; return unwrapped values."""
    wrapped = writer.wrap(jobs)
    results = runner.run(wrapped)
    values = writer.record(
        results, retries=getattr(runner, "job_retries", None)
    )
    writer.record_workers(runner_worker_stats(runner))
    return values


def run_recorded_stream(
    runner: Any, jobs: Any, writer: TelemetryWriter, *,
    window: int | None = None,
) -> Any:
    """Streaming :func:`run_recorded`: yield unwrapped values one at a
    time, writing each job's telemetry line as its result arrives.

    *jobs* may be any iterable (a lazy generator included) — it is
    wrapped and consumed incrementally through ``runner.run_stream``
    (*window* jobs in flight at most; ``None`` for the runner's
    default), so neither the job list nor the result list is ever
    materialized.  The runner's cumulative ``job_retries`` (indexed by
    global submission order, exactly like each result's ``index``)
    supplies the per-line retry counts, so the canonical stream matches
    a materialized :func:`run_recorded` byte for byte.
    """
    def _wrapped():
        for i, job in enumerate(jobs):
            yield TelemetryJob(job=job, index=i)

    for res in runner.run_stream(_wrapped(), window=window):
        retries = getattr(runner, "job_retries", None)
        count = (
            retries[res.index]
            if retries is not None and res.index < len(retries)
            else 0
        )
        writer.record([res], retries=[count])
        yield res.value
    writer.record_workers(runner_worker_stats(runner))


# ----------------------------------------------------------------------
# Reading, canonicalization, aggregation
# ----------------------------------------------------------------------


def read_telemetry(path: str | Path) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file (header first, then job lines)."""
    records = []
    for ln in Path(path).read_text().splitlines():
        if ln.strip():
            records.append(json.loads(ln))
    if not records:
        raise ValueError(f"{path}: empty telemetry file")
    fmt = records[0].get("format")
    if fmt != TELEMETRY_FORMAT:
        raise ValueError(
            f"{path}: unsupported telemetry format {fmt!r} "
            f"(want {TELEMETRY_FORMAT!r})"
        )
    return records


def telemetry_errors(path: str | Path) -> list[str]:
    """Schema-validate a telemetry file (empty list == valid)."""
    try:
        records = read_telemetry(path)
    except (ValueError, json.JSONDecodeError) as exc:
        return [str(exc)]
    errors: list[str] = []
    header, body = records[0], records[1:]
    jobs = [rec for rec in body if rec.get("kind") == "job"]
    declared = header.get("runs")
    if not isinstance(declared, int):
        errors.append("header: runs missing or not an int")
    elif declared != len(jobs):
        errors.append(f"header declares {declared} runs, file has {len(jobs)}")
    line_no = {id(rec): i for i, rec in enumerate(body, start=2)}
    for rec in body:
        if rec.get("kind") == "job":
            continue
        where = f"line {line_no[id(rec)]}"
        if rec.get("kind") != "worker":
            errors.append(f"{where}: kind != 'job'")
            continue
        # Worker lines: transport telemetry from distributed sweeps.
        if not isinstance(rec.get("worker"), str) or not rec.get("worker"):
            errors.append(f"{where}: worker line missing worker address")
        for field_ in ("chunks", "jobs", "bytes_out", "bytes_in"):
            if not isinstance(rec.get(field_), int):
                errors.append(
                    f"{where}: worker {field_} missing or not an int"
                )
    seen: set[int] = set()
    for rec in jobs:
        where = f"line {line_no[id(rec)]}"
        idx = rec.get("index")
        if not isinstance(idx, int):
            errors.append(f"{where}: index missing or not an int")
        elif idx in seen:
            errors.append(f"{where}: duplicate index {idx}")
        else:
            seen.add(idx)
        if rec.get("outcome") not in ("ok", "hang", "violation", "abort"):
            errors.append(f"{where}: bad outcome {rec.get('outcome')!r}")
        if rec.get("cache") not in (None, "hit", "miss"):
            errors.append(f"{where}: bad cache {rec.get('cache')!r}")
        for field in ("t_start", "t_end", "wall_s"):
            if not isinstance(rec.get(field), (int, float)):
                errors.append(f"{where}: {field} missing or not a number")
        if not isinstance(rec.get("worker"), int):
            errors.append(f"{where}: worker missing or not an int")
        if not isinstance(rec.get("retries"), int):
            errors.append(f"{where}: retries missing or not an int")
    return errors


def canonical_lines(path: str | Path) -> list[str]:
    """The determinism view: volatile fields dropped, lines sorted.

    Two runs of the same sweep — serial, pooled, any worker count —
    produce identical canonical lines (CI diffs them).
    """
    lines = []
    for rec in read_telemetry(path):
        if rec.get("kind") == "worker":
            # Transport telemetry is placement-dependent through and
            # through (addresses, rtt, byte counts): the whole line is
            # volatile.  A serial run of the same sweep has no worker
            # lines, so canonical identity requires dropping them.
            continue
        kept = {k: v for k, v in rec.items() if k not in VOLATILE_KEYS}
        lines.append(json.dumps(kept, sort_keys=True, separators=(",", ":")))
    return sorted(lines)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return 0.0
    k = max(0, min(len(sorted_values) - 1,
                   int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[k]


@dataclass
class TelemetrySummary:
    """Offline aggregate of one telemetry stream."""

    kind: str
    runs: int
    outcomes: dict[str, int]
    wall_percentiles: dict[str, float]
    slowest: list[tuple[int, float, str]]  # (index, wall_s, outcome)
    workers: dict[int, dict[str, float]]  # pid -> {jobs, busy_s}
    cache: dict[str, int]  # hit/miss/uncached counts
    retries: int
    #: Transport rows from distributed sweeps (one per worker address);
    #: empty for serial/pooled streams.
    remote: list[dict[str, Any]] = dataclasses.field(default_factory=list)

    def format(self) -> str:
        lines = [f"telemetry: {self.kind} sweep, {self.runs} job(s)"]
        hist = ", ".join(
            f"{k}={v}" for k, v in sorted(self.outcomes.items())
        ) or "none"
        lines.append(f"outcomes: {hist}")
        p = self.wall_percentiles
        lines.append(
            "job wall time: "
            f"p50={p['p50'] * 1e3:.2f}ms p90={p['p90'] * 1e3:.2f}ms "
            f"p99={p['p99'] * 1e3:.2f}ms max={p['max'] * 1e3:.2f}ms"
        )
        if self.slowest:
            lines.append("slowest jobs:")
            for idx, wall, outcome in self.slowest:
                lines.append(
                    f"  [{idx:4d}] {wall * 1e3:8.2f}ms  {outcome}"
                )
        if self.workers:
            lines.append(f"workers: {len(self.workers)}")
            for pid, w in sorted(self.workers.items()):
                lines.append(
                    f"  pid {pid}: {int(w['jobs'])} job(s), "
                    f"{w['busy_s'] * 1e3:.2f}ms busy"
                )
        total_cached = self.cache["hit"] + self.cache["miss"]
        if total_cached:
            rate = self.cache["hit"] / total_cached
            lines.append(
                f"cache: {self.cache['hit']} hit(s), "
                f"{self.cache['miss']} miss(es) "
                f"({rate:.0%} hit rate)"
            )
        else:
            lines.append("cache: off")
        lines.append(f"chunk retries: {self.retries}")
        if self.remote:
            lines.append(f"remote workers: {len(self.remote)}")
            for s in self.remote:
                ratio = s.get("compression")
                lines.append(
                    f"  {s.get('worker', '?')}: "
                    f"{int(s.get('chunks', 0))} chunk(s), "
                    f"{int(s.get('jobs', 0))} job(s), "
                    f"rtt {float(s.get('rtt_s', 0.0)) * 1e3:.2f}ms, "
                    f"{int(s.get('bytes_out', 0)) + int(s.get('bytes_in', 0))}B "
                    f"on the wire"
                    + (f" ({ratio}x compressed)" if ratio else "")
                    + f", cache_hits={int(s.get('cache_hits', 0))}"
                )
        return "\n".join(lines)


def summarize(
    records: list[dict[str, Any]], *, top: int = 5
) -> TelemetrySummary:
    """Aggregate parsed telemetry records into a :class:`TelemetrySummary`."""
    header, body = records[0], records[1:]
    jobs = [rec for rec in body if rec.get("kind") == "job"]
    remote = [
        {k: v for k, v in rec.items() if k != "kind"}
        for rec in body
        if rec.get("kind") == "worker"
    ]
    outcomes: dict[str, int] = {}
    cache = {"hit": 0, "miss": 0, "uncached": 0}
    workers: dict[int, dict[str, float]] = {}
    walls: list[float] = []
    retries = 0
    for rec in jobs:
        outcomes[rec["outcome"]] = outcomes.get(rec["outcome"], 0) + 1
        cached = rec.get("cache")
        cache["hit" if cached == "hit"
              else "miss" if cached == "miss" else "uncached"] += 1
        wall = float(rec.get("wall_s", 0.0))
        walls.append(wall)
        pid = int(rec.get("worker", 0))
        w = workers.setdefault(pid, {"jobs": 0.0, "busy_s": 0.0})
        w["jobs"] += 1
        w["busy_s"] += wall
        retries += int(rec.get("retries", 0))
    ordered = sorted(walls)
    slowest = sorted(
        ((rec["index"], float(rec.get("wall_s", 0.0)), rec["outcome"])
         for rec in jobs),
        key=lambda t: -t[1],
    )[:top]
    return TelemetrySummary(
        kind=str(header.get("kind", "?")),
        runs=len(jobs),
        outcomes=outcomes,
        wall_percentiles={
            "p50": _percentile(ordered, 0.50),
            "p90": _percentile(ordered, 0.90),
            "p99": _percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else 0.0,
        },
        slowest=slowest,
        workers=workers,
        cache=cache,
        retries=retries,
        remote=remote,
    )


def summary_dict(summary: TelemetrySummary) -> dict[str, Any]:
    """A JSON-ready view of a :class:`TelemetrySummary` (``repro report
    --format json``).  Tuples become objects, pid keys become strings,
    and a ``format`` tag versions the shape."""
    return {
        "format": "repro.report/1",
        "kind": summary.kind,
        "runs": summary.runs,
        "outcomes": dict(sorted(summary.outcomes.items())),
        "wall_percentiles": summary.wall_percentiles,
        "slowest": [
            {"index": idx, "wall_s": wall, "outcome": outcome}
            for idx, wall, outcome in summary.slowest
        ],
        "workers": {
            str(pid): row for pid, row in sorted(summary.workers.items())
        },
        "cache": summary.cache,
        "retries": summary.retries,
        "remote": summary.remote,
    }
