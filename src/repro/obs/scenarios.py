"""Named scenario presets for ``repro trace``.

The paper's message-sequence figures each correspond to one small,
deterministic run; these presets rebuild them with kernel metrics
enabled so the exporters have both a trace and counter timelines:

=========  ==========================================================
``fig2``   clean baseline ring (4 ranks, 3 iterations, no failures)
``fig6``   naive receive + root-bcast termination, rank 2 killed at
           its 2nd ``post_recv`` window — the proven hang
``fig7``   ft_marker ring under the same kill — failure detected,
           ring repaired, run completes
``fig8``   ft_no_marker ring, rank 2 killed at its 2nd ``post_send``
           with nonzero detection latency — the duplicate pathology
``ring``/``heat``/``farm``/``abft``  the bundled workloads at their
           CLI default sizes, failure-free
``shrink``/``replication``/``restart``  the fig7 shape (4 logical
           ranks, 4 iterations, rank 2 fail-stopped mid-run) driven by
           the alternative recovery families of :mod:`repro.protocols`
           instead of run-through stabilization
=========  ==========================================================

Each preset returns ``(sim, main, nprocs)``; run with
``on_deadlock="return"`` (fig6 hangs by design).
"""

from __future__ import annotations

from typing import Any

from ..simmpi import Simulation

__all__ = ["SCENARIOS", "make_scenario"]

#: Preset names, in help-text order.
SCENARIOS = (
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "ring",
    "heat",
    "farm",
    "abft",
    "shrink",
    "replication",
    "restart",
)

#: Preset name -> protocol family, for the recovery-protocol presets.
_PROTOCOL_PRESETS = {
    "shrink": "shrink_repair",
    "replication": "replication",
    "restart": "partial_restart",
}


def make_scenario(
    name: str,
    *,
    metrics: bool = True,
    trace_cap: int | None = None,
) -> tuple[Simulation, Any, int]:
    """Build the named preset; returns ``(sim, main, nprocs)``."""
    from ..core import (
        RingConfig,
        RingVariant,
        Termination,
        make_ring_main,
    )
    from ..faults import FailureSchedule

    def sim_for(nprocs: int, **kw: Any) -> Simulation:
        return Simulation(
            nprocs=nprocs, metrics=metrics, trace_cap=trace_cap, **kw
        )

    if name == "fig2":
        cfg = RingConfig(max_iter=3, variant=RingVariant.BASELINE)
        return sim_for(4), make_ring_main(cfg), 4

    if name in ("fig6", "fig7", "fig8"):
        variant = {
            "fig6": RingVariant.NAIVE,
            "fig7": RingVariant.FT_MARKER,
            "fig8": RingVariant.FT_NO_MARKER,
        }[name]
        probe = "post_send" if name == "fig8" else "post_recv"
        latency = 2e-6 if name == "fig8" else 0.0
        cfg = RingConfig(
            max_iter=4, variant=variant, termination=Termination.ROOT_BCAST
        )
        sim = sim_for(4, detection_latency=latency)
        sched = FailureSchedule()
        sched.at_probe(2, probe, 2)
        sim.add_injector(sched.injector())
        return sim, make_ring_main(cfg), 4

    if name == "ring":
        cfg = RingConfig(max_iter=6)
        return sim_for(8), make_ring_main(cfg), 8

    if name == "heat":
        from ..apps import HeatConfig, make_heat_main

        return sim_for(6), make_heat_main(HeatConfig()), 6

    if name == "farm":
        from ..apps import FarmConfig, make_farm_mains

        return sim_for(5), make_farm_mains(FarmConfig(), 5), 5

    if name == "abft":
        from ..apps import AbftConfig, make_abft_main

        return sim_for(5), make_abft_main(AbftConfig()), 5

    if name in _PROTOCOL_PRESETS:
        from ..faults.injector import KillAtTime
        from ..protocols import ProtocolRingConfig, ring_mains

        nproc, main = ring_mains(
            _PROTOCOL_PRESETS[name], ProtocolRingConfig(max_iter=4), 4
        )
        sim = sim_for(nproc, detection_latency=2e-6)
        sim.add_injector(KillAtTime(rank=2, time=1.5e-5))
        return sim, main, nproc

    raise ValueError(f"unknown scenario {name!r} (known: {SCENARIOS})")
