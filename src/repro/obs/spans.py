"""Orchestration span tracing for the sweep pipeline.

PR 5 made the *kernel* observable (Perfetto traces, per-rank metrics);
this module gives the *pipeline around it* — scheduler rounds, chunk
dispatch, ``repro.remote/1`` wire frames, worker-side execution, batched
cache lookups — the same treatment.  A :class:`SpanRecorder` collects
lightweight :class:`Span` records (monotonic start + duration, parent
id, category, free-form attrs) from instrumentation sites in
``repro.parallel`` and ``repro.cache``; workers record their own spans
and ship them back inside the ``done`` frame, where the parent absorbs
them under the dispatching chunk span (one track per worker).

Recording is strictly opt-in and zero-cost when off: every
instrumentation site does one thread-local read (:func:`active`) and a
``None`` check, the exact pattern the kernel's zero-cost-disabled
tracing uses (pinned by ``bench_remote.py``'s spans-overhead gate).
The recorder is installed per *thread* (:func:`recording`) so an
in-process worker server — which executes chunks on its own thread —
never leaks spans into the parent's recorder.

Two stable export forms:

* ``repro.spans/1`` JSONL (:func:`write_spans` / :func:`read_spans` /
  :func:`span_errors`): header line + one compact JSON object per span.
  :func:`canonical_spans` strips the volatile fields (times, ids,
  tracks) and keeps only the placement-independent ``job`` spans, so a
  serial, pooled, and remote sweep of the same jobs canonicalize to
  byte-identical text — the transport-level analogue of telemetry's
  ``canonical_lines``.
* Perfetto (:func:`spans_to_perfetto`): the pipeline as a process track
  (``pid=1``, beside the kernel's ``pid=0``) with one thread track per
  execution site (scheduler, each worker) and flow arrows
  chunk-dispatch → worker-exec → merge, validated by
  :func:`repro.obs.export.perfetto_errors`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "CANONICAL_CATEGORIES",
    "SPANS_FORMAT",
    "SPAN_CATEGORIES",
    "SPAN_VOLATILE_KEYS",
    "Span",
    "SpanRecorder",
    "active",
    "canonical_spans",
    "dumps_spans",
    "outcome_label",
    "read_spans",
    "recording",
    "span_errors",
    "spans_to_perfetto",
    "spans_to_records",
    "write_spans",
]

#: Header format tag; bump when the line layout changes.
SPANS_FORMAT = "repro.spans/1"

#: The span taxonomy (documented in docs/observability.md §5).
SPAN_CATEGORIES = (
    "sweep",      # one materialized run() batch through a runner
    "round",      # one TransportRunner scheduling round
    "chunk",      # chunk dispatch: submit -> done/lost, parent side
    "exec",       # chunk execution, worker side (absorbed)
    "job",        # one job inside a chunk/serial loop (canonical)
    "merge",      # submission-order merge of a completed chunk
    "net",        # repro.remote/1 frame send/recv events
    "heartbeat",  # liveness probe of a silent worker
    "cache",      # one RunCache get_many/put_many batch
)

#: Fields dropped by :func:`canonical_spans`: timings, recorder-local
#: ids, and execution placement all legitimately differ across runs and
#: transports.
SPAN_VOLATILE_KEYS = frozenset({"t", "dur", "id", "parent", "track"})

#: Categories that survive canonicalization.  Only ``job`` spans are
#: placement-independent: serial sweeps have no rounds or frames, and
#: chunk boundaries move with chunk_size/worker count — but every job
#: runs exactly once with the same index and outcome everywhere.
CANONICAL_CATEGORIES = frozenset({"job"})

_OUTCOME_CLASSES = frozenset({"ok", "hang", "violation", "abort"})

_REQUIRED_KEYS = frozenset(
    {"id", "parent", "name", "cat", "t", "dur", "track", "attrs"}
)


def outcome_label(value: Any) -> str:
    """The telemetry outcome class of a job's return value, unwrapping
    the :class:`~repro.obs.telemetry.TelemetryResult` envelope so spans
    and telemetry classify a run identically."""
    from .telemetry import TelemetryResult, outcome_class

    if isinstance(value, TelemetryResult):
        value = value.value
    return outcome_class(value)


@dataclass
class Span:
    """One timed operation.  ``t`` is seconds relative to the owning
    recorder's epoch; ``dur`` is 0.0 for instant events and open spans."""

    __slots__ = ("id", "name", "cat", "t", "dur", "parent", "track", "attrs")

    id: int
    name: str
    cat: str
    t: float
    dur: float
    parent: int | None
    track: str
    attrs: dict[str, Any]


class SpanRecorder:
    """Collects spans for one sweep (or one worker-side chunk).

    Not thread-safe by design: each recorder belongs to the single
    thread it was installed on via :func:`recording`.  Workers create
    their own recorder per chunk and export it raw
    (:meth:`export_raw`); the parent splices those spans in with
    :meth:`chunk_absorb`.
    """

    def __init__(self, kind: str = "sweep", clock=time.monotonic) -> None:
        self.kind = kind
        self._clock = clock
        self._t0 = clock()
        self.spans: list[Span] = []
        #: Global index of the first job in the batch currently being
        #: run — ``SweepRunner.run_stream`` advances it per window so
        #: job spans carry campaign-global indices in streamed mode.
        self.index_offset = 0
        self._last_id = 0
        self._last_flow = 0
        self._open_chunks: dict[int, Span] = {}

    def now(self) -> float:
        return self._clock() - self._t0

    def begin(
        self,
        name: str,
        cat: str,
        *,
        parent: int | None = None,
        track: str = "sweep",
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        self._last_id += 1
        span = Span(
            id=self._last_id,
            name=name,
            cat=cat,
            t=self.now(),
            dur=0.0,
            parent=parent,
            track=track,
            attrs=dict(attrs) if attrs else {},
        )
        self.spans.append(span)
        return span

    def end(self, span: Span) -> Span:
        span.dur = max(0.0, self.now() - span.t)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        cat: str,
        *,
        parent: int | None = None,
        track: str = "sweep",
        attrs: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        sp = self.begin(name, cat, parent=parent, track=track, attrs=attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    def event(
        self,
        name: str,
        cat: str,
        *,
        parent: int | None = None,
        track: str = "sweep",
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """An instant: a span with zero duration."""
        return self.begin(name, cat, parent=parent, track=track, attrs=attrs)

    # -- chunk lifecycle (parent side) ---------------------------------

    def chunk_begin(self, start: int, njobs: int) -> Span:
        """Open the dispatch span for the chunk at batch offset *start*.

        Keyed by *start*: chunk starts are unique within a round, and
        rounds are sequential, so at most one dispatch per start is
        open at a time.  Each dispatch gets a fresh flow id — a retried
        chunk is a *new* dispatch, keeping every flow id's s/f arrows
        unique in the Perfetto export.
        """
        self._last_flow += 1
        span = self.begin(
            "chunk.dispatch",
            "chunk",
            attrs={
                "start": start + self.index_offset,
                "jobs": njobs,
                "flow": self._last_flow,
            },
        )
        self._open_chunks[start] = span
        return span

    def chunk_absorb(
        self, start: int, raw_spans: Iterable[dict[str, Any]], *, track: str
    ) -> None:
        """Splice a worker's exported spans in under the open dispatch
        span for *start*, onto the per-worker *track*.

        Worker ids are remapped to this recorder's sequence (raw lists
        are begin-ordered, so parents precede children); worker times
        are re-anchored at the dispatch timestamp (the two clock
        domains share no epoch — "starts when dispatched" is the honest
        approximation).  The worker's root exec span inherits the
        dispatch's flow id, closing the chunk→worker→merge arrows.
        """
        dispatch = self._open_chunks.get(start)
        anchor = dispatch.t if dispatch is not None else self.now()
        root_parent = dispatch.id if dispatch is not None else None
        flow = dispatch.attrs.get("flow") if dispatch is not None else None
        mapping: dict[int, int] = {}
        for raw in raw_spans:
            self._last_id += 1
            mapping[raw["id"]] = self._last_id
            attrs = dict(raw.get("attrs") or {})
            raw_parent = raw.get("parent")
            if raw_parent is None:
                parent = root_parent
                if flow is not None and raw.get("cat") == "exec":
                    attrs["flow"] = flow
            else:
                parent = mapping.get(raw_parent, root_parent)
            self.spans.append(Span(
                id=self._last_id,
                name=raw["name"],
                cat=raw["cat"],
                t=anchor + raw["t"],
                dur=raw["dur"],
                parent=parent,
                track=track,
                attrs=attrs,
            ))

    def chunk_end(self, start: int, status: str) -> Span | None:
        """Close the dispatch span for *start* with ``status`` ("done"
        or "lost").  Returns ``None`` if no dispatch is open (already
        closed, or opened by a different recorder)."""
        span = self._open_chunks.pop(start, None)
        if span is None:
            return None
        span.attrs["status"] = status
        return self.end(span)

    def chunk_merge(self, dispatch: Span) -> Span:
        """Mark the submission-order merge of a completed chunk (the
        flow arrow's finish point)."""
        return self.event(
            "chunk.merge",
            "merge",
            attrs={
                "start": dispatch.attrs.get("start"),
                "flow": dispatch.attrs.get("flow"),
            },
        )

    # -- export --------------------------------------------------------

    def export_raw(self) -> list[dict[str, Any]]:
        """Wire form for worker→parent shipping: plain dicts, no track
        (the parent assigns one per worker on absorb)."""
        return [
            {
                "id": s.id,
                "parent": s.parent,
                "name": s.name,
                "cat": s.cat,
                "t": s.t,
                "dur": s.dur,
                "attrs": s.attrs,
            }
            for s in self.spans
        ]


# ----------------------------------------------------------------------
# The active recorder: one thread-local slot
# ----------------------------------------------------------------------

_STATE = threading.local()


def active() -> SpanRecorder | None:
    """The recorder installed on this thread, or ``None``.  This is the
    whole disabled-path cost: one thread-local read."""
    return getattr(_STATE, "recorder", None)


@contextmanager
def recording(recorder: SpanRecorder | None = None) -> Iterator[SpanRecorder]:
    """Install *recorder* (or a fresh one) as this thread's active
    recorder for the duration of the block."""
    if recorder is None:
        recorder = SpanRecorder()
    previous = getattr(_STATE, "recorder", None)
    _STATE.recorder = recorder
    try:
        yield recorder
    finally:
        _STATE.recorder = previous


# ----------------------------------------------------------------------
# repro.spans/1 JSONL
# ----------------------------------------------------------------------


def spans_to_records(recorder: SpanRecorder) -> list[dict[str, Any]]:
    """Header + one dict per span, in recording order."""
    header = {
        "format": SPANS_FORMAT,
        "kind": recorder.kind,
        "spans": len(recorder.spans),
    }
    body = [
        {
            "id": s.id,
            "parent": s.parent,
            "name": s.name,
            "cat": s.cat,
            "t": round(s.t, 9),
            "dur": round(s.dur, 9),
            "track": s.track,
            "attrs": s.attrs,
        }
        for s in recorder.spans
    ]
    return [header] + body


def _records(source: Any) -> list[dict[str, Any]]:
    if isinstance(source, SpanRecorder):
        return spans_to_records(source)
    if isinstance(source, (str, Path)):
        return read_spans(source)
    return list(source)


def dumps_spans(source: Any) -> str:
    """Serialize a recorder (or record list) as ``repro.spans/1`` JSONL:
    compact sorted-key lines, byte-stable for identical recordings."""
    return "".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
        for r in _records(source)
    )


def write_spans(path: Any, source: Any) -> None:
    Path(path).write_text(dumps_spans(source))


def read_spans(source: Any) -> list[dict[str, Any]]:
    """Parse a ``repro.spans/1`` file (or JSONL text) into records."""
    if isinstance(source, str) and "\n" in source:
        text = source
    else:
        text = Path(source).read_text()
    return [json.loads(ln) for ln in text.splitlines() if ln.strip()]


def span_errors(source: Any) -> list[str]:
    """Validate a span stream; returns human-readable problems (empty
    list == valid).  Mirrors ``telemetry_errors``: header contract,
    exact per-line schema, id uniqueness, parent resolution, and the
    job-span attrs every canonical consumer relies on."""
    try:
        records = _records(source)
    except OSError as exc:
        return [f"unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"invalid JSON: {exc}"]
    if not records:
        return ["empty file (missing header)"]
    header = records[0]
    if not isinstance(header, dict) or header.get("format") != SPANS_FORMAT:
        return [f"header: format must be {SPANS_FORMAT!r}"]
    errors: list[str] = []
    body = records[1:]
    declared = header.get("spans")
    if not isinstance(declared, int) or declared != len(body):
        errors.append(
            f"header declares spans={declared!r}, stream has {len(body)}"
        )
    if not isinstance(header.get("kind"), str) or not header.get("kind"):
        errors.append("header: kind missing or empty")
    ids: set[int] = set()
    parents: list[tuple[str, int]] = []
    for n, sp in enumerate(body, start=2):
        where = f"line {n}"
        if not isinstance(sp, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = _REQUIRED_KEYS - sp.keys()
        extra = sp.keys() - _REQUIRED_KEYS
        if missing:
            errors.append(f"{where}: missing keys {sorted(missing)}")
        if extra:
            errors.append(f"{where}: unknown keys {sorted(extra)}")
        if missing:
            continue
        sid = sp["id"]
        if not isinstance(sid, int) or isinstance(sid, bool) or sid <= 0:
            errors.append(f"{where}: id must be a positive int")
        elif sid in ids:
            errors.append(f"{where}: duplicate id {sid}")
        else:
            ids.add(sid)
        if not isinstance(sp["name"], str) or not sp["name"]:
            errors.append(f"{where}: name missing or empty")
        if sp["cat"] not in SPAN_CATEGORIES:
            errors.append(f"{where}: unknown category {sp['cat']!r}")
        for key in ("t", "dur"):
            v = sp[key]
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: {key} must be a number >= 0")
        if not isinstance(sp["track"], str) or not sp["track"]:
            errors.append(f"{where}: track missing or empty")
        parent = sp["parent"]
        if parent is not None:
            if not isinstance(parent, int) or isinstance(parent, bool):
                errors.append(f"{where}: parent must be an int or null")
            else:
                parents.append((where, parent))
        attrs = sp["attrs"]
        if not isinstance(attrs, dict) or any(
            not isinstance(k, str) for k in attrs
        ):
            errors.append(f"{where}: attrs must be a string-keyed object")
            continue
        if sp["cat"] == "job":
            index = attrs.get("index")
            if not isinstance(index, int) or isinstance(index, bool) or index < 0:
                errors.append(f"{where}: job span needs int attrs.index >= 0")
            if attrs.get("outcome") not in _OUTCOME_CLASSES:
                errors.append(
                    f"{where}: job span outcome {attrs.get('outcome')!r} "
                    f"not in {sorted(_OUTCOME_CLASSES)}"
                )
    for where, parent in parents:
        if parent not in ids:
            errors.append(f"{where}: parent {parent} not in stream")
    return errors


def canonical_spans(source: Any) -> list[str]:
    """The transport-independent view: only :data:`CANONICAL_CATEGORIES`
    spans, volatile fields dropped, compact-JSON lines sorted.  A
    serial, pooled, and remote sweep of the same (uncached) jobs
    canonicalize byte-identically."""
    lines = []
    for sp in _records(source)[1:]:
        if not isinstance(sp, dict) or sp.get("cat") not in CANONICAL_CATEGORIES:
            continue
        kept = {k: v for k, v in sp.items() if k not in SPAN_VOLATILE_KEYS}
        lines.append(json.dumps(kept, sort_keys=True, separators=(",", ":")))
    return sorted(lines)


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------

#: Pipeline spans live on their own process track, beside pid=0 (the
#: kernel trace from repro.obs.export) when both are loaded in one UI.
_PIPELINE_PID = 1

_US = 1e6


def spans_to_perfetto(source: Any) -> dict[str, Any]:
    """Render a span stream as a Chrome Trace Event document: one
    thread track per execution site (``track`` string, first-appearance
    order), duration slices for every span, and s/t/f flow arrows
    linking each chunk dispatch through its worker exec to the merge.
    Passes :func:`repro.obs.export.perfetto_errors`."""
    records = _records(source)
    header = records[0] if records else {}
    spans = [sp for sp in records[1:] if isinstance(sp, dict)]

    tracks: dict[str, int] = {}
    for sp in spans:
        track = sp.get("track", "sweep")
        if track not in tracks:
            tracks[track] = len(tracks) + 1

    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PIPELINE_PID, "tid": 0,
        "args": {"name": "repro sweep pipeline"},
    }]
    for track, tid in tracks.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PIPELINE_PID,
            "tid": tid, "args": {"name": track},
        })

    flows: dict[int, dict[str, dict[str, Any]]] = {}
    for sp in spans:
        tid = tracks[sp.get("track", "sweep")]
        attrs = sp.get("attrs") or {}
        args = {"span": sp.get("id"), "parent": sp.get("parent")}
        args.update(attrs)
        events.append({
            "name": sp.get("name", "?"), "cat": sp.get("cat", "?"),
            "ph": "X", "pid": _PIPELINE_PID, "tid": tid,
            "ts": round(float(sp.get("t", 0.0)) * _US, 3),
            "dur": round(float(sp.get("dur", 0.0)) * _US, 3),
            "args": args,
        })
        flow = attrs.get("flow")
        if isinstance(flow, int):
            flows.setdefault(flow, {})[sp.get("cat", "?")] = sp

    # chunk -> exec -> merge arrows.  Only complete triples are emitted:
    # a lost dispatch has no exec/merge leg, and the validator requires
    # every flow id to carry exactly one 's' and one 'f'.
    for flow_id in sorted(flows):
        legs = flows[flow_id]
        if not {"chunk", "exec", "merge"} <= legs.keys():
            continue
        for ph, cat in (("s", "chunk"), ("t", "exec"), ("f", "merge")):
            sp = legs[cat]
            ev = {
                "name": "chunk", "cat": "flow", "ph": ph,
                "pid": _PIPELINE_PID, "tid": tracks[sp.get("track", "sweep")],
                "ts": round(float(sp.get("t", 0.0)) * _US, 3),
                "id": flow_id,
            }
            if ph == "f":
                ev["bp"] = "e"
            events.append(ev)

    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "producer": "repro.obs.spans",
            "kind": header.get("kind"),
            "spans": len(spans),
        },
        "traceEvents": events,
    }
