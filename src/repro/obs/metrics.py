"""Per-rank metrics timelines and the :class:`RunReport` summary.

Two sources feed the metrics layer:

* **Kernel hooks** — a :class:`KernelMetrics` object attached to
  ``Runtime.obs`` (``None`` unless the simulation was built with
  ``metrics=True``).  The kernel's hot paths guard every hook with
  ``if obs is not None:`` — the same zero-cost-when-disabled discipline
  the trace uses — so a plain run allocates *no* obs state at all.
  Hooks sample what the trace cannot reconstruct: event-queue depth at
  each executed event, posted/unexpected matching-queue depths,
  in-flight message count, the blocked-fiber count with per-rank blocked
  intervals, and consensus round timings.
* **The trace** — :func:`run_report` derives per-rank busy/blocked/
  failed time and detection/validate latencies from a finished
  :class:`~repro.simmpi.runtime.SimulationResult`, with or without
  kernel metrics (blocked time falls back to the recv-wait intervals
  recorded in the trace when no :class:`KernelMetrics` is present).

Nothing in this module imports the kernel, so ``repro.simmpi.runtime``
can lazily instantiate :class:`KernelMetrics` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["KernelMetrics", "RankSummary", "RunReport", "Series", "run_report"]


class Series:
    """One named time series: parallel ``times``/``values`` lists."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.times, self.values))

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float | None:
        return self.values[-1] if self.values else None

    def maximum(self) -> float | None:
        return max(self.values) if self.values else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Series({self.name!r}, n={len(self.times)})"


class KernelMetrics:
    """Kernel-side metric accumulator (``Runtime.obs``).

    Every method is a hot-path hook; keep them allocation-light.  The
    kernel only calls them behind an ``if obs is not None:`` guard, so a
    run without ``metrics=True`` pays a single attribute read per guard.
    """

    __slots__ = (
        "nprocs",
        "event_queue",
        "in_flight",
        "blocked",
        "posted",
        "unexpected",
        "blocked_intervals",
        "_blocked_since",
        "_in_flight_now",
        "_blocked_now",
        "_consensus_open",
        "consensus_rounds",
    )

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        #: Global event-queue depth, sampled at each executed event.
        self.event_queue = Series("event_queue")
        #: Messages injected but not yet delivered/dropped.
        self.in_flight = Series("in_flight")
        #: Number of blocked fibers over time.
        self.blocked = Series("blocked_fibers")
        #: Per-rank posted-receive queue depth.
        self.posted = [Series(f"posted_r{r}") for r in range(nprocs)]
        #: Per-rank unexpected-message queue depth.
        self.unexpected = [Series(f"unexpected_r{r}") for r in range(nprocs)]
        #: Per-rank closed blocked intervals as (start, end) pairs.
        self.blocked_intervals: list[list[tuple[float, float]]] = [
            [] for _ in range(nprocs)
        ]
        #: Open blocked interval start per rank (None when runnable).
        self._blocked_since: list[float | None] = [None] * nprocs
        self._in_flight_now = 0
        self._blocked_now = 0
        #: (rank, key) -> (first-round entry time, rounds entered).
        self._consensus_open: dict[tuple[int, Any], tuple[float, int]] = {}
        #: Closed consensus instances: (rank, start, duration, rounds, how).
        self.consensus_rounds: list[tuple[int, float, float, int, str]] = []

    # -- kernel hooks ------------------------------------------------------

    def event_executed(self, time: float, depth: int) -> None:
        self.event_queue.append(time, depth)

    def message_posted(self, time: float) -> None:
        self._in_flight_now += 1
        self.in_flight.append(time, self._in_flight_now)

    def message_done(self, time: float) -> None:
        self._in_flight_now -= 1
        self.in_flight.append(time, self._in_flight_now)

    def queue_sample(
        self, rank: int, time: float, posted: int, unexpected: int
    ) -> None:
        self.posted[rank].append(time, posted)
        self.unexpected[rank].append(time, unexpected)

    def fiber_blocked(self, rank: int, time: float) -> None:
        if self._blocked_since[rank] is None:
            self._blocked_since[rank] = time
            self._blocked_now += 1
            self.blocked.append(time, self._blocked_now)

    def fiber_woken(self, rank: int, time: float) -> None:
        since = self._blocked_since[rank]
        if since is not None:
            self._blocked_since[rank] = None
            self.blocked_intervals[rank].append((since, time))
            self._blocked_now -= 1
            self.blocked.append(time, self._blocked_now)

    def consensus_round(
        self, rank: int, key: Any, round_no: int, time: float
    ) -> None:
        k = (rank, key)
        start, _rounds = self._consensus_open.get(k, (time, 0))
        self._consensus_open[k] = (start, round_no)

    def consensus_decided(
        self, rank: int, key: Any, time: float, how: str, round_no: int
    ) -> None:
        k = (rank, key)
        start, rounds = self._consensus_open.pop(k, (time, round_no))
        self.consensus_rounds.append(
            (rank, start, time - start, max(rounds, round_no), how)
        )

    # -- post-run views ----------------------------------------------------

    def blocked_time(self, rank: int, *, until: float) -> float:
        """Total blocked virtual time of *rank*, closing any open interval
        at *until* (deadlocked or killed-while-blocked fibers never wake)."""
        total = sum(e - s for s, e in self.blocked_intervals[rank])
        since = self._blocked_since[rank]
        if since is not None and until > since:
            total += until - since
        return total

    def counter_series(self) -> list[Series]:
        """Every series, flat — the Perfetto exporter's counter source."""
        return (
            [self.event_queue, self.in_flight, self.blocked]
            + self.posted
            + self.unexpected
        )


# ----------------------------------------------------------------------
# RunReport: the per-rank summary
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RankSummary:
    """Busy/blocked/failed accounting for one rank."""

    rank: int
    state: str
    busy_s: float
    blocked_s: float
    failed_s: float


@dataclass
class RunReport:
    """Per-rank timing breakdown plus protocol latencies of one run."""

    nprocs: int
    final_time: float
    ranks: list[RankSummary]
    #: (observer rank, failed rank, latency) per DETECT event.
    detection_latencies: list[tuple[int, int, float]] = field(
        default_factory=list
    )
    #: (rank, instance, latency) per completed collective validate.
    validate_latencies: list[tuple[int, Any, float]] = field(
        default_factory=list
    )
    #: (rank, start, duration, rounds, how) per decided consensus
    #: instance (kernel metrics only; empty without ``metrics=True``).
    consensus: list[tuple[int, float, float, int, str]] = field(
        default_factory=list
    )

    def format(self) -> str:
        lines = [
            f"run report: {self.nprocs} rank(s), "
            f"final virtual time {self.final_time * 1e6:.3f} us"
        ]
        lines.append(
            f"{'rank':>4}  {'state':<8} {'busy(us)':>10} "
            f"{'blocked(us)':>12} {'failed(us)':>11}"
        )
        for r in self.ranks:
            lines.append(
                f"{r.rank:>4}  {r.state:<8} {r.busy_s * 1e6:>10.3f} "
                f"{r.blocked_s * 1e6:>12.3f} {r.failed_s * 1e6:>11.3f}"
            )
        if self.detection_latencies:
            worst = max(lat for _o, _f, lat in self.detection_latencies)
            lines.append(
                f"detections: {len(self.detection_latencies)} "
                f"(max latency {worst * 1e6:.3f} us)"
            )
        if self.validate_latencies:
            worst = max(lat for _r, _i, lat in self.validate_latencies)
            lines.append(
                f"validates: {len(self.validate_latencies)} "
                f"(max latency {worst * 1e6:.3f} us)"
            )
        if self.consensus:
            worst = max(dur for _r, _s, dur, _n, _h in self.consensus)
            rounds = max(n for _r, _s, _d, n, _h in self.consensus)
            lines.append(
                f"consensus: {len(self.consensus)} decision(s), "
                f"max {rounds} round(s), max {worst * 1e6:.3f} us"
            )
        return "\n".join(lines)


def _recv_wait_intervals(trace: Any, nprocs: int) -> list[list[tuple[float, float]]]:
    """Blocked-on-receive intervals per rank, reconstructed from the
    trace (``RECV_POST`` -> ``RECV_COMPLETE``/``REQ_ERROR`` by req id)."""
    from ..simmpi.trace import TraceKind

    posts: dict[tuple[int, int], float] = {}
    out: list[list[tuple[float, float]]] = [[] for _ in range(nprocs)]
    events = trace.filter(
        kind=(TraceKind.RECV_POST, TraceKind.RECV_COMPLETE, TraceKind.REQ_ERROR)
    )
    for ev in events:
        req = ev.detail.get("req")
        if req is None:
            continue
        key = (ev.rank, req)
        if ev.kind is TraceKind.RECV_POST:
            posts[key] = ev.time
        else:
            start = posts.pop(key, None)
            if start is not None and ev.rank < nprocs:
                out[ev.rank].append((start, ev.time))
    return out


def run_report(result: Any, nprocs: int | None = None) -> RunReport:
    """Summarize a finished :class:`~repro.simmpi.runtime.SimulationResult`.

    Works from the trace alone; when the run was built with
    ``metrics=True`` the kernel's blocked intervals and consensus timings
    sharpen the blocked-time accounting and populate :attr:`RunReport.consensus`.
    """
    from ..simmpi.trace import TraceKind

    if nprocs is None:
        nprocs = len(result.outcomes)
    final = result.final_time
    metrics = getattr(result, "metrics", None)
    trace = result.trace

    failure_at: dict[int, float] = {}
    for ev in trace.filter(kind=TraceKind.FAILURE):
        failure_at.setdefault(ev.rank, ev.time)

    if metrics is not None:
        blocked = [
            metrics.blocked_time(r, until=failure_at.get(r, final))
            for r in range(nprocs)
        ]
    else:
        waits = _recv_wait_intervals(trace, nprocs)
        blocked = []
        for r in range(nprocs):
            end = failure_at.get(r, final)
            total = sum(min(e, end) - s for s, e in waits[r] if s < end)
            # A hung or killed rank's last recv never completes; its trace
            # interval is open, so charge the wait up to the rank's end.
            open_posts = {
                ev.detail.get("req"): ev.time
                for ev in trace.filter(kind=TraceKind.RECV_POST, rank=r)
            }
            for ev in trace.filter(
                kind=(TraceKind.RECV_COMPLETE, TraceKind.REQ_ERROR), rank=r
            ):
                open_posts.pop(ev.detail.get("req"), None)
            total += sum(end - t for t in open_posts.values() if t < end)
            blocked.append(total)

    ranks = []
    for out in result.outcomes[:nprocs]:
        r = out.rank
        end = failure_at.get(r, final)
        failed_s = final - failure_at[r] if r in failure_at else 0.0
        blocked_s = min(blocked[r], end)
        busy_s = max(0.0, end - blocked_s)
        ranks.append(
            RankSummary(
                rank=r,
                state=out.state,
                busy_s=busy_s,
                blocked_s=blocked_s,
                failed_s=failed_s,
            )
        )

    detections = [
        (ev.rank, ev.detail["failed"],
         ev.time - failure_at.get(ev.detail["failed"], ev.time))
        for ev in trace.filter(kind=TraceKind.DETECT)
    ]

    validates: list[tuple[int, Any, float]] = []
    starts: dict[tuple[int, Any, Any], float] = {}
    for ev in trace.filter(kind=TraceKind.VALIDATE):
        op = ev.detail.get("op")
        key = (ev.rank, ev.detail.get("comm"), ev.detail.get("instance"))
        if op == "all_start":
            starts[key] = ev.time
        elif op == "all_decide":
            t0 = starts.pop(key, None)
            if t0 is not None:
                validates.append((ev.rank, ev.detail.get("instance"),
                                  ev.time - t0))

    return RunReport(
        nprocs=nprocs,
        final_time=final,
        ranks=ranks,
        detection_latencies=detections,
        validate_latencies=validates,
        consensus=(
            list(metrics.consensus_rounds) if metrics is not None else []
        ),
    )
