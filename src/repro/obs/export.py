"""Trace exporters: Chrome Trace Event (Perfetto) JSON and stable JSONL.

**Perfetto** (:func:`trace_to_perfetto`) renders a recorded
:class:`~repro.simmpi.trace.Trace` as a Chrome Trace Event document that
https://ui.perfetto.dev (or ``chrome://tracing``) opens directly:

* one thread track per rank (``pid=0``, ``tid=rank``, named via ``M``
  metadata events);
* duration slices (``ph="X"``) for every receive wait
  (``RECV_POST`` -> ``RECV_COMPLETE``/``REQ_ERROR`` matched by request
  id), every collective validate (``all_start`` -> ``all_decide`` per
  rank+instance), and — when kernel metrics are available — every
  blocked-fiber interval;
* flow arrows (``ph="s"/"t"/"f"``, one flow id per message id) linking
  each ``SEND_POST`` through its ``DELIVER`` to the matching
  ``RECV_COMPLETE``;
* instant events (``ph="i"``) for ``FAILURE``/``DETECT``/``ABORT``/
  ``DEADLOCK``/``SEND_DROP``/``COLLECTIVE``/``PROBE``/``USER``;
* counter tracks (``ph="C"``) from :class:`~repro.obs.metrics.KernelMetrics`
  series (event-queue depth, in-flight messages, blocked fibers,
  per-rank queue depths).

Timestamps are virtual seconds scaled to microseconds (the trace-event
unit).  The document is emitted with sorted keys so identical runs export
byte-identical files (golden-tested).

**JSONL** (:func:`trace_to_jsonl` / :func:`load_trace_jsonl`) is the
stable machine-readable form: a header line (format tag, rank count, cap
accounting) followed by one JSON object per event.  Detail values that
JSON cannot represent natively (tuples, sets, frozensets) are tagged so
the loader rebuilds them exactly — the round trip preserves
``Trace.keys()`` byte-for-byte, which the determinism tests rely on.

Both formats ship a validator (:func:`perfetto_errors` /
:func:`jsonl_errors`) used by the test suite and the CI smoke job.
"""

from __future__ import annotations

import json
from typing import Any

from ..simmpi.trace import Trace, TraceEvent, TraceKind

__all__ = [
    "JSONL_FORMAT",
    "jsonl_errors",
    "load_trace_jsonl",
    "perfetto_errors",
    "trace_to_jsonl",
    "trace_to_perfetto",
    "write_perfetto",
    "write_trace_jsonl",
]

#: JSONL header format tag; bump when the line layout changes.
JSONL_FORMAT = "repro.trace/1"

#: Virtual seconds -> trace-event microseconds.
_US = 1e6

#: Kinds exported as instant events (everything not given a richer shape).
_INSTANT_KINDS = (
    TraceKind.FAILURE,
    TraceKind.DETECT,
    TraceKind.ABORT,
    TraceKind.DEADLOCK,
    TraceKind.SEND_DROP,
    TraceKind.COLLECTIVE,
    TraceKind.PROBE,
    TraceKind.USER,
    TraceKind.PROC_DONE,
)


# ----------------------------------------------------------------------
# Perfetto / Chrome Trace Event
# ----------------------------------------------------------------------


def _args(detail: dict[str, Any]) -> dict[str, Any]:
    """Trace-event ``args``: stringify anything JSON can't carry."""
    out: dict[str, Any] = {}
    for k, v in detail.items():
        if v is None or isinstance(v, (bool, int, float, str)):
            out[k] = v
        else:
            out[k] = repr(v)
    return out


def trace_to_perfetto(
    trace: Trace,
    nprocs: int,
    metrics: Any = None,
) -> dict[str, Any]:
    """Convert *trace* into a Chrome Trace Event document (a dict).

    ``metrics`` (a :class:`~repro.obs.metrics.KernelMetrics` or ``None``)
    adds counter tracks and blocked-interval slices when available.
    """
    events: list[dict[str, Any]] = []
    events.append({
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "repro-sim"},
    })
    for r in range(nprocs):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": r,
            "args": {"name": f"rank {r}"},
        })

    # Pass 1: pair the interval-shaped events.
    recv_open: dict[tuple[int, int], TraceEvent] = {}
    validate_open: dict[tuple[int, Any, Any], TraceEvent] = {}
    for ev in trace:
        ts = ev.time * _US
        if ev.kind is TraceKind.RECV_POST:
            req = ev.detail.get("req")
            if req is not None:
                recv_open[(ev.rank, req)] = ev
        elif ev.kind in (TraceKind.RECV_COMPLETE, TraceKind.REQ_ERROR):
            req = ev.detail.get("req")
            post = recv_open.pop((ev.rank, req), None)
            if post is None:
                continue
            name = (
                "recv" if ev.kind is TraceKind.RECV_COMPLETE
                else "recv!fail_stop"
            )
            args = _args(post.detail)
            args.update(_args(ev.detail))
            events.append({
                "name": name, "cat": "recv", "ph": "X", "pid": 0,
                "tid": ev.rank, "ts": post.time * _US,
                # Post and completion times are summed along different
                # paths (fiber clock vs. arrival), so an instant match
                # can land one float ULP "before" its post; clamp.
                "dur": max(0.0, ts - post.time * _US), "args": args,
            })
        elif ev.kind is TraceKind.VALIDATE:
            op = ev.detail.get("op")
            key = (ev.rank, ev.detail.get("comm"), ev.detail.get("instance"))
            if op == "all_start":
                validate_open[key] = ev
            elif op == "all_decide":
                start = validate_open.pop(key, None)
                if start is None:
                    continue
                args = _args(start.detail)
                args.update(_args(ev.detail))
                events.append({
                    "name": "validate", "cat": "collective", "ph": "X",
                    "pid": 0, "tid": ev.rank, "ts": start.time * _US,
                    "dur": max(0.0, ts - start.time * _US), "args": args,
                })

    # A hung/killed rank's last wait never completes: close it visually
    # at the trace's end so the stall is visible in the UI.
    if len(trace):
        t_end = max(ev.time for ev in trace) * _US
        for (rank, _req), post in sorted(
            recv_open.items(), key=lambda kv: (kv[0][0], kv[1].time)
        ):
            events.append({
                "name": "recv!unfinished", "cat": "recv", "ph": "X",
                "pid": 0, "tid": rank, "ts": post.time * _US,
                "dur": max(0.0, t_end - post.time * _US),
                "args": _args(post.detail),
            })

    # Pass 2: sends, flows, and instants, in trace order.  Flow arrows
    # link only *matched* messages — ones whose id shows up in both a
    # DELIVER and a RECV_COMPLETE (active messages and unmatched sends
    # would otherwise open flows that never finish, which the validator
    # rejects and the UI renders as dangling arrows).
    sent: set[int] = set()
    delivered: set[int] = set()
    completed: set[int] = set()
    for ev in trace:
        msg = ev.detail.get("msg")
        if msg is None:
            continue
        if ev.kind is TraceKind.SEND_POST:
            sent.add(msg)
        elif ev.kind is TraceKind.DELIVER:
            delivered.add(msg)
        elif ev.kind is TraceKind.RECV_COMPLETE:
            completed.add(msg)
    # A capped (ring-buffer) trace may have lost one leg of a flow;
    # requiring all three keeps every emitted flow well-formed.
    flow_ok = sent & delivered & completed
    for ev in trace:
        ts = ev.time * _US
        if ev.kind is TraceKind.SEND_POST:
            msg = ev.detail.get("msg")
            events.append({
                "name": f"send->{ev.detail.get('dst')}", "cat": "send",
                "ph": "X", "pid": 0, "tid": ev.rank, "ts": ts, "dur": 0.0,
                "args": _args(ev.detail),
            })
            if msg in flow_ok:
                events.append({
                    "name": "msg", "cat": "flow", "ph": "s", "pid": 0,
                    "tid": ev.rank, "ts": ts, "id": msg,
                })
        elif ev.kind is TraceKind.DELIVER:
            msg = ev.detail.get("msg")
            events.append({
                "name": f"deliver<-{ev.detail.get('src')}", "cat": "deliver",
                "ph": "X", "pid": 0, "tid": ev.rank, "ts": ts, "dur": 0.0,
                "args": _args(ev.detail),
            })
            if msg in flow_ok:
                events.append({
                    "name": "msg", "cat": "flow", "ph": "t", "pid": 0,
                    "tid": ev.rank, "ts": ts, "id": msg,
                })
        elif ev.kind is TraceKind.RECV_COMPLETE:
            msg = ev.detail.get("msg")
            if msg in flow_ok:
                events.append({
                    "name": "msg", "cat": "flow", "ph": "f", "bp": "e",
                    "pid": 0, "tid": ev.rank, "ts": ts, "id": msg,
                })
        elif ev.kind in _INSTANT_KINDS:
            scope = "g" if ev.kind in (
                TraceKind.FAILURE, TraceKind.ABORT, TraceKind.DEADLOCK
            ) else "t"
            events.append({
                "name": ev.kind.value, "cat": "lifecycle", "ph": "i",
                "s": scope, "pid": 0, "tid": ev.rank, "ts": ts,
                "args": _args(ev.detail),
            })

    # Counter tracks from kernel metrics (optional).
    if metrics is not None:
        for series in metrics.counter_series():
            for t, v in zip(series.times, series.values):
                events.append({
                    "name": series.name, "cat": "metrics", "ph": "C",
                    "pid": 0, "tid": 0, "ts": t * _US,
                    "args": {"value": v},
                })

    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "producer": "repro.obs",
            "nprocs": nprocs,
            "trace_dropped": trace.dropped,
        },
        "traceEvents": events,
    }


def write_perfetto(
    trace: Trace, nprocs: int, path: Any, metrics: Any = None
) -> None:
    """Serialize :func:`trace_to_perfetto` to *path* (deterministic bytes)."""
    doc = trace_to_perfetto(trace, nprocs, metrics=metrics)
    from pathlib import Path

    Path(path).write_text(dumps_perfetto(doc))


def dumps_perfetto(doc: dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, newline-terminated."""
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


_PHASES = frozenset("XiBEsftCM")

#: Per-phase structural requirements, beyond the common fields.
_SCOPES = frozenset(("t", "p", "g"))


def perfetto_errors(doc: Any) -> list[str]:
    """Validate a Chrome Trace Event document; return human-readable
    problems (empty list == valid).  Checks the structural contract the
    Perfetto UI relies on, not every optional nicety."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        for field, types in (("pid", int), ("tid", int)):
            if not isinstance(ev.get(field), types):
                errors.append(f"{where}: {field} missing or not an int")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: ts missing or negative")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: name missing or empty")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0")
        elif ph == "i":
            if ev.get("s") not in _SCOPES:
                errors.append(f"{where}: instant scope must be t/p/g")
        elif ph in ("s", "t", "f"):
            if not isinstance(ev.get("id"), (int, str)):
                errors.append(f"{where}: flow event needs an id")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                errors.append(f"{where}: counter args must be numbers")
        elif ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata needs args.name")
    # Every flow id must have exactly one start and one finish.
    flows: dict[Any, list[str]] = {}
    for ev in events:
        if isinstance(ev, dict) and ev.get("ph") in ("s", "t", "f"):
            flows.setdefault(ev.get("id"), []).append(ev["ph"])
    for fid, phases in flows.items():
        if phases.count("s") != 1 or phases.count("f") != 1:
            errors.append(
                f"flow id {fid!r}: needs exactly one 's' and one 'f' "
                f"(got {phases})"
            )
    return errors


# ----------------------------------------------------------------------
# JSONL: stable export + exact round-trip loader
# ----------------------------------------------------------------------


def _encode(value: Any) -> Any:
    """JSON-encode a detail value, tagging non-JSON-native containers so
    the loader reconstructs the exact Python object."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted((_encode(v) for v in value),
                                        key=repr)}
    if isinstance(value, set):
        return {"__set__": sorted((_encode(v) for v in value), key=repr)}
    if isinstance(value, dict):
        if any(k in value for k in ("__tuple__", "__set__", "__frozenset__",
                                    "__dict__")):
            return {"__dict__": {k: _encode(v) for k, v in value.items()}}
        return {k: _encode(v) for k, v in value.items()}
    raise TypeError(
        f"cannot export detail value of type {type(value).__name__}"
    )


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        if "__tuple__" in value and len(value) == 1:
            return tuple(_decode(v) for v in value["__tuple__"])
        if "__set__" in value and len(value) == 1:
            return set(_decode(v) for v in value["__set__"])
        if "__frozenset__" in value and len(value) == 1:
            return frozenset(_decode(v) for v in value["__frozenset__"])
        if "__dict__" in value and len(value) == 1:
            return {k: _decode(v) for k, v in value["__dict__"].items()}
        return {k: _decode(v) for k, v in value.items()}
    return value


def trace_to_jsonl(trace: Trace, nprocs: int | None = None) -> str:
    """Serialize *trace* as JSONL: one header line, one line per event.

    Lines are compact JSON with sorted keys; identical traces export
    byte-identical text (golden-tested).  Floats round-trip exactly
    (``json`` uses shortest-round-trip repr).
    """
    header = {
        "format": JSONL_FORMAT,
        "nprocs": nprocs,
        "cap": trace.cap,
        "dropped": trace.dropped,
        "events": len(trace),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for ev in trace:
        lines.append(json.dumps(
            {
                "t": ev.time,
                "kind": ev.kind.value,
                "rank": ev.rank,
                "detail": {k: _encode(v) for k, v in ev.detail.items()},
            },
            sort_keys=True,
            separators=(",", ":"),
        ))
    return "\n".join(lines) + "\n"


def write_trace_jsonl(trace: Trace, path: Any, nprocs: int | None = None) -> None:
    from pathlib import Path

    Path(path).write_text(trace_to_jsonl(trace, nprocs=nprocs))


def load_trace_jsonl(source: Any) -> tuple[Trace, dict[str, Any]]:
    """Load a JSONL export back into a :class:`Trace`.

    *source* is a path or a string of JSONL text.  Returns
    ``(trace, header)``.  The rebuilt trace satisfies
    ``loaded.keys() == original.keys()`` — the determinism identity the
    test suite pins.
    """
    from pathlib import Path

    if isinstance(source, str) and "\n" in source:
        text = source
    else:
        text = Path(source).read_text()
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty JSONL trace")
    header = json.loads(lines[0])
    if header.get("format") != JSONL_FORMAT:
        raise ValueError(
            f"unsupported trace format {header.get('format')!r} "
            f"(want {JSONL_FORMAT!r})"
        )
    trace = Trace(enabled=True, cap=header.get("cap"))
    trace.dropped = int(header.get("dropped", 0))
    kinds = {k.value: k for k in TraceKind}
    for ln in lines[1:]:
        rec = json.loads(ln)
        trace._events.append(TraceEvent(
            rec["t"],
            kinds[rec["kind"]],
            rec["rank"],
            {k: _decode(v) for k, v in rec["detail"].items()},
        ))
    return trace, header


def jsonl_errors(source: Any) -> list[str]:
    """Validate a JSONL trace export line by line (empty list == valid)."""
    from pathlib import Path

    if isinstance(source, str) and "\n" in source:
        text = source
    else:
        text = Path(source).read_text()
    lines = [ln for ln in text.splitlines() if ln.strip()]
    errors: list[str] = []
    if not lines:
        return ["empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"header: invalid JSON ({exc})"]
    if not isinstance(header, dict) or header.get("format") != JSONL_FORMAT:
        errors.append(f"header: format != {JSONL_FORMAT!r}")
    kinds = {k.value for k in TraceKind}
    for i, ln in enumerate(lines[1:], start=2):
        where = f"line {i}"
        try:
            rec = json.loads(ln)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: invalid JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(rec.get("t"), (int, float)):
            errors.append(f"{where}: t missing or not a number")
        if rec.get("kind") not in kinds:
            errors.append(f"{where}: unknown kind {rec.get('kind')!r}")
        if not isinstance(rec.get("rank"), int):
            errors.append(f"{where}: rank missing or not an int")
        if not isinstance(rec.get("detail"), dict):
            errors.append(f"{where}: detail missing or not an object")
    declared = header.get("events") if isinstance(header, dict) else None
    if isinstance(declared, int) and declared != len(lines) - 1:
        errors.append(
            f"header declares {declared} events, file has {len(lines) - 1}"
        )
    return errors
