"""Prometheus-style metrics: stdlib counters/gauges/histograms with
text-format exposition and a scrape endpoint.

The registry is the aggregate face of the pipeline's observability
(spans are the per-operation face): instrumentation in
``repro.parallel`` and ``repro.cache`` increments the process-global
:data:`REGISTRY` instruments at chunk/round/frame granularity —
unconditional, but far off any per-job hot path — and
``repro metrics serve`` exposes them over stdlib ``http.server`` at
``/metrics`` (Prometheus text format 0.0.4) plus a ``/healthz`` JSON
probe.  This is the stepping-stone to ROADMAP item 2
(simulation-as-a-service), which needs exactly this collector + health
endpoint pair in front of the sweep engine.

For offline campaigns, :func:`registry_from_telemetry` rebuilds a
registry from a ``repro.telemetry/1`` stream, so a finished (or
in-flight) telemetry file can be scraped without re-running anything:
``repro metrics serve --telemetry FILE`` re-derives the registry per
scrape and therefore tracks the file as it grows.

No third-party client library: the exposition format is a few lines of
text, and keeping this stdlib-only preserves the package's
dependency-light core.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "CACHE_LOOKUPS",
    "CACHE_STORES",
    "Counter",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "MetricsServer",
    "REGISTRY",
    "REMOTE_BYTES",
    "REMOTE_DISCONNECTS",
    "REMOTE_FRAMES",
    "REMOTE_HEARTBEATS",
    "SWEEP_CHUNKS",
    "SWEEP_JOBS",
    "SWEEP_RETRIES",
    "SWEEP_ROUNDS",
    "registry_from_telemetry",
]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _series(name: str, pairs: Sequence[tuple[str, str]]) -> str:
    if not pairs:
        return name
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs)
    return f"{name}{{{inner}}}"


class Metric:
    """Base: a named family of series, one per label-value tuple."""

    type_name = "untyped"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.labels = tuple(labels)
        for label in self.labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labels):
            raise ValueError(
                f"{self.name}: expected labels {sorted(self.labels)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[k]) for k in self.labels)

    def samples(self) -> list[tuple[str, float]]:
        """``(series-name, value)`` pairs, label-sorted, for exposition."""
        with self._lock:
            return [
                (_series(self.name, list(zip(self.labels, key))), value)
                for key, value in sorted(self._values.items())
            ]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Counter(Metric):
    type_name = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Gauge(Metric):
    type_name = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Histogram(Metric):
    type_name = "histogram"

    #: Geared to job wall times (sub-ms simulations up to multi-second
    #: campaign chunks).
    DEFAULT_BUCKETS = (
        0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, labels)
        self.buckets = tuple(
            sorted(self.DEFAULT_BUCKETS if buckets is None else buckets)
        )
        if not self.buckets:
            raise ValueError(f"{self.name}: needs at least one bucket")

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = [[0] * len(self.buckets), 0.0, 0]
                self._values[key] = state
            counts, total, n = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            state[1] = total + value
            state[2] = n + 1

    def samples(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        with self._lock:
            for key, (counts, total, n) in sorted(self._values.items()):
                base = list(zip(self.labels, key))
                cumulative = 0
                for bound, count in zip(self.buckets, counts):
                    cumulative += count
                    out.append((
                        _series(self.name + "_bucket",
                                base + [("le", _fmt(bound))]),
                        cumulative,
                    ))
                out.append((
                    _series(self.name + "_bucket", base + [("le", "+Inf")]), n,
                ))
                out.append((_series(self.name + "_sum", base), total))
                out.append((_series(self.name + "_count", base), n))
        return out


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration and
    Prometheus text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name!r} already registered as "
                        f"{existing.type_name}, not {cls.type_name}"
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help=help, labels=labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help=help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, labels=labels, buckets=buckets
        )

    def metrics(self) -> list[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def exposition(self) -> str:
        """The Prometheus text format: ``# HELP``/``# TYPE`` per family,
        one ``name{labels} value`` line per series."""
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            for series, value in metric.samples():
                lines.append(f"{series} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        for metric in self.metrics():
            metric.reset()


#: The process-global registry the pipeline instrumentation feeds.
REGISTRY = MetricsRegistry()

SWEEP_JOBS = REGISTRY.counter(
    "repro_sweep_jobs_total",
    "Jobs completed by sweep runners (merged chunk results)",
)
SWEEP_CHUNKS = REGISTRY.counter(
    "repro_sweep_chunks_total",
    "Sweep chunks by completion status (done, or lost to a dead worker "
    "or round timeout)",
    labels=("status",),
)
SWEEP_ROUNDS = REGISTRY.counter(
    "repro_sweep_rounds_total",
    "Scheduling rounds opened by the transport runner",
)
SWEEP_RETRIES = REGISTRY.counter(
    "repro_sweep_chunk_retries_total",
    "Chunk re-submissions after infrastructure failures",
)
CACHE_LOOKUPS = REGISTRY.counter(
    "repro_cache_lookups_total",
    "Batched run-cache lookups by result",
    labels=("result",),
)
CACHE_STORES = REGISTRY.counter(
    "repro_cache_stores_total",
    "Entries written by batched run-cache stores",
)
REMOTE_FRAMES = REGISTRY.counter(
    "repro_remote_frames_total",
    "repro.remote/1 frames by direction (parent side)",
    labels=("direction",),
)
REMOTE_BYTES = REGISTRY.counter(
    "repro_remote_bytes_total",
    "repro.remote/1 wire bytes by direction (parent side)",
    labels=("direction",),
)
REMOTE_HEARTBEATS = REGISTRY.counter(
    "repro_remote_heartbeat_probes_total",
    "Liveness probes of silent workers by result",
    labels=("result",),
)
REMOTE_DISCONNECTS = REGISTRY.counter(
    "repro_remote_disconnects_total",
    "Worker connections declared dead mid-round",
)


# ----------------------------------------------------------------------
# Offline: telemetry stream -> registry
# ----------------------------------------------------------------------


def registry_from_telemetry(source: Any) -> MetricsRegistry:
    """Build a fresh registry from a ``repro.telemetry/1`` stream (path
    or record list): job outcomes, wall-time histogram, cache and
    retry counters, and per-worker transport series from the
    ``kind:"worker"`` rows.  This is how a campaign that already ran
    (or is still running) gets scraped."""
    from .telemetry import read_telemetry, summarize

    if isinstance(source, (str, Path)):
        records = read_telemetry(source)
    else:
        records = list(source)
    header = records[0] if records else {}
    summary = summarize(records)
    registry = MetricsRegistry()

    jobs = registry.counter(
        "repro_sweep_jobs_total",
        "Jobs recorded by the telemetry stream, by outcome class",
        labels=("outcome",),
    )
    for outcome in ("ok", "hang", "violation", "abort"):
        jobs.inc(summary.outcomes.get(outcome, 0), outcome=outcome)
    declared = header.get("runs")
    registry.gauge(
        "repro_sweep_runs",
        "Jobs declared by the telemetry header",
    ).set(declared if isinstance(declared, int) else summary.runs)
    registry.counter(
        "repro_sweep_job_retries_total",
        "Per-job retry counts summed over the sweep",
    ).inc(summary.retries)

    wall = registry.gauge(
        "repro_job_wall_seconds",
        "Job wall-time percentiles (nearest-rank) over the stream",
        labels=("quantile",),
    )
    for quantile, value in summary.wall_percentiles.items():
        wall.set(value, quantile=quantile)

    hist = registry.histogram(
        "repro_job_wall_seconds_histogram",
        "Job wall-time distribution over the stream",
    )
    for record in records[1:]:
        if isinstance(record, dict) and record.get("kind") == "job":
            wall_s = record.get("wall_s")
            if isinstance(wall_s, (int, float)):
                hist.observe(float(wall_s))

    cache = registry.counter(
        "repro_cache_lookups_total",
        "Job cache classification over the stream",
        labels=("result",),
    )
    cache.inc(summary.cache.get("hit", 0), result="hit")
    cache.inc(summary.cache.get("miss", 0), result="miss")
    registry.counter(
        "repro_cache_uncached_jobs_total",
        "Jobs that ran without cache classification",
    ).inc(summary.cache.get("uncached", 0))

    if summary.remote:
        chunks = registry.counter(
            "repro_remote_chunks_total",
            "Chunks executed per remote worker",
            labels=("worker",),
        )
        remote_jobs = registry.counter(
            "repro_remote_jobs_total",
            "Jobs executed per remote worker",
            labels=("worker",),
        )
        remote_bytes = registry.counter(
            "repro_remote_bytes_total",
            "Wire bytes per remote worker by direction",
            labels=("worker", "direction"),
        )
        rtt = registry.gauge(
            "repro_remote_rtt_seconds_total",
            "Cumulative chunk round-trip time per remote worker",
            labels=("worker",),
        )
        hits = registry.counter(
            "repro_remote_cache_hits_total",
            "Worker-side cache hits per remote worker",
            labels=("worker",),
        )
        disconnects = registry.counter(
            "repro_remote_disconnects_total",
            "Disconnects per remote worker",
            labels=("worker",),
        )
        for row in summary.remote:
            worker = str(row.get("worker", "?"))
            chunks.inc(float(row.get("chunks", 0)), worker=worker)
            remote_jobs.inc(float(row.get("jobs", 0)), worker=worker)
            remote_bytes.inc(
                float(row.get("bytes_out", 0)), worker=worker, direction="out"
            )
            remote_bytes.inc(
                float(row.get("bytes_in", 0)), worker=worker, direction="in"
            )
            rtt.set(float(row.get("rtt_s", 0.0)), worker=worker)
            hits.inc(float(row.get("cache_hits", 0)), worker=worker)
            disconnects.inc(float(row.get("disconnects", 0)), worker=worker)
    return registry


# ----------------------------------------------------------------------
# Scrape endpoint (stdlib http.server)
# ----------------------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            try:
                body = self.server.exposition().encode("utf-8")
            except Exception as exc:
                detail = f"metrics unavailable: {exc}\n".encode("utf-8")
                self._reply(503, "text/plain; charset=utf-8", detail)
                return
            self._reply(200, EXPOSITION_CONTENT_TYPE, body)
        elif path == "/healthz":
            body = (json.dumps(
                {"status": "ok", "service": "repro-metrics"}, sort_keys=True
            ) + "\n").encode("utf-8")
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:
        pass  # scrapes every few seconds would flood stderr


class MetricsServer(ThreadingHTTPServer):
    """``/metrics`` + ``/healthz`` over a bind address.

    Serves the process-global :data:`REGISTRY` by default; with
    *telemetry* set, re-derives the registry from that file on every
    scrape (so it follows an in-flight campaign); with *registry* set,
    serves that fixed registry.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        bind: tuple[str, int],
        *,
        registry: MetricsRegistry | None = None,
        telemetry: Any = None,
    ) -> None:
        super().__init__(bind, _MetricsHandler)
        self.registry = registry
        self.telemetry = telemetry

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def exposition(self) -> str:
        if self.telemetry is not None:
            return registry_from_telemetry(self.telemetry).exposition()
        return (self.registry if self.registry is not None
                else REGISTRY).exposition()
