"""Ring correctness invariants for scenario exploration and campaigns.

Each invariant has the signature required by
:mod:`repro.faults.explorer`: it inspects a
:class:`~repro.simmpi.runtime.SimulationResult` whose rank mains returned
ring reports (see :func:`repro.core.ring.ring_report`) and returns a
violation message, or ``None`` when the invariant holds.

These encode the paper's implicit correctness contract:

* the job must not hang (no deadlock);
* every surviving rank must finish (run *through* the failure);
* no ring iteration may complete more than once at a root (the Fig. 8
  duplicate pathology);
* iterations complete in marker order, and enough of them complete;
* circulating values stay within the arithmetic bounds of a ring of at
  most ``nprocs`` increments.
"""

from __future__ import annotations

from typing import Any, Callable

from ..simmpi.runtime import SimulationResult

Invariant = Callable[[SimulationResult], "str | None"]


def _reports(result: SimulationResult) -> dict[int, dict[str, Any]]:
    out = {}
    for o in result.outcomes:
        if o.state == "done" and isinstance(o.value, dict):
            out[o.rank] = o.value
    return out


def _completions(result: SimulationResult) -> list[tuple[int, int, int]]:
    """All (root_rank, marker, value) completion records of surviving roots."""
    recs = []
    for rank, rep in _reports(result).items():
        for marker, value in rep.get("root_completions", ()):
            recs.append((rank, marker, value))
    return recs


def no_hang(result: SimulationResult) -> str | None:
    """The run must not end in a proven deadlock."""
    if result.hung:
        assert result.deadlock is not None
        return f"hang: {result.deadlock}"
    return None


def no_abort(result: SimulationResult) -> str | None:
    """The run must not abort (use when the scenario forbids aborts)."""
    if result.aborted is not None:
        return f"aborted: {result.aborted}"
    return None


def survivors_done(result: SimulationResult) -> str | None:
    """Every rank that did not fail must complete its main normally.

    An aborted job is exempt: aborts unwind survivors by design (the
    :func:`no_abort` invariant decides whether the abort itself was
    legitimate).
    """
    if result.aborted is not None:
        return None
    bad = [
        o.rank
        for o in result.outcomes
        if o.state not in ("done", "failed")
    ]
    if bad:
        return f"survivors did not finish: ranks {bad}"
    return None


def no_duplicate_completions(result: SimulationResult) -> str | None:
    """No iteration marker completes twice at the same root (Fig. 8)."""
    seen: dict[int, set[int]] = {}
    for root, marker, _value in _completions(result):
        markers = seen.setdefault(root, set())
        if marker in markers:
            return f"marker {marker} completed twice at root {root}"
        markers.add(marker)
    return None


def completions_in_order(result: SimulationResult) -> str | None:
    """Each root's completion markers are strictly increasing."""
    for rank, rep in _reports(result).items():
        markers = [m for m, _v in rep.get("root_completions", ())]
        if markers != sorted(markers) or len(markers) != len(set(markers)):
            return f"root {rank} completions out of order: {markers}"
    return None


def make_min_completions(
    max_iter: int, allow_root_loss: bool = False
) -> Invariant:
    """The ring makes full progress: all ``max_iter`` iterations run.

    Progress is measured two ways and the *stronger available* evidence is
    used: distinct completion markers recorded at surviving roots, and the
    forward counters (``cur_marker``) of surviving ranks — a survivor with
    ``cur_marker == max_iter`` forwarded every iteration, proving the ring
    circulated them all even if the completion *records* died with a
    failed root (§III-D: a root's log is local state, not replicated).

    With ``allow_root_loss=False`` (the paper's root-survives assumption)
    completion records themselves must be complete.
    """

    def _inv(result: SimulationResult) -> str | None:
        if result.aborted is not None:
            return None
        markers = {m for _r, m, _v in _completions(result)}
        forwards = [
            rep.get("cur_marker", 0) for rep in _reports(result).values()
        ]
        progress = max(
            [m + 1 for m in markers] + forwards + [0]
        )
        if progress < max_iter:
            return (
                f"ring progressed only {progress} of {max_iter} iterations "
                f"(completed markers {sorted(markers)}, forwards {forwards})"
            )
        if not allow_root_loss and len(markers) < max_iter:
            return (
                f"only {len(markers)} of {max_iter} completions recorded "
                f"(markers {sorted(markers)})"
            )
        return None

    return _inv


def make_value_bounds(nprocs: int) -> Invariant:
    """Every completed value v satisfies ``1 <= v <= nprocs``.

    The root injects 1 and each surviving non-root increments once, so a
    completion can never exceed the number of ranks (nor go below 1).
    """

    def _inv(result: SimulationResult) -> str | None:
        for root, marker, value in _completions(result):
            if not 1 <= value <= nprocs:
                return (
                    f"marker {marker} at root {root} completed with "
                    f"out-of-range value {value}"
                )
        return None

    return _inv


def standard_ring_invariants(
    max_iter: int, nprocs: int, allow_root_loss: bool = False
) -> list[Invariant]:
    """The default invariant battery for ring scenario exploration."""
    return [
        no_hang,
        survivors_done,
        no_duplicate_completions,
        completions_in_order,
        make_min_completions(max_iter, allow_root_loss=allow_root_loss),
        make_value_bounds(nprocs),
    ]
