"""ASCII space-time diagrams from simulation traces.

Renders the message-sequence pictures the paper draws by hand (its
Figs. 6, 7, 8, 10) directly from a recorded trace: one column per rank,
time flowing downward, with message sends/deliveries drawn as horizontal
arrows and lifecycle events (failure, detection, validate, abort) marked
in the owning rank's column.

The renderer is deliberately line-oriented rather than pixel-perfect: one
output line per rendered event, columns aligned, so diagrams diff cleanly
and can be embedded in docs and golden tests.

Example output::

    time(us)    r0          r1          r2          r3
    0.200       send>1 .....
    1.456                   recv<0
    ...
    8.936                               FAILED
    8.936       detect(2)   detect(2)               detect(2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..simmpi.trace import Trace, TraceEvent, TraceKind

#: Trace kinds rendered by default.
DEFAULT_KINDS = (
    TraceKind.SEND_POST,
    TraceKind.RECV_COMPLETE,
    TraceKind.SEND_DROP,
    TraceKind.FAILURE,
    TraceKind.DETECT,
    TraceKind.REQ_ERROR,
    TraceKind.VALIDATE,
    TraceKind.ABORT,
    TraceKind.DEADLOCK,
)


@dataclass(frozen=True)
class SpacetimeOptions:
    """Rendering knobs."""

    col_width: int = 12
    time_width: int = 10
    #: Scale for the time column (1e6 => microseconds).
    time_scale: float = 1e6
    time_unit: str = "us"
    #: Hide the high-volume consensus/progress traffic by default.
    include_am: bool = False
    kinds: tuple[TraceKind, ...] = DEFAULT_KINDS
    max_lines: int | None = 200


def _label(ev: TraceEvent) -> str:
    d = ev.detail
    if ev.kind is TraceKind.SEND_POST:
        return f"send>{d.get('dst')}" + (f" t{d['tag']}" if d.get("tag") else "")
    if ev.kind is TraceKind.RECV_COMPLETE:
        return f"recv<{d.get('src')}" + (f" t{d['tag']}" if d.get("tag") else "")
    if ev.kind is TraceKind.SEND_DROP:
        return f"drop>{d.get('dst')}"
    if ev.kind is TraceKind.FAILURE:
        return "FAILED"
    if ev.kind is TraceKind.DETECT:
        return f"detect({d.get('failed')})"
    if ev.kind is TraceKind.REQ_ERROR:
        return f"err<{d.get('peer')}"
    if ev.kind is TraceKind.VALIDATE:
        op = d.get("op", "")
        if op == "all_decide":
            return f"decide{sorted(d.get('decision', []))}"
        if op == "all_start":
            return "validate..."
        return f"val:{op}"
    if ev.kind is TraceKind.ABORT:
        return f"ABORT({d.get('code')})"
    if ev.kind is TraceKind.DEADLOCK:
        return "BLOCKED*"
    if ev.kind is TraceKind.PROBE:
        return f"@{d.get('name')}"
    return ev.kind.value


def render_spacetime(
    trace: Trace,
    nprocs: int,
    options: SpacetimeOptions | None = None,
    ranks: Sequence[int] | None = None,
) -> str:
    """Render *trace* as an aligned per-rank timeline.

    ``ranks`` restricts the columns (default: all of ``0..nprocs-1``).
    Returns the diagram as a single string.
    """
    opt = options or SpacetimeOptions()
    cols = list(ranks) if ranks is not None else list(range(nprocs))
    col_of = {r: i for i, r in enumerate(cols)}
    width = opt.col_width

    header = "time(" + opt.time_unit + ")"
    lines = [
        header.ljust(opt.time_width)
        + "".join(f"r{r}".ljust(width) for r in cols)
    ]
    lines.append("-" * (opt.time_width + width * len(cols)))

    # Select every renderable event up front (one multi-kind filter pass)
    # so the truncation line counts exactly what was cut: events dropped
    # by the kind/AM/rank filters are not "more events", and the cap no
    # longer forces a full iterate-only-to-count tail walk.
    renderable = trace.filter(
        kind=opt.kinds,
        predicate=lambda ev: (
            (opt.include_am or not ev.detail.get("am"))
            and ev.rank in col_of
        ),
    )
    shown = renderable if opt.max_lines is None else renderable[:opt.max_lines]
    for ev in shown:
        cells = [" " * width] * len(cols)
        cells[col_of[ev.rank]] = _label(ev)[:width - 1].ljust(width)
        t = f"{ev.time * opt.time_scale:.3f}"
        lines.append(t.ljust(opt.time_width) + "".join(cells).rstrip())
    truncated = len(renderable) - len(shown)
    if truncated:
        lines.append(f"... ({truncated} more events)")
    return "\n".join(lines)


def failure_story(trace: Trace, nprocs: int) -> str:
    """A compact narrative of just the failure/repair events of a run."""
    opt = SpacetimeOptions(
        kinds=(
            TraceKind.FAILURE,
            TraceKind.DETECT,
            TraceKind.REQ_ERROR,
            TraceKind.SEND_DROP,
            TraceKind.VALIDATE,
            TraceKind.ABORT,
            TraceKind.DEADLOCK,
        )
    )
    return render_spacetime(trace, nprocs, opt)
