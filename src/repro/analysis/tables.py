"""Minimal ASCII tables for benchmark and experiment output.

The harness prints the same row/series structure the paper's figures
describe; EXPERIMENTS.md embeds these tables verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_cell(value: Any) -> str:
    """Render one cell: floats compactly, everything else via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def dict_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of dicts, using the first row's keys by default."""
    if not rows:
        return title or "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    return ascii_table(cols, [[r.get(c, "") for c in cols] for r in rows], title)
