"""``repro.analysis`` — invariants, statistics, digests, and tables."""

from .digest import perf_dict, result_digest, trace_digest
from .invariants import (
    Invariant,
    completions_in_order,
    make_min_completions,
    make_value_bounds,
    no_abort,
    no_duplicate_completions,
    no_hang,
    standard_ring_invariants,
    survivors_done,
)
from .spacetime import SpacetimeOptions, failure_story, render_spacetime
from .stats import MessageStats, message_stats, ring_summary
from .tables import ascii_table, dict_table, format_cell

__all__ = [
    "Invariant",
    "MessageStats",
    "SpacetimeOptions",
    "ascii_table",
    "completions_in_order",
    "dict_table",
    "failure_story",
    "format_cell",
    "make_min_completions",
    "make_value_bounds",
    "message_stats",
    "no_abort",
    "no_duplicate_completions",
    "no_hang",
    "perf_dict",
    "render_spacetime",
    "result_digest",
    "ring_summary",
    "standard_ring_invariants",
    "survivors_done",
    "trace_digest",
]
