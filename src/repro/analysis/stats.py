"""Run statistics: message counts, timing, and ring-report aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..simmpi.runtime import SimulationResult
from ..simmpi.trace import TraceKind


@dataclass(frozen=True)
class MessageStats:
    """Network-level counters extracted from a simulation trace."""

    sends: int
    deliveries: int
    drops: int
    recv_errors: int
    detections: int

    @property
    def lost(self) -> int:
        """Messages injected but never delivered (dead destination)."""
        return self.drops


def message_stats(result: SimulationResult) -> MessageStats:
    """Count transport events in the result's trace."""
    t = result.trace
    return MessageStats(
        sends=len(t.filter(kind=TraceKind.SEND_POST)),
        deliveries=len(t.filter(kind=TraceKind.DELIVER)),
        drops=len(t.filter(kind=TraceKind.SEND_DROP)),
        recv_errors=len(t.filter(kind=TraceKind.REQ_ERROR)),
        detections=len(t.filter(kind=TraceKind.DETECT)),
    )


def ring_summary(result: SimulationResult) -> dict[str, Any]:
    """Aggregate the per-rank ring reports of one run into one row.

    Includes virtual completion time, total resends/duplicates/retargets
    across ranks, the union of completed markers, and whether the run
    hung or aborted.
    """
    reports = [
        o.value
        for o in result.outcomes
        if o.state == "done" and isinstance(o.value, dict)
    ]
    completions: list[tuple[int, int]] = []
    for rep in reports:
        completions.extend(rep.get("root_completions", ()))
    markers = [m for m, _v in completions]
    return {
        "final_time": result.final_time,
        "hung": result.hung,
        "aborted": result.aborted is not None,
        "failed_ranks": sorted(result.failed_ranks),
        "survivors": len(reports),
        "resends": sum(rep.get("resends", 0) for rep in reports),
        "duplicates_discarded": sum(
            rep.get("duplicates_discarded", 0) for rep in reports
        ),
        "right_retargets": sum(rep.get("right_retargets", 0) for rep in reports),
        "left_retargets": sum(rep.get("left_retargets", 0) for rep in reports),
        "completions": completions,
        "distinct_markers": len(set(markers)),
        "duplicate_completions": len(markers) - len(set(markers)),
    }
