"""Deterministic run fingerprints shared by fuzz replay and the run cache.

One blake2b digest covers everything deterministic about a finished
simulation: the final virtual time, the full semantic trace (event keys,
in order), each rank's terminal state, and the perf counters minus the
host-side slots (``wall_s`` and the ``fibers`` backend label — neither
is a property of the simulation, and neither may enter a digest or a
report compared across runs).

These helpers used to live in :mod:`repro.fuzz.driver`; they moved here
so the fuzzer's replay verification and the content-addressed sweep
cache (:mod:`repro.cache`) share a single definition.  The digest
composition is pinned by ``.repro.json`` expect blocks already written
to disk — change it only with a replay-format version bump.
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simmpi.runtime import SimulationResult
    from ..simmpi.trace import Trace

__all__ = ["perf_dict", "result_digest", "trace_digest"]


def perf_dict(result: "SimulationResult") -> dict[str, Any]:
    """The run's perf counters minus the host-side slots: ``wall_s``
    (host time) and ``fibers`` (which fiber backend suspended the call
    stacks).  Both describe the machine the run happened on, not the
    simulation — traces are byte-identical across backends, so digests,
    ``.repro.json`` expect blocks, and cache payloads must stay
    backend-independent."""
    if result.perf is None:
        return {}
    d = result.perf.as_dict()
    d.pop("wall_s", None)
    d.pop("fibers", None)
    return d


def _update_trace(h: "hashlib._Hash", trace: "Trace") -> None:
    """Feed the trace's identity keys, in order, into *h*."""
    for key in trace.keys():
        h.update(repr(key).encode())
        h.update(b"\x00")


def trace_digest(trace: "Trace") -> str:
    """Stable fingerprint of a trace alone (event keys, in order)."""
    h = hashlib.blake2b(digest_size=16)
    _update_trace(h, trace)
    return h.hexdigest()


def result_digest(result: "SimulationResult") -> str:
    """Stable fingerprint of everything deterministic about a run.

    Covers the final virtual time, the full semantic trace (event keys,
    in order), each rank's terminal state, and the perf counters (minus
    ``wall_s``).  Two runs of the same config — serial, pooled, replayed
    from disk, or reconstructed from the sweep cache — must produce the
    same digest; that equality is what ``repro replay`` and ``repro
    cache verify`` assert.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(struct.pack("<d", result.final_time))
    _update_trace(h, result.trace)
    for out in result.outcomes:
        h.update(f"{out.rank}:{out.state}".encode())
        h.update(b"\x00")
    for name, value in sorted(perf_dict(result).items()):
        h.update(f"{name}={value}".encode())
        h.update(b"\x00")
    return h.hexdigest()
