"""Delta-debugging shrinker: minimize a failing fuzz configuration.

A fuzzer-found failure typically carries more perturbation than the bug
needs — extra kills, jitter on every cost component, a large opaque
policy seed.  The shrinker strips it down to the smallest configuration
that still violates an invariant, in a fixed order of simplification
power:

1. **drop faults** — remove kills one at a time (greedy ddmin over the
   schedule; each removal re-tested, kept only if the failure survives);
2. **zero jitter fields** — first all amplitudes at once, then each
   component individually;
3. **simplify the policy** — try the deterministic round-robin policy
   (seed-free) in place of a seeded random schedule;
4. **bisect seeds** — drive the policy seed and jitter seed toward 0 by
   repeated halving, accepting any candidate that still fails.

Every candidate is one deterministic simulation, so shrinking is itself
fully reproducible; the result records how many candidate runs it took.
By default a candidate "still fails" when it produces *any* invariant
violation — classic ddmin semantics; pass ``same_violation=True`` to
require the first violation message to match the original's, when
distinct pathologies must not be conflated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from .config import FuzzConfig, violations_of


@dataclass
class ShrinkResult:
    """Outcome of minimizing one failing configuration."""

    config: FuzzConfig
    violations: list[str]
    #: Candidate simulations executed during the shrink.
    attempts: int
    #: Whether any simplification was accepted.
    reduced: bool

    def describe(self) -> str:
        return (
            f"{self.config.describe()} "
            f"({self.attempts} candidate run(s), "
            f"{'reduced' if self.reduced else 'already minimal'})"
        )


def _same_kind(a: list[str], b: list[str]) -> bool:
    """Crude violation identity: same leading word of the first message
    (e.g. ``marker``, ``hang``, ``ring``) — enough to separate the
    hang/duplicate/progress families without overfitting to messages."""
    if not a or not b:
        return bool(a) == bool(b)
    return a[0].split(" ", 1)[0] == b[0].split(" ", 1)[0]


def shrink(
    config: FuzzConfig,
    invariants: Any = None,
    *,
    same_violation: bool = False,
    max_attempts: int = 500,
) -> ShrinkResult:
    """Minimize *config* while it keeps violating the invariants.

    Raises :class:`ValueError` when *config* does not fail at all —
    shrinking a passing configuration is always a caller bug.
    ``max_attempts`` bounds the candidate simulations (the returned
    config is whatever the search had reached; still failing by
    construction).
    """
    original = violations_of(config, invariants)
    if not original:
        raise ValueError("config does not violate any invariant; nothing to shrink")

    attempts = 0
    current = config
    current_violations = original

    def fails(candidate: FuzzConfig) -> list[str] | None:
        """The candidate's violations, or None when it passes/diverges."""
        nonlocal attempts
        if attempts >= max_attempts:
            return None
        attempts += 1
        v = violations_of(candidate, invariants)
        if not v:
            return None
        if same_violation and not _same_kind(original, v):
            return None
        return v

    def accept(candidate: FuzzConfig) -> bool:
        nonlocal current, current_violations
        v = fails(candidate)
        if v is None:
            return False
        current, current_violations = candidate, v
        return True

    changed = True
    while changed and attempts < max_attempts:
        changed = False

        # 1. Drop kills, last-to-first so indices stay valid as we go.
        for i in reversed(range(len(current.faults))):
            if accept(current.without_fault(i)):
                changed = True

        # 2. Zero the jitter: all fields at once, else one at a time.
        if not current.jitter.is_zero:
            if accept(replace(current, jitter=current.jitter.zeroed())):
                changed = True
            else:
                for fld in ("overhead", "latency", "byte_cost"):
                    if getattr(current.jitter, fld) == 0.0:
                        continue
                    trimmed = replace(current.jitter, **{fld: 0.0})
                    if accept(replace(current, jitter=trimmed)):
                        changed = True

        # 3. Deterministic policy beats any seeded schedule.
        if current.policy != "rr":
            if accept(replace(current, policy="rr", policy_seed=0)):
                changed = True

        # 4. Bisect remaining seeds toward 0.
        if _bisect(current, lambda c: c.policy_seed,
                   lambda c, s: replace(c, policy_seed=s), accept):
            changed = True
        if not current.jitter.is_zero and _bisect(
            current,
            lambda c: c.jitter.seed,
            lambda c, s: replace(c, jitter=replace(c.jitter, seed=s)),
            accept,
        ):
            changed = True

    return ShrinkResult(
        config=current,
        violations=current_violations,
        attempts=attempts,
        reduced=current != config,
    )


def _bisect(
    start: FuzzConfig,
    get: Callable[[FuzzConfig], int],
    put: Callable[[FuzzConfig, int], FuzzConfig],
    accept: Callable[[FuzzConfig], bool],
) -> bool:
    """Halve an integer field toward 0 while the failure survives.

    Tries 0 first (the common case: the seed is irrelevant once the
    faults alone trigger the bug), then repeated halving.  ``accept``
    mutates the caller's current config, so ``get`` re-reads it each
    round.  Returns True if any step was accepted.
    """
    any_accepted = False
    cur = start
    if get(cur) > 0 and accept(put(cur, 0)):
        return True
    while True:
        value = get(cur)
        if value <= 0:
            return any_accepted
        candidate = put(cur, value // 2)
        if not accept(candidate):
            return any_accepted
        cur = candidate
        any_accepted = True
