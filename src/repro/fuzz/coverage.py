"""Coverage-guided fuzzing: seek novel interleavings, not novel seeds.

Uniform sampling (:func:`repro.fuzz.driver.sample_configs`) spends most
of a large budget re-discovering the same few behaviours — the ring
either completes, aborts, or hangs in one of a handful of shapes.  This
module adds the classic coverage-feedback loop on top of the existing
seeded sampler:

* **Coverage map** — every finished run is reduced to a small *cell*:
  its outcome class (ok/hang/violation/abort), a prefix of its
  timing-free *shape digest* (per-rank event-kind sequences — jitter
  moves timestamps around without necessarily changing the shape, so
  unlike ``result_digest`` the shape does not change on every seed),
  and log-binned kernel metrics from the PR-5 observability layer
  (consensus rounds, blocked intervals, messages sent).  Two runs in
  the same cell exercised the protocol the same way.
* **Corpus** — configs that hit a *novel* cell are kept; subsequent
  batches mutate corpus members (fault-schedule and jitter-spec
  mutators on top of the existing draw) instead of sampling blind.
  What found new behaviour once tends to sit near more of it.

Everything stays deterministic: one parent-side ``random.Random(seed)``
drives sampling, corpus choice, and mutation; each batch is a barrier
through the ordinary :class:`~repro.parallel.runner.SweepRunner`, so a
pooled campaign reproduces the serial one exactly.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

from ..obs.metrics import KernelMetrics
from ..parallel.runner import SerialRunner, SweepRunner
from ..simmpi.runtime import SimulationResult
from .config import FuzzConfig, default_eligible_ranks
from .driver import (
    _JITTER_LEVELS,
    _POLICY_CHOICES,
    FuzzOutcome,
    _draw_config,
    _draw_kill,
    classify,
)

__all__ = [
    "CoverageJob",
    "CoverageMap",
    "CoverageOutcome",
    "CoverageReport",
    "coverage_cell",
    "coverage_fuzz",
    "mutate_config",
    "shape_digest",
]

#: Hex chars of the shape digest that enter a coverage cell.  8 chars =
#: 32 bits — collisions are negligible next to the binning coarseness.
SHAPE_PREFIX = 8


def shape_digest(result: SimulationResult) -> str:
    """Timing-free fingerprint of a run's interleaving shape.

    Hashes each rank's *sequence of event kinds* (sends, recvs, probes,
    failures ... in per-rank order) and nothing else — no timestamps, no
    payloads.  ``result_digest`` incorporates event times, so every
    jitter seed yields a fresh digest and a digest-keyed coverage map
    would declare every run novel; the shape digest only moves when the
    *order of what each rank did* moves, which is the thing coverage
    guidance needs to notice.
    """
    per_rank: dict[int, list[str]] = {}
    for ev in result.trace:
        per_rank.setdefault(ev.rank, []).append(ev.kind.value)
    h = hashlib.blake2b(digest_size=16)
    for rank in sorted(per_rank):
        h.update(f"r{rank}:".encode())
        h.update("|".join(per_rank[rank]).encode())
        h.update(b"\x00")
    return h.hexdigest()


def _bin(n: int) -> int:
    """Log2 bin: 0 -> 0, 1 -> 1, 2-3 -> 2, 4-7 -> 3, ...  Coarse on
    purpose — cells must separate regimes, not individual counts."""
    return int(n).bit_length() if n > 0 else 0


def coverage_cell(
    outcome: FuzzOutcome,
    result: SimulationResult,
    metrics: KernelMetrics | None,
) -> tuple[Any, ...]:
    """Reduce one finished run to its coverage cell.

    Components: outcome class, shape-digest prefix, binned consensus
    round count, binned blocked-interval count, binned messages sent.
    The metric components come from the PR-5 kernel metrics; a run
    without metrics contributes ``0`` bins (still a valid cell).
    """
    from ..obs.telemetry import outcome_class

    rounds = len(metrics.consensus_rounds) if metrics is not None else 0
    blocked = (
        sum(len(iv) for iv in metrics.blocked_intervals)
        if metrics is not None
        else 0
    )
    sent = 0
    if result.perf is not None:
        sent = int(getattr(result.perf, "messages_sent", 0))
    return (
        outcome_class(outcome),
        shape_digest(result)[:SHAPE_PREFIX],
        _bin(rounds),
        _bin(blocked),
        _bin(sent),
    )


class CoverageMap:
    """Seen coverage cells with hit counts.

    ``add`` returns whether the cell was novel — the corpus-admission
    signal.  The map itself is tiny (cells are 5-tuples of scalars), so
    a 10^6-run campaign's map still fits in a few MB.
    """

    def __init__(self) -> None:
        self.cells: dict[tuple[Any, ...], int] = {}

    def add(self, cell: tuple[Any, ...]) -> bool:
        novel = cell not in self.cells
        self.cells[cell] = self.cells.get(cell, 0) + 1
        return novel

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell: tuple[Any, ...]) -> bool:
        return cell in self.cells

    @property
    def outcome_classes(self) -> set[str]:
        """Distinct outcome classes observed (first cell component)."""
        return {cell[0] for cell in self.cells}

    def to_dict(self) -> dict[str, int]:
        """JSON-able form: ``"class/shape/rounds/blocked/sent" -> hits``."""
        return {
            "/".join(str(c) for c in cell): count
            for cell, count in sorted(
                self.cells.items(), key=lambda kv: str(kv[0])
            )
        }


@dataclass(frozen=True)
class CoverageOutcome:
    """What one :class:`CoverageJob` ships back: the ordinary fuzz
    outcome plus the run's coverage cell."""

    outcome: FuzzOutcome
    cell: tuple[Any, ...]


@dataclass(frozen=True)
class CoverageJob:
    """Picklable unit of coverage-fuzz work.

    Runs the config exactly like a :class:`~repro.fuzz.driver.FuzzJob`
    but with :class:`~repro.obs.metrics.KernelMetrics` attached (hooks
    are non-perturbing — PR 5's golden tests pin that), so the cell's
    metric components exist.  The metrics object is reduced to bin
    counts *in the worker*; only the small cell crosses the pool.

    Deliberately outside the run-cache contract: the coverage loop
    explores freshly mutated configs, so hits would be rare, and the
    plain-fuzz cache entries must not be asked to answer a job whose
    payload would need the extra cell data.
    """

    config: FuzzConfig
    index: int = 0
    invariants: Any = None

    def __call__(self) -> CoverageOutcome:
        sim, main = self.config.build()
        sim.runtime.obs = KernelMetrics(sim.nprocs)
        result = sim.run(main, on_deadlock="return")
        outcome = classify(
            self.config, result, self.invariants, index=self.index
        )
        return CoverageOutcome(
            outcome=outcome,
            cell=coverage_cell(outcome, result, sim.runtime.obs),
        )


# ----------------------------------------------------------------------
# Mutators
# ----------------------------------------------------------------------


def _mutate_faults(
    config: FuzzConfig,
    rng: random.Random,
    *,
    horizon: float,
    max_call: int,
    eligible: tuple[int, ...],
) -> FuzzConfig:
    """Fault-schedule mutator: add, drop, or re-draw one kill."""
    faults = list(config.faults)
    moves = ["add"] if len(faults) < len(eligible) else []
    if faults:
        moves += ["drop", "redraw"]
    move = rng.choice(moves or ["add"])
    if move == "add":
        used = {k.rank for k in faults}
        free = [r for r in eligible if r not in used] or list(eligible)
        faults.append(
            _draw_kill(rng, rng.choice(free), horizon=horizon, max_call=max_call)
        )
    elif move == "drop":
        faults.pop(rng.randrange(len(faults)))
    else:  # redraw one kill's trigger on the same rank
        i = rng.randrange(len(faults))
        faults[i] = _draw_kill(
            rng, faults[i].rank, horizon=horizon, max_call=max_call
        )
    return replace(config, faults=tuple(faults))


def _mutate_jitter(
    config: FuzzConfig, rng: random.Random, *, max_jitter: float
) -> FuzzConfig:
    """Jitter-spec mutator: reseed the jitter or re-draw one amplitude."""
    j = config.jitter
    if not j.is_zero and rng.random() < 0.5:
        j = replace(j, seed=rng.randrange(2**32))
    else:
        field_name = rng.choice(("overhead", "latency", "byte_cost"))
        j = replace(
            j,
            seed=j.seed if not j.is_zero else rng.randrange(2**32),
            **{field_name: max_jitter * rng.choice(_JITTER_LEVELS)},
        )
    if j.is_zero:
        j = j.zeroed()
    return replace(config, jitter=j)


def _mutate_policy(config: FuzzConfig, rng: random.Random) -> FuzzConfig:
    """Policy mutator: reseed a random policy or switch policies."""
    policy = config.policy
    if policy == "random" and rng.random() < 0.7:
        return replace(config, policy_seed=rng.randrange(2**32))
    policy = rng.choice(_POLICY_CHOICES)
    seed = rng.randrange(2**32) if policy == "random" else 0
    return replace(config, policy=policy, policy_seed=seed)


def mutate_config(
    config: FuzzConfig,
    rng: random.Random,
    *,
    horizon: float,
    max_call: int,
    max_jitter: float,
    eligible: tuple[int, ...],
) -> FuzzConfig:
    """One mutation step on a corpus member.

    Weighted toward the fault schedule (where most distinct protocol
    behaviours live), with jitter and policy mutations keeping the
    timing/interleaving dimensions moving.
    """
    roll = rng.random()
    if roll < 0.5:
        return _mutate_faults(
            config, rng, horizon=horizon, max_call=max_call, eligible=eligible
        )
    if roll < 0.8:
        return _mutate_jitter(config, rng, max_jitter=max_jitter)
    return _mutate_policy(config, rng)


# ----------------------------------------------------------------------
# The guided campaign driver
# ----------------------------------------------------------------------


@dataclass
class CoverageReport:
    """Aggregate of one coverage-guided (or uniform-baseline) campaign."""

    scenario: Any
    seed: int
    budget: int
    guided: bool
    map: CoverageMap = field(default_factory=CoverageMap)
    runs: int = 0
    corpus_size: int = 0
    outcome_counts: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzOutcome] = field(default_factory=list)

    @property
    def distinct_cells(self) -> int:
        return len(self.map)

    @property
    def distinct_outcome_classes(self) -> int:
        return len(self.map.outcome_classes)

    def summary(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "runs": self.runs,
            "guided": self.guided,
            "cells": self.distinct_cells,
            "outcome_classes": self.distinct_outcome_classes,
            "corpus": self.corpus_size,
            "failures": len(self.failures),
        }

    def format(self) -> str:
        s = self.summary()
        mode = "guided" if self.guided else "uniform"
        lines = [
            f"coverage fuzz ({mode}) seed={s['seed']}: {s['runs']} run(s), "
            f"{s['cells']} cell(s), {s['outcome_classes']} outcome class(es), "
            f"corpus={s['corpus']}, {s['failures']} failure(s)"
        ]
        hist = ", ".join(
            f"{k}={v}" for k, v in sorted(self.outcome_counts.items())
        )
        lines.append(f"outcomes: {hist or 'none'}")
        lines.extend(o.describe() for o in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON artifact form (written by ``repro fuzz --coverage-out``)."""
        return {
            "format": "repro.coverage/1",
            **self.summary(),
            "outcome_counts": dict(sorted(self.outcome_counts.items())),
            "cells": self.map.to_dict(),
            "failing_configs": [o.config.to_dict() for o in self.failures],
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def coverage_fuzz(
    scenario: Any,
    budget: int = 200,
    seed: int = 0,
    *,
    runner: SweepRunner | None = None,
    invariants: Any = None,
    guided: bool = True,
    mutate_ratio: float = 0.7,
    batch: int | None = None,
    max_jitter: float = 0.3,
    min_kills: int = 0,
    max_kills: int = 2,
    horizon: float | None = None,
    max_call: int = 40,
    eligible: Sequence[int] | None = None,
) -> CoverageReport:
    """Run a coverage-guided fuzz campaign of *budget* total runs.

    Each batch draws configs either by mutating a random corpus member
    (probability *mutate_ratio*, once a corpus exists) or by fresh
    uniform sampling; runs them with kernel metrics attached; and admits
    every config that hit a novel coverage cell into the corpus.
    ``guided=False`` disables the feedback loop (every draw is fresh
    uniform sampling with the *same* rng discipline) — the baseline the
    seeded guided-vs-uniform test compares against at equal budget.

    Deterministic: the parent's single ``random.Random(seed)`` drives
    every draw and corpus choice, and batches are barriers, so serial
    and pooled campaigns produce identical reports.  Batches default to
    ``min(16, budget)`` runs — small enough that even a modest budget
    gets several feedback rounds (a single-batch campaign never consults
    its corpus and degenerates to uniform sampling).
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if not 0.0 <= mutate_ratio <= 1.0:
        raise ValueError("mutate_ratio must be in [0, 1]")
    if horizon is None:
        horizon = FuzzConfig(scenario).run().final_time
    if eligible is None:
        eligible = default_eligible_ranks(scenario)
    eligible = tuple(eligible)
    batch = min(16, budget) if batch is None else batch
    if budget and batch < 1:
        raise ValueError("batch must be >= 1")
    runner = runner or SerialRunner()
    rng = random.Random(seed)
    report = CoverageReport(
        scenario=scenario, seed=seed, budget=budget, guided=guided
    )
    corpus: list[FuzzConfig] = []
    draw_opts = dict(
        max_jitter=max_jitter,
        min_kills=min_kills,
        max_kills=max_kills,
        horizon=horizon,
        max_call=max_call,
        eligible=eligible,
    )
    index = 0
    while report.runs < budget:
        size = min(batch, budget - report.runs)
        configs: list[FuzzConfig] = []
        for _ in range(size):
            if guided and corpus and rng.random() < mutate_ratio:
                configs.append(
                    mutate_config(
                        rng.choice(corpus),
                        rng,
                        horizon=horizon,
                        max_call=max_call,
                        max_jitter=max_jitter,
                        eligible=eligible,
                    )
                )
            else:
                configs.append(_draw_config(rng, scenario, **draw_opts))
        jobs = [
            CoverageJob(config=c, index=index + i, invariants=invariants)
            for i, c in enumerate(configs)
        ]
        index += size
        for res in runner.run(jobs):
            report.runs += 1
            cls = res.cell[0]
            report.outcome_counts[cls] = report.outcome_counts.get(cls, 0) + 1
            if res.outcome.failed:
                report.failures.append(res.outcome)
            if report.map.add(res.cell):
                corpus.append(res.outcome.config)
    report.corpus_size = len(corpus)
    return report
