"""The fuzz driver: sample seeded configs, fan out, classify, shrink.

One master seed determines the whole campaign.  :func:`sample_configs`
draws every knob of every :class:`~repro.fuzz.config.FuzzConfig` from a
single ``random.Random(seed)`` stream, so ``repro fuzz --seed S --runs
N`` names an exact, re-derivable corpus — running it twice (or fanning
it across a process pool) produces byte-identical reports.

Each sampled config becomes one picklable :class:`FuzzJob` executed by a
:class:`~repro.parallel.runner.SweepRunner`; the worker reduces the full
:class:`~repro.simmpi.runtime.SimulationResult` to a compact
:class:`FuzzOutcome` (violations, trace digest, perf counters) before it
crosses back.  Failures are shrunk in the parent — shrinking is a
sequential search, and failures are rare — and can be persisted as
``.repro.json`` files that :func:`replay` re-executes and checks against
the recorded digest.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..analysis.digest import perf_dict, result_digest
from ..faults.schedule import KillSpec
from ..parallel.jobs import check_invariants
from ..parallel.runner import SerialRunner, SweepRunner
from ..simmpi.runtime import SimulationResult
from .config import (
    FORMAT,
    FuzzConfig,
    JitterSpec,
    default_eligible_ranks,
    default_invariants,
)
from .shrink import ShrinkResult, shrink

# Deterministic result fingerprinting lives in repro.analysis.digest
# (shared with the sweep cache); perf_dict/result_digest are re-exported
# here because the replay format and the fuzz API grew up around them.
__all__ = [
    "FuzzJob",
    "FuzzOutcome",
    "FuzzReport",
    "FuzzSummary",
    "ReplayResult",
    "classify",
    "fuzz",
    "iter_sample_configs",
    "load_repro",
    "perf_dict",
    "replay",
    "result_digest",
    "sample_configs",
    "write_repro",
]


# ----------------------------------------------------------------------
# Outcomes and jobs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzOutcome:
    """Compact, picklable record of one fuzzed run."""

    index: int
    config: FuzzConfig
    violations: tuple[str, ...]
    hung: bool
    aborted: bool
    digest: str
    final_time: float
    perf: dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def describe(self) -> str:
        status = "FAIL" if self.failed else "ok"
        line = f"[{self.index:4d}] {status}  {self.config.describe()}"
        if self.failed:
            line += "\n" + "\n".join(f"        - {v}" for v in self.violations)
        return line


def classify(
    config: FuzzConfig,
    result: SimulationResult,
    invariants: Any = None,
    *,
    index: int = 0,
) -> FuzzOutcome:
    """Reduce a finished run to its :class:`FuzzOutcome`.

    ``invariants=None`` derives the scenario's default battery (the same
    rule :func:`replay` applies, so classifications agree everywhere).
    """
    if invariants is None:
        invariants = default_invariants(config.scenario)
    return FuzzOutcome(
        index=index,
        config=config,
        violations=tuple(check_invariants(invariants, result)),
        hung=result.hung,
        aborted=result.aborted is not None,
        digest=result_digest(result),
        final_time=result.final_time,
        perf=perf_dict(result),
    )


@dataclass(frozen=True)
class FuzzJob:
    """Picklable unit of fuzz work: run one config, return its outcome.

    ``invariants`` must itself be picklable (a spec dataclass such as
    :class:`~repro.parallel.scenarios.StandardRingInvariants`, not a list
    of closures); ``None`` resolves the scenario's default battery inside
    the worker.

    The job implements the :mod:`repro.cache` contract (see
    ``parallel/jobs.py``): its key covers the full
    :class:`~repro.fuzz.config.FuzzConfig` — scenario, policy + seed,
    jitter spec, fault schedule — plus the invariant spec, so any change
    to the determinism surface is a cache miss.  ``index`` is display
    bookkeeping, not behaviour, and stays out of the key.
    """

    config: FuzzConfig
    index: int = 0
    invariants: Any = None

    #: Fields excluded from the cache key (see repro.cache.keys).
    _cache_key_exclude = ("index",)

    def __call__(self) -> FuzzOutcome:
        result = self.config.run()
        return classify(
            self.config, result, self.invariants, index=self.index
        )

    # -- cache contract (repro.cache) -----------------------------------

    def cache_payload(self) -> tuple[FuzzOutcome, dict[str, Any]]:
        """Run and also return the JSON-able cached form of the outcome."""
        outcome = self()
        return outcome, {
            "violations": list(outcome.violations),
            "hung": outcome.hung,
            "aborted": outcome.aborted,
            "digest": outcome.digest,
            "final_time": outcome.final_time,
            "perf": dict(outcome.perf),
        }

    def from_cached(self, payload: dict[str, Any]) -> FuzzOutcome:
        """Rebuild the exact :class:`FuzzOutcome` a fresh run would give."""
        return FuzzOutcome(
            index=self.index,
            config=self.config,
            violations=tuple(payload["violations"]),
            hung=bool(payload["hung"]),
            aborted=bool(payload["aborted"]),
            digest=payload["digest"],
            final_time=payload["final_time"],
            perf=dict(payload["perf"]),
        )


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------

#: Policy draw distribution: mostly random schedules (that is where the
#: fuzzing power is), with deterministic policies mixed in so policy-
#: independent bugs shrink to seed-free reproducers quickly.
_POLICY_CHOICES = ("random", "random", "random", "rr", "lowest")

#: Per-component jitter amplitudes are drawn from {0, max/3, max} rather
#: than a continuum: coarse levels shrink cleanly and still perturb every
#: relative event ordering the continuum would.
_JITTER_LEVELS = (0.0, 1.0 / 3.0, 1.0)


def _draw_kill(
    rng: random.Random, rank: int, *, horizon: float, max_call: int
) -> KillSpec:
    """One fault draw: a time-triggered or call-count-triggered kill."""
    if rng.random() < 0.5:
        return KillSpec(
            trigger="time", rank=rank, time=rng.uniform(0.0, horizon)
        )
    return KillSpec(
        trigger="call", rank=rank, call_no=rng.randint(1, max_call)
    )


def _draw_config(
    rng: random.Random,
    scenario: Any,
    *,
    max_jitter: float,
    min_kills: int,
    max_kills: int,
    horizon: float,
    max_call: int,
    eligible: tuple[int, ...],
) -> FuzzConfig:
    """Draw one config from *rng* (the sampling unit shared by
    :func:`iter_sample_configs` and the coverage-guided corpus)."""
    policy = rng.choice(_POLICY_CHOICES)
    policy_seed = rng.randrange(2**32) if policy == "random" else 0
    jitter = JitterSpec(
        seed=rng.randrange(2**32),
        overhead=max_jitter * rng.choice(_JITTER_LEVELS),
        latency=max_jitter * rng.choice(_JITTER_LEVELS),
        byte_cost=max_jitter * rng.choice(_JITTER_LEVELS),
    )
    if jitter.is_zero:
        jitter = jitter.zeroed()  # drop the now-meaningless seed
    nkills = min(rng.randint(min_kills, max_kills), len(eligible))
    kills = [
        _draw_kill(rng, rank, horizon=horizon, max_call=max_call)
        for rank in rng.sample(eligible, nkills)
    ]
    return FuzzConfig(
        scenario=scenario,
        policy=policy,
        policy_seed=policy_seed,
        jitter=jitter,
        faults=tuple(kills),
    )


def iter_sample_configs(
    scenario: Any,
    runs: int,
    seed: int,
    *,
    max_jitter: float = 0.3,
    min_kills: int = 0,
    max_kills: int = 2,
    horizon: float | None = None,
    max_call: int = 40,
    eligible: Sequence[int] | None = None,
) -> Iterator[FuzzConfig]:
    """Lazy :func:`sample_configs`: yield configs one at a time.

    Identical draw order and results — the list form is just
    ``list(iter_sample_configs(...))`` — but a 10^6-run streamed
    campaign never materializes the corpus.
    """
    if runs < 0:
        raise ValueError("runs must be >= 0")
    if not 0 <= min_kills <= max_kills:
        raise ValueError("need 0 <= min_kills <= max_kills")
    if horizon is None:
        horizon = FuzzConfig(scenario).run().final_time
    if eligible is None:
        eligible = default_eligible_ranks(scenario)
    eligible = tuple(eligible)
    rng = random.Random(seed)
    for _ in range(runs):
        yield _draw_config(
            rng,
            scenario,
            max_jitter=max_jitter,
            min_kills=min_kills,
            max_kills=max_kills,
            horizon=horizon,
            max_call=max_call,
            eligible=eligible,
        )


def sample_configs(
    scenario: Any,
    runs: int,
    seed: int,
    *,
    max_jitter: float = 0.3,
    min_kills: int = 0,
    max_kills: int = 2,
    horizon: float | None = None,
    max_call: int = 40,
    eligible: Sequence[int] | None = None,
) -> list[FuzzConfig]:
    """Draw *runs* fully seeded configurations for *scenario*.

    Every knob comes from one sequential ``random.Random(seed)`` stream,
    so ``(scenario, runs, seed, options)`` names the corpus exactly.
    ``horizon`` bounds time-triggered kill instants; ``None`` measures it
    by running the unperturbed scenario once (deterministic, so still
    reproducible).  ``eligible`` restricts which ranks may be killed;
    ``None`` applies the paper's root-survives default
    (:func:`~repro.fuzz.config.default_eligible_ranks`).
    """
    return list(
        iter_sample_configs(
            scenario,
            runs,
            seed,
            max_jitter=max_jitter,
            min_kills=min_kills,
            max_kills=max_kills,
            horizon=horizon,
            max_call=max_call,
            eligible=eligible,
        )
    )


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------


def _format_fuzz(
    s: dict[str, Any],
    shown: Sequence[FuzzOutcome],
    failures: Sequence[FuzzOutcome],
    shrunk: Sequence[ShrinkResult],
) -> str:
    """One report body shared by :class:`FuzzReport` and
    :class:`FuzzSummary`, so streamed and materialized campaigns render
    byte-identical reports."""
    lines = [
        f"fuzz seed={s['seed']}: {s['runs']} run(s), "
        f"{s['failures']} failure(s), {s['hangs']} hang(s), "
        f"{s['aborts']} abort(s)"
    ]
    lines.extend(o.describe() for o in shown)
    for outcome, sr in zip(failures, shrunk):
        lines.append(
            f"  shrunk [{outcome.index:4d}] -> {sr.describe()}"
        )
    return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything a fuzz campaign produced, in submission order.

    ``format()`` and ``summary()`` are deliberately free of wall-clock
    data: two runs of the same campaign render identical reports, which
    the determinism tests (and the CI smoke job) diff byte-for-byte.
    """

    scenario: Any
    seed: int
    outcomes: list[FuzzOutcome]
    #: One shrink result per failing outcome, aligned with :attr:`failures`.
    shrunk: list[ShrinkResult] = field(default_factory=list)

    @property
    def failures(self) -> list[FuzzOutcome]:
        return [o for o in self.outcomes if o.failed]

    def summary(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "runs": len(self.outcomes),
            "failures": len(self.failures),
            "hangs": sum(o.hung for o in self.outcomes),
            "aborts": sum(o.aborted for o in self.outcomes),
        }

    def format(self, *, verbose: bool = False) -> str:
        shown = self.outcomes if verbose else self.failures
        return _format_fuzz(self.summary(), shown, self.failures, self.shrunk)


@dataclass
class FuzzSummary:
    """Streaming counterpart of :class:`FuzzReport`: counts plus the
    (rare) failing outcomes, never the full outcome list.

    Produced by ``fuzz(..., stream=True)`` — a 10^6-run campaign holds
    O(failures) memory instead of O(runs).  ``summary()`` and
    ``format()`` are byte-identical to the materialized report's
    (``format(verbose=True)`` is unavailable: the ok outcomes are gone
    by design).
    """

    scenario: Any
    seed: int
    runs: int = 0
    hangs: int = 0
    aborts: int = 0
    failures: list[FuzzOutcome] = field(default_factory=list)
    shrunk: list[ShrinkResult] = field(default_factory=list)

    def add(self, outcome: FuzzOutcome) -> None:
        self.runs += 1
        self.hangs += outcome.hung
        self.aborts += outcome.aborted
        if outcome.failed:
            self.failures.append(outcome)

    def summary(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "runs": self.runs,
            "failures": len(self.failures),
            "hangs": self.hangs,
            "aborts": self.aborts,
        }

    def format(self) -> str:
        return _format_fuzz(
            self.summary(), self.failures, self.failures, self.shrunk
        )


def fuzz(
    scenario: Any,
    runs: int = 100,
    seed: int = 0,
    *,
    runner: SweepRunner | None = None,
    cache: Any = None,
    invariants: Any = None,
    shrink_failures: bool = True,
    max_shrink_attempts: int = 300,
    telemetry: str | None = None,
    stream: bool = False,
    stream_window: int | None = None,
    **sample_options: Any,
) -> "FuzzReport | FuzzSummary":
    """Run one seeded fuzz campaign end to end.

    Samples the corpus, fans it out through *runner* (default: in-process
    :class:`~repro.parallel.runner.SerialRunner`; any pooled runner gives
    the identical report, just faster), and shrinks every failure in the
    parent.  Extra keyword options are forwarded to
    :func:`sample_configs`.

    ``cache`` (a :class:`repro.cache.RunCache` or a directory path)
    memoizes each config's classified outcome on disk: re-running an
    unchanged corpus becomes a warm replay that answers every job from
    its content-addressed key instead of executing the simulation.  The
    report is byte-identical with the cache off, cold, or warm.
    Shrinking always re-executes (it explores *new* configs).

    ``telemetry`` names a JSONL file that receives one line per sampled
    run (wall time, outcome class, worker id, retries, cache
    disposition — see :mod:`repro.obs.telemetry`).  Shrink re-runs are
    not part of the stream: they explore configs outside the corpus.

    ``stream=True`` pipes a *lazily sampled* corpus through the
    runner's ``run_stream`` and folds outcomes into a
    :class:`FuzzSummary` as they arrive — memory stays O(failures)
    regardless of ``runs``, and ``summary()``/``format()`` are
    byte-identical to the materialized report's.
    """
    runner = runner or SerialRunner()
    if cache is not None and cache is not False:
        from ..cache import attach_cache

        runner = attach_cache(runner, cache)
    if stream:
        jobs_iter = (
            FuzzJob(config=c, index=i, invariants=invariants)
            for i, c in enumerate(
                iter_sample_configs(scenario, runs, seed, **sample_options)
            )
        )
        summary = FuzzSummary(scenario=scenario, seed=seed)
        if telemetry:
            from ..obs.telemetry import TelemetryWriter, run_recorded_stream

            writer = TelemetryWriter(
                telemetry, kind="fuzz", total=runs, workers=None
            )
            try:
                for outcome in run_recorded_stream(
                    runner, jobs_iter, writer, window=stream_window
                ):
                    summary.add(outcome)
            finally:
                writer.close()
        else:
            for outcome in runner.run_stream(jobs_iter, window=stream_window):
                summary.add(outcome)
        if shrink_failures:
            summary.shrunk = [
                shrink(o.config, invariants, max_attempts=max_shrink_attempts)
                for o in summary.failures
            ]
        return summary
    configs = sample_configs(scenario, runs, seed, **sample_options)
    jobs = [
        FuzzJob(config=c, index=i, invariants=invariants)
        for i, c in enumerate(configs)
    ]
    if telemetry:
        from ..obs.telemetry import TelemetryWriter, run_recorded

        writer = TelemetryWriter(
            telemetry, kind="fuzz", total=len(jobs), workers=None
        )
        try:
            outcomes = run_recorded(runner, jobs, writer)
        finally:
            writer.close()
    else:
        outcomes = runner.run(jobs)
    report = FuzzReport(scenario=scenario, seed=seed, outcomes=outcomes)
    if shrink_failures:
        report.shrunk = [
            shrink(o.config, invariants, max_attempts=max_shrink_attempts)
            for o in report.failures
        ]
    return report


# ----------------------------------------------------------------------
# Reproducer files and replay
# ----------------------------------------------------------------------


def write_repro(
    config: FuzzConfig,
    path: str | Path,
    *,
    invariants: Any = None,
) -> Path:
    """Persist *config* as a ``.repro.json`` with its expected outcome.

    The config is **re-run here** to record what it currently produces
    (violations, digest, perf, final time) — essential after shrinking,
    whose minimized config has a different digest than the originally
    sampled failure.
    """
    result = config.run()
    outcome = classify(config, result, invariants)
    doc = config.to_dict()
    doc["expect"] = {
        "violations": list(outcome.violations),
        "digest": outcome.digest,
        "final_time": outcome.final_time,
        "perf": outcome.perf,
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_repro(path: str | Path) -> tuple[FuzzConfig, dict[str, Any]]:
    """Read a ``.repro.json``: the config plus its ``expect`` block
    (empty dict when the file records no expectation)."""
    doc = json.loads(Path(path).read_text())
    fmt = doc.get("format", FORMAT)
    if fmt != FORMAT:
        raise ValueError(f"unsupported repro format {fmt!r} (want {FORMAT!r})")
    return FuzzConfig.from_dict(doc), doc.get("expect", {})


@dataclass(frozen=True)
class ReplayResult:
    """A replayed run compared against its recorded expectation."""

    outcome: FuzzOutcome
    expect: dict[str, Any]
    #: Human-readable discrepancies; empty means byte-identical replay.
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        lines = [self.outcome.describe()]
        if self.ok:
            lines.append(
                "replay matches recorded expectation"
                if self.expect
                else "no recorded expectation; run accepted as-is"
            )
        else:
            lines.append("REPLAY MISMATCH:")
            lines.extend(f"  - {m}" for m in self.mismatches)
        return "\n".join(lines)


def replay(
    source: str | Path | FuzzConfig,
    *,
    invariants: Any = None,
) -> ReplayResult:
    """Re-run a saved reproducer and verify it reproduces exactly.

    Checks, field by field, that the fresh run matches the recorded
    ``expect`` block: same invariant violations, same trace digest, same
    perf counters, same final virtual time.  Any difference means the
    simulator (or the protocol under test) changed behaviour since the
    file was written — precisely what a reproducer exists to detect.
    """
    if isinstance(source, FuzzConfig):
        config, expect = source, {}
    else:
        config, expect = load_repro(source)
    result = config.run()
    outcome = classify(config, result, invariants)
    mismatches: list[str] = []
    if "violations" in expect:
        want = list(expect["violations"])
        got = list(outcome.violations)
        if want != got:
            mismatches.append(f"violations: expected {want!r}, got {got!r}")
    if "digest" in expect and expect["digest"] != outcome.digest:
        mismatches.append(
            f"trace digest: expected {expect['digest']}, got {outcome.digest}"
        )
    if "final_time" in expect and expect["final_time"] != outcome.final_time:
        mismatches.append(
            f"final_time: expected {expect['final_time']!r}, "
            f"got {outcome.final_time!r}"
        )
    if "perf" in expect and dict(expect["perf"]) != outcome.perf:
        mismatches.append(
            f"perf counters: expected {expect['perf']!r}, got {outcome.perf!r}"
        )
    return ReplayResult(
        outcome=outcome, expect=expect, mismatches=tuple(mismatches)
    )
