"""The fuzzer's unit of reproduction: one fully seeded perturbed run.

A :class:`FuzzConfig` pins everything that can vary between runs of a
scenario — the scenario parameters themselves (a picklable spec from
:mod:`repro.parallel.scenarios`), the scheduling policy and its seed,
the timing-jitter amplitudes and seed, and the fault schedule.  Because
the simulator is deterministic, a config **is** its run: building and
executing the same config anywhere (serially, in a pool worker, from a
saved ``.repro.json``) produces a byte-identical trace and identical
perf counters.

The JSON form is deliberately flat and human-editable::

    {
      "format": "repro.fuzz/1",
      "scenario": {"kind": "ring", "nprocs": 4, "iters": 3, ...},
      "policy": "random",
      "policy_seed": 1881201277,
      "jitter": {"seed": 55, "overhead": 0.3, "latency": 0.1, "byte_cost": 0.0},
      "faults": {"kills": [{"trigger": "time", "rank": 2, "time": 1.1e-05}]}
    }
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..faults.injector import CompositeInjector
from ..faults.schedule import KillSpec
from ..parallel.jobs import check_invariants
from ..parallel.scenarios import (
    AppScenario,
    GenericInvariants,
    RingScenario,
    StandardRingInvariants,
)
from ..simmpi.costmodel import DEFAULT_COST, CostModel, JitteredCostModel
from ..simmpi.runtime import Simulation, SimulationResult

FORMAT = "repro.fuzz/1"

#: Scenario spec registry for (de)serialization.  ``kind`` tags the
#: class; everything else is the dataclass's own fields.
_SCENARIO_KINDS = {"ring": RingScenario, "app": AppScenario}


def scenario_to_dict(scenario: Any) -> dict[str, Any]:
    """Serialize a picklable scenario spec to its tagged JSON form."""
    for kind, cls in _SCENARIO_KINDS.items():
        if isinstance(scenario, cls):
            return {"kind": kind, **dataclasses.asdict(scenario)}
    raise TypeError(
        f"cannot serialize scenario of type {type(scenario).__name__}; "
        f"known kinds: {sorted(_SCENARIO_KINDS)}"
    )


def scenario_from_dict(d: dict[str, Any]) -> Any:
    """Rebuild a scenario spec from :func:`scenario_to_dict` output."""
    d = dict(d)
    kind = d.pop("kind")
    cls = _SCENARIO_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown scenario kind {kind!r} (known: {sorted(_SCENARIO_KINDS)})"
        )
    return cls(**d)


@dataclass(frozen=True)
class JitterSpec:
    """Seeded timing-jitter amplitudes (0 = exact LogGP costs).

    ``overhead``/``latency``/``byte_cost`` are the relative amplitudes
    fed to :class:`~repro.simmpi.costmodel.JitteredCostModel`; ``seed``
    picks which perturbation within those bounds.
    """

    seed: int = 0
    overhead: float = 0.0
    latency: float = 0.0
    byte_cost: float = 0.0

    @property
    def is_zero(self) -> bool:
        return self.overhead == 0.0 and self.latency == 0.0 and self.byte_cost == 0.0

    def zeroed(self) -> "JitterSpec":
        """The fully unperturbed spec (shrinker target)."""
        return JitterSpec()

    def cost_model(self, base: CostModel = DEFAULT_COST) -> CostModel | None:
        """A fresh jittered model around *base*, or ``None`` when zero
        (the scenario's own cost model is then left untouched)."""
        if self.is_zero:
            return None
        return JitteredCostModel(
            latency=base.latency,
            byte_cost=base.byte_cost,
            overhead=base.overhead,
            jitter_seed=self.seed,
            overhead_jitter=self.overhead,
            latency_jitter=self.latency,
            byte_cost_jitter=self.byte_cost,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "overhead": self.overhead,
            "latency": self.latency,
            "byte_cost": self.byte_cost,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "JitterSpec":
        return cls(
            seed=d.get("seed", 0),
            overhead=d.get("overhead", 0.0),
            latency=d.get("latency", 0.0),
            byte_cost=d.get("byte_cost", 0.0),
        )

    def describe(self) -> str:
        if self.is_zero:
            return "none"
        return (
            f"seed={self.seed} o={self.overhead:g} "
            f"L={self.latency:g} G={self.byte_cost:g}"
        )


@dataclass(frozen=True)
class FuzzConfig:
    """One seeded perturbed-but-reproducible run of a scenario."""

    scenario: Any
    policy: str = "rr"
    policy_seed: int = 0
    jitter: JitterSpec = field(default_factory=JitterSpec)
    faults: tuple[KillSpec, ...] = ()

    # -- execution ------------------------------------------------------

    def build(self) -> tuple[Simulation, Any]:
        """Materialize the fully configured ``(Simulation, main)`` pair."""
        sim, main = self.scenario()
        sim.configure(
            policy=self.policy,
            policy_seed=self.policy_seed,
            cost=self.jitter.cost_model(),
        )
        if self.faults:
            sim.add_injector(
                CompositeInjector(spec.injector() for spec in self.faults)
            )
        return sim, main

    def run(self) -> SimulationResult:
        """Build and execute (deadlocks are recorded, not raised)."""
        sim, main = self.build()
        return sim.run(main, on_deadlock="return")

    # -- shrinking helpers ---------------------------------------------

    def without_fault(self, index: int) -> "FuzzConfig":
        faults = self.faults[:index] + self.faults[index + 1 :]
        return replace(self, faults=faults)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "scenario": scenario_to_dict(self.scenario),
            "policy": self.policy,
            "policy_seed": self.policy_seed,
            "jitter": self.jitter.to_dict(),
            "faults": {"kills": [spec.to_dict() for spec in self.faults]},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FuzzConfig":
        fmt = d.get("format", FORMAT)
        if fmt != FORMAT:
            raise ValueError(f"unsupported repro format {fmt!r} (want {FORMAT!r})")
        return cls(
            scenario=scenario_from_dict(d["scenario"]),
            policy=d.get("policy", "rr"),
            policy_seed=d.get("policy_seed", 0),
            jitter=JitterSpec.from_dict(d.get("jitter", {})),
            faults=tuple(
                KillSpec.from_dict(k) for k in d.get("faults", {}).get("kills", [])
            ),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FuzzConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def describe(self) -> str:
        """One-line human summary (stable: used in fuzz reports)."""
        kills = ", ".join(_kill_str(spec) for spec in self.faults) or "none"
        policy = self.policy
        if policy == "random":
            policy = f"random/{self.policy_seed}"
        return f"policy={policy} jitter=({self.jitter.describe()}) kills=[{kills}]"


def _kill_str(spec: KillSpec) -> str:
    if spec.trigger == "time":
        return f"r{spec.rank}@t={spec.time:g}"
    if spec.trigger == "probe":
        return f"r{spec.rank}@{spec.probe}#{spec.hit}"
    op = f":{spec.op}" if spec.op else ""
    return f"r{spec.rank}@call{spec.call_no}{op}"


# ----------------------------------------------------------------------
# Default classification and kill eligibility per scenario kind
# ----------------------------------------------------------------------


def default_invariants(scenario: Any) -> Any:
    """The picklable invariant battery a scenario is judged against.

    Ring scenarios get the full standard battery (progress, ordering,
    no-duplicates, value bounds); app scenarios get the workload-agnostic
    liveness battery.  Matches what ``repro replay`` re-derives, so a
    saved failure is judged by the same rules that flagged it.
    """
    if isinstance(scenario, RingScenario):
        return StandardRingInvariants(
            scenario.iters, scenario.nprocs, allow_root_loss=scenario.rootft
        )
    return GenericInvariants()


def default_eligible_ranks(scenario: Any) -> tuple[int, ...]:
    """Which ranks the sampler may kill.

    Rank 0 is spared unless the scenario is explicitly root-failure
    tolerant: the paper's baseline assumption (§III) is that the root
    survives, and the manager/heat/ABFT apps treat rank 0 as the
    coordinator in the same way.
    """
    if isinstance(scenario, RingScenario) and scenario.rootft:
        return tuple(range(scenario.nprocs))
    return tuple(range(1, scenario.nprocs))


def violations_of(
    config: FuzzConfig,
    invariants: Any = None,
    *,
    result: SimulationResult | None = None,
) -> list[str]:
    """Run *config* (or classify an already-run *result*) and collect
    invariant violations (``invariants=None`` derives the default
    battery from the scenario)."""
    if result is None:
        result = config.run()
    if invariants is None:
        invariants = default_invariants(config.scenario)
    return check_invariants(invariants, result)
