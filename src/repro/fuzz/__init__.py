"""``repro.fuzz`` — seeded schedule-space fuzzing with shrinking reproducers.

The exhaustive explorer (:mod:`repro.faults.explorer`) enumerates *fault
windows* but runs every scenario under one fixed scheduling policy and
exact LogGP costs, so schedule- and timing-dependent protocol bugs stay
invisible to it.  This package closes that gap:

* :class:`FuzzConfig` — one fully seeded perturbed run: a picklable
  scenario spec, a seeded scheduling policy, seeded timing jitter
  (:class:`~repro.simmpi.costmodel.JitteredCostModel`), and a fault
  schedule.  Serializes to the ``.repro.json`` replay format, so every
  failure is a one-command byte-identical reproduction.
* :func:`fuzz` — sample *N* configurations from a master seed, fan them
  out through the :class:`~repro.parallel.SweepRunner` engine (one
  picklable :class:`FuzzJob` each), classify outcomes with the standard
  invariant batteries, and shrink every failure.
* :func:`shrink` — delta-debugging minimizer: drop faults, zero jitter
  fields, and bisect seeds until the smallest configuration that still
  violates the invariant remains.
* :func:`replay` — re-run a saved configuration and check it reproduces
  the recorded violation byte-for-byte (trace digest + perf counters).

CLI: ``repro fuzz`` / ``repro replay`` (see ``docs/testing.md``).
"""

from .config import (
    FuzzConfig,
    JitterSpec,
    default_eligible_ranks,
    default_invariants,
    scenario_from_dict,
    scenario_to_dict,
    violations_of,
)
from .coverage import (
    CoverageJob,
    CoverageMap,
    CoverageOutcome,
    CoverageReport,
    coverage_cell,
    coverage_fuzz,
    mutate_config,
    shape_digest,
)
from .driver import (
    FuzzJob,
    FuzzOutcome,
    FuzzReport,
    FuzzSummary,
    ReplayResult,
    classify,
    fuzz,
    iter_sample_configs,
    load_repro,
    perf_dict,
    replay,
    result_digest,
    sample_configs,
    write_repro,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "CoverageJob",
    "CoverageMap",
    "CoverageOutcome",
    "CoverageReport",
    "FuzzConfig",
    "FuzzJob",
    "FuzzOutcome",
    "FuzzReport",
    "FuzzSummary",
    "JitterSpec",
    "ReplayResult",
    "ShrinkResult",
    "classify",
    "coverage_cell",
    "coverage_fuzz",
    "perf_dict",
    "default_eligible_ranks",
    "default_invariants",
    "fuzz",
    "iter_sample_configs",
    "load_repro",
    "mutate_config",
    "shape_digest",
    "replay",
    "result_digest",
    "sample_configs",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink",
    "violations_of",
    "write_repro",
]
