"""``repro.fuzz`` — seeded schedule-space fuzzing with shrinking reproducers.

The exhaustive explorer (:mod:`repro.faults.explorer`) enumerates *fault
windows* but runs every scenario under one fixed scheduling policy and
exact LogGP costs, so schedule- and timing-dependent protocol bugs stay
invisible to it.  This package closes that gap:

* :class:`FuzzConfig` — one fully seeded perturbed run: a picklable
  scenario spec, a seeded scheduling policy, seeded timing jitter
  (:class:`~repro.simmpi.costmodel.JitteredCostModel`), and a fault
  schedule.  Serializes to the ``.repro.json`` replay format, so every
  failure is a one-command byte-identical reproduction.
* :func:`fuzz` — sample *N* configurations from a master seed, fan them
  out through the :class:`~repro.parallel.SweepRunner` engine (one
  picklable :class:`FuzzJob` each), classify outcomes with the standard
  invariant batteries, and shrink every failure.
* :func:`shrink` — delta-debugging minimizer: drop faults, zero jitter
  fields, and bisect seeds until the smallest configuration that still
  violates the invariant remains.
* :func:`replay` — re-run a saved configuration and check it reproduces
  the recorded violation byte-for-byte (trace digest + perf counters).

CLI: ``repro fuzz`` / ``repro replay`` (see ``docs/testing.md``).
"""

from .config import (
    FuzzConfig,
    JitterSpec,
    default_eligible_ranks,
    default_invariants,
    scenario_from_dict,
    scenario_to_dict,
    violations_of,
)
from .driver import (
    FuzzJob,
    FuzzOutcome,
    FuzzReport,
    ReplayResult,
    classify,
    fuzz,
    load_repro,
    perf_dict,
    replay,
    result_digest,
    sample_configs,
    write_repro,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "FuzzConfig",
    "FuzzJob",
    "FuzzOutcome",
    "FuzzReport",
    "JitterSpec",
    "ReplayResult",
    "ShrinkResult",
    "classify",
    "perf_dict",
    "default_eligible_ranks",
    "default_invariants",
    "fuzz",
    "load_repro",
    "replay",
    "result_digest",
    "sample_configs",
    "scenario_from_dict",
    "scenario_to_dict",
    "shrink",
    "violations_of",
    "write_repro",
]
