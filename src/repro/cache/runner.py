"""A :class:`~repro.parallel.runner.SweepRunner` wrapper that answers
jobs from the content-addressed store before touching the inner runner.

Design choice worth spelling out: **all cache traffic happens in the
submitting process**.  The wrapper computes keys and performs lookups
up front, sends only the misses to the inner runner (serial or pooled),
and performs the stores as results come back.  Three things fall out:

* the hit/miss/stale/store counters in :data:`repro.perf.CACHE` are
  exact even for pooled sweeps (worker-side counters would be lost at
  the pool boundary);
* the store sees one writer per sweep parent, so the backend's own
  coordination (flock on the JSON store, WAL on the SQLite store) is
  enough for concurrent campaigns sharing a cache directory;
* lookups and stores are *batched* — one ``get_many`` per ``run()``
  call (one per window when streaming via ``run_stream``) and one
  ``put_many`` for all the misses, instead of a store round-trip per
  job;
* workers stay oblivious to caching — a miss crosses the pool wrapped
  in :class:`_MissJob`, which calls the job's ``cache_payload()`` *in
  the worker* (where the trace exists, so digests cost nothing extra to
  compute) and ships back ``(outcome, payload)``.

Merged results keep submission order, exactly like the inner runner, so
a cached sweep is report-byte-identical to an uncached one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from .. import perf
from ..parallel.runner import SerialRunner, SweepJob, SweepRunner
from .keys import job_key
from .store import RunCache

__all__ = ["CachedRunner", "attach_cache"]

_PENDING = object()


def attach_cache(runner: SweepRunner, cache: Any) -> SweepRunner:
    """Give *runner* a cache in the way that suits its transport.

    A runner with native cache support — ``RemoteRunner``, whose
    workers perform the lookups themselves so warm entries never cross
    the wire — gets the cache attached in place; every other runner is
    wrapped in :class:`CachedRunner` (parent-side lookups).  ``cache``
    is anything ``RunCache.at`` accepts; ``None``/``False`` returns the
    runner unchanged.  Either way the counters in ``repro.perf.CACHE``
    stay exact and the report stays byte-identical to an uncached run.
    """
    if cache is None or cache is False:
        return runner
    native = getattr(runner, "attach_cache", None)
    if callable(native):
        native(RunCache.at(cache))
        return runner
    return CachedRunner(cache=RunCache.at(cache), inner=runner)


@dataclass(frozen=True)
class _MissJob:
    """Worker-side shim for a cache miss: run the job via its cache
    contract so the payload is built where the trace lives, and return
    ``(outcome, payload)`` for the parent to store."""

    job: Any

    def __call__(self) -> tuple[Any, dict[str, Any]]:
        return self.job.cache_payload()


class CachedRunner(SweepRunner):
    """Serve cacheable jobs from a :class:`RunCache`; delegate the rest.

    Parameters
    ----------
    cache:
        A :class:`RunCache`, a path, or ``None`` for the default
        directory (see :func:`~repro.cache.store.default_cache_dir`).
    inner:
        The runner that executes misses and uncacheable jobs
        (default: :class:`~repro.parallel.runner.SerialRunner`).
    """

    def __init__(
        self,
        cache: RunCache | str | None = None,
        inner: SweepRunner | None = None,
    ) -> None:
        super().__init__()
        self.cache = RunCache.at(cache)
        self.inner = inner or SerialRunner()

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:
        jobs = list(jobs)
        results: list[Any] = [_PENDING] * len(jobs)
        keys = [job_key(job) for job in jobs]
        # One batched store round-trip for the whole job list (a single
        # SQL query on the sqlite backend) instead of one read per job.
        cacheable = [i for i, key in enumerate(keys) if key is not None]
        fetched = dict(
            zip(cacheable, self.cache.get_many([keys[i] for i in cacheable]))
        )
        #: (submission index, key or None, job-to-execute) per pending job.
        pending: list[tuple[int, str | None, SweepJob]] = []
        for i, job in enumerate(jobs):
            key = keys[i]
            if key is None:
                # Not part of the cache contract (or vetoed): pass the
                # job through untouched, count nothing.
                pending.append((i, None, job))
                continue
            status, payload = fetched[i]
            if status == "hit":
                try:
                    results[i] = job.from_cached(payload)
                except Exception:  # noqa: BLE001 - treat as stale entry
                    status = "stale"
            if status == "hit":
                perf.CACHE.hits += 1
                continue
            if status == "stale":
                perf.CACHE.stale += 1
            else:
                perf.CACHE.misses += 1
            pending.append((i, key, _MissJob(job)))
        self.job_retries = [0] * len(jobs)
        if pending:
            executed = self.inner.run([job for _i, _k, job in pending])
            # Map the inner runner's per-job retry counts (indexed by its
            # own submission order) back onto the full job list; cache
            # hits never executed, so they keep zero retries.
            inner_retries = getattr(self.inner, "job_retries", None)
            stores: list[tuple[str, dict[str, Any], Any]] = []
            for j, ((i, key, wrapped), value) in enumerate(
                zip(pending, executed)
            ):
                if inner_retries is not None and j < len(inner_retries):
                    self.job_retries[i] = inner_retries[j]
                if key is None:
                    results[i] = value
                    continue
                outcome, payload = value
                results[i] = outcome
                stores.append((key, payload, wrapped.job))
            if stores:
                # One transaction / one lock acquisition for the batch.
                self.cache.put_many(stores)
                perf.CACHE.stores += len(stores)
        return results
