"""On-disk content-addressed store for classified sweep outcomes.

Two interchangeable backends implement one :class:`CacheStore`
interface (raw entry in, raw entry out):

* :class:`JsonStore` — one JSON file per entry at
  ``root/<key[:2]>/<key>.json`` (the two-hex-digit fan-out keeps
  directories small), writers guarded by an ``fcntl`` flock on
  ``root/.lock``, writes atomic via tmp file + ``os.replace``.  Zero
  dependencies, human-greppable, and fine up to ~10^4 entries — past
  that the one-file-per-entry layout pays a syscall per lookup.
* :class:`~repro.cache.sqlite_store.SqliteStore` — a single SQLite
  database at ``root/cache.sqlite`` in WAL mode, one table keyed by job
  key.  Batched ``read_many``/``write_many`` run as one statement /
  one transaction, which is what makes 10^5–10^6-entry campaigns
  practical (see ``benchmarks/bench_cache.py`` for the measured
  warm-lookup gap).

Both store the *same entry format*: the classified outcome payload
produced by the job's ``cache_payload()`` — violations, hang/abort
flags, digests, perf counters minus ``wall_s``, final virtual time —
never a raw ``SimulationResult`` (traces are large, and pickled kernel
state would rot across versions), plus a base64-pickled copy of the job
itself, which is what lets ``repro cache verify`` re-execute a sample of
entries and diff the stored payload against a fresh run field by field.
Because the entry format is shared, :meth:`RunCache.migrate` can move a
store between backends without touching a single payload.

Backend selection (:class:`RunCache`): explicit ``backend=`` argument,
else ``$REPRO_CACHE_BACKEND``, else auto-detection from the directory
(an existing ``cache.sqlite`` → sqlite, existing shards/.lock → json),
else the JSON default — mirroring the fiber-backend precedence rules.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import random
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from ..obs import registry as _metrics
from ..obs.spans import active as _spans_active
from .keys import KEY_FORMAT, job_key

try:  # pragma: no cover - exercised only where fcntl exists (POSIX)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "BACKENDS",
    "CORRUPT",
    "CacheStore",
    "JsonStore",
    "RunCache",
    "VerifyResult",
    "default_cache_dir",
    "detect_backend",
    "diff_payload",
    "make_store",
]

#: Known store backend names (see module docstring for the trade-off).
BACKENDS = ("json", "sqlite")

#: Sentinel returned by :meth:`CacheStore.read` for an entry that exists
#: but cannot be parsed — distinct from ``None`` (no entry at all) so
#: ``fetch`` can report ``"stale"`` (re-execute and overwrite) rather
#: than ``"miss"``.
CORRUPT: Any = object()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/runs``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "runs"


def diff_payload(
    stored: dict[str, Any], fresh: dict[str, Any]
) -> list[str]:
    """Field-by-field differences between two outcome payloads.

    Returns human-readable ``field: stored != fresh`` lines; empty means
    the payloads agree.  Comparison happens after a JSON round-trip of
    the fresh side so types match what the store serialized (tuples
    become lists, etc.).
    """
    fresh = json.loads(json.dumps(fresh))
    diffs = []
    for name in sorted(set(stored) | set(fresh)):
        if name not in stored:
            diffs.append(f"{name}: missing from stored entry")
        elif name not in fresh:
            diffs.append(f"{name}: missing from fresh run")
        elif stored[name] != fresh[name]:
            diffs.append(f"{name}: stored {stored[name]!r} != fresh {fresh[name]!r}")
    return diffs


@dataclass
class VerifyResult:
    """Outcome of re-executing one cached entry (``repro cache verify``)."""

    key: str
    job_label: str
    ok: bool
    #: ``field: stored != fresh`` lines when the payload disagrees.
    diffs: list[str] = field(default_factory=list)
    #: Set when the entry could not be re-executed at all.
    error: str | None = None

    def format(self) -> str:
        head = f"{'OK  ' if self.ok else 'FAIL'} {self.key[:12]}  {self.job_label}"
        if self.error:
            return f"{head}\n      {self.error}"
        return "\n".join([head] + [f"      {d}" for d in self.diffs])


# ----------------------------------------------------------------------
# The backend interface
# ----------------------------------------------------------------------


class CacheStore:
    """Raw entry storage under one root directory.

    An *entry* is the JSON-able dict built by :meth:`RunCache.put`
    (``format``/``key``/``stored_at``/``job_type``/``job_pickle``/
    ``payload``); backends move entries in and out without interpreting
    them.  The batched methods have loop fallbacks so a backend only
    overrides what it can genuinely accelerate.
    """

    #: Backend name as reported by ``repro cache stats``.
    name = "?"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # -- single-entry primitives (must be overridden) ------------------

    def read(self, key: str) -> dict[str, Any] | None:
        """The parsed entry, ``None`` when absent, :data:`CORRUPT` when
        present but unparseable."""
        raise NotImplementedError

    def write(self, key: str, entry: dict[str, Any]) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        """Every stored key, in sorted order (both backends guarantee
        the same order, so sampling/iteration is backend-independent)."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """On-disk footprint of the store's files."""
        raise NotImplementedError

    def clear(self) -> None:
        """Remove the backend's storage entirely (used by migration)."""
        raise NotImplementedError

    # -- batched operations (loop fallbacks) ----------------------------

    def read_many(self, keys: Sequence[str]) -> list[dict[str, Any] | None]:
        """Batched read, one result per key in order.

        This feeds :meth:`RunCache.get_many` (the fetch path), so a
        backend may return entries *trimmed* to the classification
        fields — ``format``, ``key``, ``payload`` — when that is cheaper
        than materializing the full entry; callers needing the job
        pickle or ``stored_at`` must use :meth:`read`.
        """
        return [self.read(k) for k in keys]

    def write_many(self, items: Iterable[tuple[str, dict[str, Any]]]) -> None:
        with self.maintenance_lock():
            for key, entry in items:
                self._write_locked(key, entry)

    def delete_many(self, keys: Sequence[str]) -> None:
        with self.maintenance_lock():
            for k in keys:
                self.delete(k)

    def _write_locked(self, key: str, entry: dict[str, Any]) -> None:
        """Write assuming :meth:`maintenance_lock` is already held
        (the default just writes; JSON overrides to skip re-locking)."""
        self.write(key, entry)

    # -- coordination ---------------------------------------------------

    @contextmanager
    def maintenance_lock(self):
        """Exclusive writer lock for multi-step maintenance (gc,
        migration).  A no-op by default — backends with transactional
        writes (SQLite WAL) do not need it for correctness."""
        yield self


class JsonStore(CacheStore):
    """One JSON file per entry at ``root/<key[:2]>/<key>.json``.

    Writes are atomic (tmp file + ``os.replace``) under an ``fcntl``
    flock so the serial runner and every parent of a process pool can
    share one store; readers take no lock (``os.replace`` guarantees
    they see either the old or the new complete file, never torn).
    """

    name = "json"

    def read(self, key: str) -> dict[str, Any] | None:
        try:
            raw = self._path(key).read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            return CORRUPT
        return entry if isinstance(entry, dict) else CORRUPT

    def write(self, key: str, entry: dict[str, Any]) -> None:
        with self.maintenance_lock():
            self._write_locked(key, entry)

    def _write_locked(self, key: str, entry: dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for f in sorted(shard.glob("*.json")):
                yield f.stem

    def size_bytes(self) -> int:
        total = 0
        for key in self.keys():
            try:
                total += self._path(key).stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> None:
        import shutil

        for shard in list(self.root.iterdir()) if self.root.is_dir() else []:
            if shard.is_dir() and len(shard.name) == 2:
                shutil.rmtree(shard, ignore_errors=True)
        (self.root / ".lock").unlink(missing_ok=True)

    @contextmanager
    def maintenance_lock(self):
        with _FileLock(self.root / ".lock"):
            yield self

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"


def detect_backend(root: Path | str) -> str | None:
    """Which backend already owns *root*, or ``None`` for a fresh dir."""
    root = Path(root)
    if (root / "cache.sqlite").exists():
        return "sqlite"
    if not root.is_dir():
        return None
    if (root / ".lock").exists():
        return "json"
    for child in root.iterdir():
        if child.is_dir() and len(child.name) == 2:
            return "json"
    return None


def make_store(backend: str, root: Path | str) -> CacheStore:
    """Instantiate a backend by name (``"json"`` or ``"sqlite"``)."""
    if backend == "json":
        return JsonStore(Path(root))
    if backend == "sqlite":
        from .sqlite_store import SqliteStore  # lazy: keep import cheap

        return SqliteStore(Path(root))
    raise ValueError(
        f"unknown cache backend {backend!r} (known: {', '.join(BACKENDS)})"
    )


def _resolve_backend(backend: str | None, root: Path | str) -> str:
    """Selection precedence: explicit > ``$REPRO_CACHE_BACKEND`` >
    auto-detect from the directory > the JSON default."""
    if backend is not None:
        return backend
    env = os.environ.get("REPRO_CACHE_BACKEND")
    if env:
        return env
    return detect_backend(root) or "json"


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------


class RunCache:
    """A content-addressed store of classified sweep outcomes."""

    def __init__(self, root: Path, *, backend: str | None = None) -> None:
        self.root = Path(root)
        self.store = make_store(_resolve_backend(backend, root), self.root)

    @property
    def backend(self) -> str:
        """The active backend's name (``"json"`` / ``"sqlite"``)."""
        return self.store.name

    @classmethod
    def at(
        cls,
        where: "RunCache | Path | str | bool | None",
        *,
        backend: str | None = None,
    ) -> "RunCache":
        """Coerce a path-ish argument to a cache (``None``/``True`` →
        the default directory; see :func:`default_cache_dir`)."""
        if isinstance(where, RunCache):
            return where
        if where is None or where is True:
            return cls(default_cache_dir(), backend=backend)
        return cls(Path(where), backend=backend)

    # -- read side ----------------------------------------------------

    def fetch(self, key: str) -> tuple[str, dict[str, Any] | None]:
        """Look up *key*; returns ``(status, payload)``.

        *status* is ``"hit"`` (payload usable), ``"miss"`` (no entry),
        or ``"stale"`` (an entry exists but is corrupt or from another
        key-format version — callers re-execute and overwrite it).
        """
        return self._classify(self.store.read(key))

    def get_many(
        self, keys: Sequence[str]
    ) -> list[tuple[str, dict[str, Any] | None]]:
        """Batched :meth:`fetch`: one ``(status, payload)`` per key, in
        order.  One backend round-trip per call (a single SQL query on
        the SQLite backend; a per-key loop on JSON), which is what the
        streaming sweep pipeline issues per chunk instead of one read
        per job.
        """
        recorder = _spans_active()
        if recorder is None:
            classified = [
                self._classify(e) for e in self.store.read_many(keys)
            ]
        else:
            with recorder.span(
                "cache.get_many", "cache", attrs={"keys": len(keys)}
            ) as span:
                classified = [
                    self._classify(e) for e in self.store.read_many(keys)
                ]
                span.attrs["hits"] = sum(
                    1 for status, _ in classified if status == "hit"
                )
        counts: dict[str, int] = {}
        for status, _ in classified:
            counts[status] = counts.get(status, 0) + 1
        for status, count in counts.items():
            _metrics.CACHE_LOOKUPS.inc(count, result=status)
        return classified

    @staticmethod
    def _classify(
        entry: dict[str, Any] | None,
    ) -> tuple[str, dict[str, Any] | None]:
        if entry is None:
            return "miss", None
        if entry is CORRUPT or entry.get("format") != KEY_FORMAT:
            return "stale", None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return "stale", None
        return "hit", payload

    def keys(self) -> Iterator[str]:
        """Every key currently stored (sorted, backend-independent)."""
        return self.store.keys()

    def entry(self, key: str) -> dict[str, Any] | None:
        """The full raw entry (metadata included), or ``None``."""
        e = self.store.read(key)
        return None if e is None or e is CORRUPT else e

    # -- write side ---------------------------------------------------

    @staticmethod
    def _make_entry(key: str, payload: dict[str, Any], job: Any) -> dict[str, Any]:
        """The shared entry format, identical across backends.

        The job is pickled alongside (base64) so ``verify`` can later
        re-execute the entry without reconstructing its spec by hand.
        """
        return {
            "format": KEY_FORMAT,
            "key": key,
            "stored_at": time.time(),
            "job_type": f"{type(job).__module__}.{type(job).__qualname__}",
            "job_pickle": base64.b64encode(
                pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii"),
            "payload": payload,
        }

    def put(self, key: str, payload: dict[str, Any], job: Any) -> None:
        """Store *payload* under *key*, atomically and under the lock."""
        self.store.write(key, self._make_entry(key, payload, job))

    def put_many(
        self, items: Iterable[tuple[str, dict[str, Any], Any]]
    ) -> None:
        """Batched :meth:`put`: one lock acquisition / one transaction
        for the whole batch (``items`` are ``(key, payload, job)``)."""
        count = 0

        def _entries() -> Iterator[tuple[str, dict[str, Any]]]:
            nonlocal count
            for key, payload, job in items:
                count += 1
                yield key, self._make_entry(key, payload, job)

        recorder = _spans_active()
        if recorder is None:
            self.store.write_many(_entries())
        else:
            with recorder.span("cache.put_many", "cache") as span:
                self.store.write_many(_entries())
                span.attrs["stores"] = count
        if count:
            _metrics.CACHE_STORES.inc(count)

    # -- maintenance --------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Backend, entry count, and disk footprint (``repro cache stats``)."""
        entries = 0
        oldest: float | None = None
        newest: float | None = None
        for key in self.keys():
            entry = self.entry(key)
            entries += 1
            stored = entry.get("stored_at") if entry else None
            if not isinstance(stored, (int, float)):
                continue
            oldest = stored if oldest is None else min(oldest, stored)
            newest = stored if newest is None else max(newest, stored)
        return {
            "root": str(self.root),
            "backend": self.backend,
            "format": KEY_FORMAT,
            "entries": entries,
            "total_bytes": self.store.size_bytes(),
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def gc(self, *, max_age_s: float | None = None) -> dict[str, int]:
        """Drop stale-format entries, and (optionally) entries older than
        *max_age_s* seconds; returns removal counts."""
        removed_stale = 0
        removed_old = 0
        now = time.time()
        doomed: list[str] = []
        with self.store.maintenance_lock():
            for key in list(self.keys()):
                entry = self.store.read(key)
                if (
                    entry is None
                    or entry is CORRUPT
                    or entry.get("format") != KEY_FORMAT
                ):
                    doomed.append(key)
                    removed_stale += 1
                    continue
                if max_age_s is not None:
                    stored = entry.get("stored_at")
                    if not isinstance(stored, (int, float)) or (
                        now - stored > max_age_s
                    ):
                        doomed.append(key)
                        removed_old += 1
            for key in doomed:
                self.store.delete(key)
        return {"removed_stale": removed_stale, "removed_old": removed_old}

    def migrate(self, to: str, *, dest: Path | str | None = None) -> dict[str, Any]:
        """Copy every entry to the *to* backend; returns counts.

        With ``dest=None`` the conversion is in-place: entries land in
        the other backend's storage under the same root and the source
        backend's files are removed afterwards, so auto-detection picks
        the new backend from then on.  Entries are copied raw (pickled
        job, payload, ``stored_at`` — everything), so ``verify`` results
        are unchanged by a migration.
        """
        if to not in BACKENDS:
            raise ValueError(
                f"unknown cache backend {to!r} (known: {', '.join(BACKENDS)})"
            )
        in_place = dest is None
        if in_place and to == self.backend:
            return {"migrated": 0, "skipped": 0, "backend": self.backend}
        target = make_store(to, self.root if in_place else Path(dest))
        if target.root == self.store.root and to == self.backend:
            raise ValueError("source and destination stores are the same")
        migrated = 0
        skipped = 0

        def entries() -> Iterator[tuple[str, dict[str, Any]]]:
            nonlocal migrated, skipped
            for key in list(self.keys()):
                entry = self.store.read(key)
                if entry is None or entry is CORRUPT:
                    skipped += 1  # corrupt entries do not survive migration
                    continue
                migrated += 1
                yield key, entry

        target.write_many(entries())
        if in_place:
            self.store.clear()
            self.store = target
        return {"migrated": migrated, "skipped": skipped, "backend": to}

    def verify(
        self, *, sample: int | None = None, seed: int = 0
    ) -> list[VerifyResult]:
        """Re-execute (a sample of) stored entries and diff the payloads.

        For each selected entry: unpickle the stored job, recompute its
        key (a mismatch means *key drift* — the key no longer covers the
        job, or the code version/mutation salt changed under it), run the
        job fresh via ``cache_payload()``, and compare payloads with
        :func:`diff_payload`.  Hung/failing entries come back with
        ``ok=False`` rather than raising, so one bad entry cannot hide
        the rest.
        """
        keys = list(self.keys())
        if sample is not None and sample < len(keys):
            keys = random.Random(seed).sample(keys, sample)
        results: list[VerifyResult] = []
        for key in keys:
            results.append(self._verify_one(key))
        return results

    def _verify_one(self, key: str) -> VerifyResult:
        entry = self.entry(key)
        if entry is None:
            return VerifyResult(key, "?", False, error="unreadable entry")
        label = entry.get("job_type", "?")
        if entry.get("format") != KEY_FORMAT:
            return VerifyResult(
                key, label, False,
                error=f"format {entry.get('format')!r} != {KEY_FORMAT!r}",
            )
        try:
            job = pickle.loads(base64.b64decode(entry["job_pickle"]))
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            return VerifyResult(key, label, False, error=f"unpicklable job: {exc}")
        recomputed = job_key(job)
        if recomputed != key:
            return VerifyResult(
                key, label, False,
                error=(
                    "key drift: stored under "
                    f"{key[:12]}… but recomputes to "
                    f"{(recomputed or 'None')[:12]}…"
                ),
            )
        try:
            _, fresh = job.cache_payload()
        except Exception as exc:  # noqa: BLE001 - job execution failed
            return VerifyResult(key, label, False, error=f"re-execution failed: {exc}")
        diffs = diff_payload(entry.get("payload", {}), fresh)
        return VerifyResult(key, label, not diffs, diffs=diffs)

    # -- plumbing -----------------------------------------------------

    def _path(self, key: str) -> Path:
        """Entry file path — JSON backend only (tests corrupt entries
        through it; the SQLite backend has no per-entry file)."""
        if not isinstance(self.store, JsonStore):
            raise AttributeError(
                f"_path is meaningless on the {self.backend!r} backend"
            )
        return self.store._path(key)


class _FileLock:
    """``with``-scoped exclusive flock on a sentinel file (POSIX); a
    no-op where ``fcntl`` is unavailable (writes are still atomic via
    ``os.replace``, so the worst case is duplicated work, not a torn
    entry)."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fh = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a+")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._fh is not None:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None
