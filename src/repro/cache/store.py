"""On-disk content-addressed store for classified sweep outcomes.

Layout: one JSON file per entry at ``root/<key[:2]>/<key>.json`` (the
two-hex-digit fan-out keeps directories small for big campaigns), plus a
``root/.lock`` file guarding writers.  An entry stores the *classified*
outcome payload produced by the job's ``cache_payload()`` — violations,
hang/abort flags, digests, perf counters minus ``wall_s``, final virtual
time — never a raw ``SimulationResult`` (traces are large, and pickled
kernel state would rot across versions).

Writes are atomic (tmp file + ``os.replace``) under an ``fcntl`` flock
so the serial runner and every parent of a process pool can share one
store; readers take no lock (``os.replace`` guarantees they see either
the old or the new complete file, never a torn one).

Each entry also carries a base64-pickled copy of the job itself, which
is what lets ``repro cache verify`` re-execute a sample of entries and
diff the stored payload against a fresh run, field by field.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from .keys import KEY_FORMAT, job_key

try:  # pragma: no cover - exercised only where fcntl exists (POSIX)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["RunCache", "VerifyResult", "default_cache_dir", "diff_payload"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/runs``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "runs"


def diff_payload(
    stored: dict[str, Any], fresh: dict[str, Any]
) -> list[str]:
    """Field-by-field differences between two outcome payloads.

    Returns human-readable ``field: stored != fresh`` lines; empty means
    the payloads agree.  Comparison happens after a JSON round-trip of
    the fresh side so types match what the store serialized (tuples
    become lists, etc.).
    """
    fresh = json.loads(json.dumps(fresh))
    diffs = []
    for name in sorted(set(stored) | set(fresh)):
        if name not in stored:
            diffs.append(f"{name}: missing from stored entry")
        elif name not in fresh:
            diffs.append(f"{name}: missing from fresh run")
        elif stored[name] != fresh[name]:
            diffs.append(f"{name}: stored {stored[name]!r} != fresh {fresh[name]!r}")
    return diffs


@dataclass
class VerifyResult:
    """Outcome of re-executing one cached entry (``repro cache verify``)."""

    key: str
    job_label: str
    ok: bool
    #: ``field: stored != fresh`` lines when the payload disagrees.
    diffs: list[str] = field(default_factory=list)
    #: Set when the entry could not be re-executed at all.
    error: str | None = None

    def format(self) -> str:
        head = f"{'OK  ' if self.ok else 'FAIL'} {self.key[:12]}  {self.job_label}"
        if self.error:
            return f"{head}\n      {self.error}"
        return "\n".join([head] + [f"      {d}" for d in self.diffs])


class RunCache:
    """A content-addressed store of classified sweep outcomes."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    @classmethod
    def at(cls, where: "RunCache | Path | str | bool | None") -> "RunCache":
        """Coerce a path-ish argument to a cache (``None``/``True`` →
        the default directory; see :func:`default_cache_dir`)."""
        if isinstance(where, RunCache):
            return where
        if where is None or where is True:
            return cls(default_cache_dir())
        return cls(Path(where))

    # -- read side ----------------------------------------------------

    def fetch(self, key: str) -> tuple[str, dict[str, Any] | None]:
        """Look up *key*; returns ``(status, payload)``.

        *status* is ``"hit"`` (payload usable), ``"miss"`` (no entry),
        or ``"stale"`` (an entry exists but is corrupt or from another
        key-format version — callers re-execute and overwrite it).
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            return "miss", None
        try:
            entry = json.loads(raw)
            if entry.get("format") != KEY_FORMAT:
                return "stale", None
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise TypeError("payload is not an object")
        except (ValueError, KeyError, TypeError):
            return "stale", None
        return "hit", payload

    def keys(self) -> Iterator[str]:
        """Every key currently stored (filesystem order within shards)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for f in sorted(shard.glob("*.json")):
                yield f.stem

    def entry(self, key: str) -> dict[str, Any] | None:
        """The full raw entry (metadata included), or ``None``."""
        try:
            return json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None

    # -- write side ---------------------------------------------------

    def put(self, key: str, payload: dict[str, Any], job: Any) -> None:
        """Store *payload* under *key*, atomically and under the lock.

        The job is pickled alongside (base64) so ``verify`` can later
        re-execute the entry without reconstructing its spec by hand.
        """
        entry = {
            "format": KEY_FORMAT,
            "key": key,
            "stored_at": time.time(),
            "job_type": f"{type(job).__module__}.{type(job).__qualname__}",
            "job_pickle": base64.b64encode(
                pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii"),
            "payload": payload,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(entry, sort_keys=True)
        with self._lock():
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # -- maintenance --------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Entry count, total bytes, and root path (``repro cache stats``)."""
        entries = 0
        total = 0
        oldest: float | None = None
        newest: float | None = None
        for key in self.keys():
            path = self._path(key)
            try:
                st = path.stat()
            except OSError:
                continue
            entries += 1
            total += st.st_size
            oldest = st.st_mtime if oldest is None else min(oldest, st.st_mtime)
            newest = st.st_mtime if newest is None else max(newest, st.st_mtime)
        return {
            "root": str(self.root),
            "format": KEY_FORMAT,
            "entries": entries,
            "total_bytes": total,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def gc(self, *, max_age_s: float | None = None) -> dict[str, int]:
        """Drop stale-format entries, and (optionally) entries older than
        *max_age_s* seconds; returns removal counts."""
        removed_stale = 0
        removed_old = 0
        now = time.time()
        with self._lock():
            for key in list(self.keys()):
                path = self._path(key)
                entry = self.entry(key)
                if entry is None or entry.get("format") != KEY_FORMAT:
                    path.unlink(missing_ok=True)
                    removed_stale += 1
                    continue
                if max_age_s is not None:
                    stored = entry.get("stored_at")
                    if not isinstance(stored, (int, float)) or (
                        now - stored > max_age_s
                    ):
                        path.unlink(missing_ok=True)
                        removed_old += 1
        return {"removed_stale": removed_stale, "removed_old": removed_old}

    def verify(
        self, *, sample: int | None = None, seed: int = 0
    ) -> list[VerifyResult]:
        """Re-execute (a sample of) stored entries and diff the payloads.

        For each selected entry: unpickle the stored job, recompute its
        key (a mismatch means *key drift* — the key no longer covers the
        job, or the code version/mutation salt changed under it), run the
        job fresh via ``cache_payload()``, and compare payloads with
        :func:`diff_payload`.  Hung/failing entries come back with
        ``ok=False`` rather than raising, so one bad entry cannot hide
        the rest.
        """
        keys = list(self.keys())
        if sample is not None and sample < len(keys):
            keys = random.Random(seed).sample(keys, sample)
        results: list[VerifyResult] = []
        for key in keys:
            results.append(self._verify_one(key))
        return results

    def _verify_one(self, key: str) -> VerifyResult:
        entry = self.entry(key)
        if entry is None:
            return VerifyResult(key, "?", False, error="unreadable entry")
        label = entry.get("job_type", "?")
        if entry.get("format") != KEY_FORMAT:
            return VerifyResult(
                key, label, False,
                error=f"format {entry.get('format')!r} != {KEY_FORMAT!r}",
            )
        try:
            job = pickle.loads(base64.b64decode(entry["job_pickle"]))
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            return VerifyResult(key, label, False, error=f"unpicklable job: {exc}")
        recomputed = job_key(job)
        if recomputed != key:
            return VerifyResult(
                key, label, False,
                error=(
                    "key drift: stored under "
                    f"{key[:12]}… but recomputes to "
                    f"{(recomputed or 'None')[:12]}…"
                ),
            )
        try:
            _, fresh = job.cache_payload()
        except Exception as exc:  # noqa: BLE001 - job execution failed
            return VerifyResult(key, label, False, error=f"re-execution failed: {exc}")
        diffs = diff_payload(entry.get("payload", {}), fresh)
        return VerifyResult(key, label, not diffs, diffs=diffs)

    # -- plumbing -----------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _lock(self) -> "_FileLock":
        return _FileLock(self.root / ".lock")


class _FileLock:
    """``with``-scoped exclusive flock on a sentinel file (POSIX); a
    no-op where ``fcntl`` is unavailable (writes are still atomic via
    ``os.replace``, so the worst case is duplicated work, not a torn
    entry)."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fh = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a+")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._fh is not None:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None
