"""Canonical cache keys: one blake2b digest per sweep job.

A job outcome may be reused only when *everything* that determines it is
captured in the key.  PR 3 made every sweep job a pure function of a
picklable spec, so the key is a canonical serialization of the job
dataclass itself — scenario spec, policy + seed, cost/jitter parameters,
fault schedule, invariant spec, trace flag — salted with:

* the package version (``repro.__version__``) — a *code-version salt*:
  protocol or kernel changes ship as version bumps, which invalidate
  every entry at once (``repro cache verify`` exists to catch the
  in-between states of a development tree);
* the active mutation set (:func:`repro.mutation.active_set`), so a
  deliberately weakened build (``ring_no_dedup``, ``REPRO_MUTATIONS``)
  never reuses outcomes recorded by an intact one.

Canonicalization is strict by design: anything whose behaviour the key
cannot pin — a lambda, a closure, an unrecognized object — raises
:class:`Uncacheable`, and :func:`job_key` maps that to ``None`` (the job
simply runs uncached).  A wrong key silently serves a wrong result; *no*
key merely costs a re-run.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

from .. import __version__
from ..mutation import active_set

__all__ = ["KEY_FORMAT", "Uncacheable", "canonical_token", "job_key"]

#: Entry/key layout version; bump when the payload shape or the key
#: composition changes (old entries then read as stale, never as hits).
KEY_FORMAT = "repro.cache/1"


class Uncacheable(TypeError):
    """The object cannot be canonically serialized into a cache key."""


def _sorted_tokens(tokens: list[Any]) -> list[Any]:
    """Order-independent listing (sets, dict items) by canonical form."""
    return sorted(tokens, key=lambda t: json.dumps(t, sort_keys=True))


def _tokenize(obj: Any) -> Any:
    """Reduce *obj* to a JSON-able tree that pins its identity exactly."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        # json renders floats with repr (shortest round-trip), so float
        # identity survives the dump byte-for-byte.
        return obj
    if isinstance(obj, (list, tuple)):
        return [_tokenize(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": _sorted_tokens([_tokenize(x) for x in obj])}
    if isinstance(obj, dict):
        return {
            "__map__": _sorted_tokens(
                [[_tokenize(k), _tokenize(v)] for k, v in obj.items()]
            )
        }
    if isinstance(obj, Enum):
        return {"__enum__": _qualname(type(obj)), "value": _tokenize(obj.value)}
    if is_dataclass(obj) and not isinstance(obj, type):
        exclude = set(getattr(type(obj), "_cache_key_exclude", ()))
        return {
            "__dc__": _qualname(type(obj)),
            "fields": {
                f.name: _tokenize(getattr(obj, f.name))
                for f in fields(obj)
                if f.name not in exclude and not f.name.startswith("_")
            },
        }
    if isinstance(obj, functools.partial):
        return {
            "__partial__": [
                _tokenize(obj.func),
                _tokenize(obj.args),
                _tokenize(obj.keywords),
            ]
        }
    if callable(obj):
        name = _qualname(obj if isinstance(obj, type) else type(obj))
        if isinstance(obj, type):
            raise Uncacheable(f"bare class {name} cannot be keyed")
        qual = getattr(obj, "__qualname__", "")
        mod = getattr(obj, "__module__", "")
        if not mod or not qual or "<lambda>" in qual or "<locals>" in qual:
            raise Uncacheable(
                f"callable {qual or obj!r} is not addressable by name "
                "(lambdas/closures cannot be cache-keyed)"
            )
        return {"__fn__": f"{mod}.{qual}"}
    raise Uncacheable(
        f"cannot canonicalize {type(obj).__name__} for a cache key"
    )


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_token(obj: Any) -> str:
    """The canonical JSON string for *obj* (raises :class:`Uncacheable`)."""
    return json.dumps(_tokenize(obj), sort_keys=True, separators=(",", ":"))


def job_key(job: Any) -> str | None:
    """The job's content-addressed key, or ``None`` when uncacheable.

    A job participates in caching only when it implements the cache
    contract (``cache_payload``/``from_cached``, see
    ``repro/parallel/jobs.py``), does not veto via a false ``cacheable``
    property (e.g. ``keep_results=True`` jobs, whose result cannot be
    reduced to a JSON payload), and canonicalizes cleanly.
    """
    if not (hasattr(job, "cache_payload") and hasattr(job, "from_cached")):
        return None
    if not getattr(job, "cacheable", True):
        return None
    # A wrapper job (e.g. repro.obs.telemetry.TelemetryJob) may nominate
    # the job it wraps as its key identity: the wrapper adds bookkeeping,
    # not behaviour, so wrapped and bare runs share cache entries.
    target = getattr(job, "cache_key_delegate", job)
    try:
        token = canonical_token(target)
    except Uncacheable:
        return None
    h = hashlib.blake2b(digest_size=20)
    for part in (KEY_FORMAT, __version__, ",".join(active_set()), token):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()
