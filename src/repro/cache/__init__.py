"""``repro.cache`` — content-addressed run cache for sweep jobs.

Every sweep job (fault-window exploration, kill campaigns, schedule
fuzzing) is a pure function of a picklable spec, so its classified
outcome can be stored under a key derived from that spec and reused by
any later sweep that asks the same question.  Three layers:

* :mod:`repro.cache.keys` — the canonical blake2b key over the job's
  full determinism surface (scenario, policy + seed, cost/jitter
  parameters, fault schedule, trace flag), salted with the package
  version and the active mutation set;
* :mod:`repro.cache.store` — the on-disk store (sharded JSON entries,
  flock-guarded atomic writes) plus ``stats``/``gc``/``verify``
  maintenance, where ``verify`` re-executes a sample of entries and
  diffs payloads field by field;
* :mod:`repro.cache.runner` — :class:`CachedRunner`, a drop-in
  :class:`~repro.parallel.runner.SweepRunner` wrapper serving hits
  parent-side and delegating misses to any inner runner.

Hit/miss/stale/store accounting lives in :data:`repro.perf.CACHE`.
Correctness contract: a cached sweep's report is byte-identical to the
uncached one — the cache changes wall-clock time and nothing else.
"""

from .keys import KEY_FORMAT, Uncacheable, canonical_token, job_key
from .runner import CachedRunner
from .store import RunCache, VerifyResult, default_cache_dir, diff_payload

__all__ = [
    "CachedRunner",
    "KEY_FORMAT",
    "RunCache",
    "Uncacheable",
    "VerifyResult",
    "canonical_token",
    "default_cache_dir",
    "diff_payload",
    "job_key",
]
