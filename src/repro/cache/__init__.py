"""``repro.cache`` — content-addressed run cache for sweep jobs.

Every sweep job (fault-window exploration, kill campaigns, schedule
fuzzing) is a pure function of a picklable spec, so its classified
outcome can be stored under a key derived from that spec and reused by
any later sweep that asks the same question.  Three layers:

* :mod:`repro.cache.keys` — the canonical blake2b key over the job's
  full determinism surface (scenario, policy + seed, cost/jitter
  parameters, fault schedule, trace flag), salted with the package
  version and the active mutation set;
* :mod:`repro.cache.store` — the on-disk store behind a pluggable
  :class:`~repro.cache.store.CacheStore` interface with two backends
  (sharded JSON files with flock-guarded atomic writes; a SQLite-WAL
  database with batched transactional reads/writes — see
  :mod:`repro.cache.sqlite_store`), selected via ``RunCache(backend=)``
  / ``$REPRO_CACHE_BACKEND`` / directory auto-detection, plus
  ``stats``/``gc``/``verify``/``migrate`` maintenance, where ``verify``
  re-executes a sample of entries and diffs payloads field by field;
* :mod:`repro.cache.runner` — :class:`CachedRunner`, a drop-in
  :class:`~repro.parallel.runner.SweepRunner` wrapper serving hits
  parent-side and delegating misses to any inner runner.

Hit/miss/stale/store accounting lives in :data:`repro.perf.CACHE`.
Correctness contract: a cached sweep's report is byte-identical to the
uncached one — the cache changes wall-clock time and nothing else.
"""

from .keys import KEY_FORMAT, Uncacheable, canonical_token, job_key
from .runner import CachedRunner, attach_cache
from .store import (
    BACKENDS,
    CacheStore,
    JsonStore,
    RunCache,
    VerifyResult,
    default_cache_dir,
    detect_backend,
    diff_payload,
    make_store,
)

__all__ = [
    "BACKENDS",
    "CacheStore",
    "CachedRunner",
    "JsonStore",
    "KEY_FORMAT",
    "RunCache",
    "Uncacheable",
    "VerifyResult",
    "attach_cache",
    "canonical_token",
    "default_cache_dir",
    "detect_backend",
    "diff_payload",
    "job_key",
    "make_store",
]
