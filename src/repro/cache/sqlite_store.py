"""SQLite-WAL backend for the run cache.

One database file (``root/cache.sqlite``), one table keyed by job key,
each row holding the same JSON entry the sharded-JSON backend would
have written to its own file.  What this buys over one-file-per-entry:

* **Batched lookups** — ``read_many`` is chunked ``SELECT … WHERE key
  IN (…)`` statements instead of one ``open``/``read``/``parse`` per
  job, which is the difference between 10^4 and 10^6 warm lookups per
  campaign (measured in ``benchmarks/bench_cache.py``).
* **Batched stores** — ``write_many`` is a single transaction around
  ``executemany``, amortizing the fsync.
* **Concurrent writers** — WAL mode lets the serial runner, pool
  parents, and ``repro cache gc`` interleave without the flock dance;
  ``busy_timeout`` turns short lock contention into a wait instead of
  an error.

The payload format is byte-for-byte the entry dict from
:meth:`RunCache._make_entry`, so ``verify``/``gc``/``migrate`` work on
rows exactly as they do on files.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from .store import CORRUPT, CacheStore

__all__ = ["DB_FILENAME", "SqliteStore"]

#: Database filename under the cache root (also the auto-detection marker).
DB_FILENAME = "cache.sqlite"

#: Max keys per ``IN (…)`` clause — comfortably under SQLite's default
#: 32766 bound-parameter limit while keeping statements cacheable.
_SELECT_CHUNK = 500

_SCHEMA = """\
CREATE TABLE IF NOT EXISTS entries (
    key       TEXT PRIMARY KEY,
    format    TEXT NOT NULL,
    stored_at REAL NOT NULL,
    payload   TEXT NOT NULL,
    data      TEXT NOT NULL
) WITHOUT ROWID
"""

_INSERT = (
    "INSERT OR REPLACE INTO entries"
    " (key, format, stored_at, payload, data) VALUES (?, ?, ?, ?, ?)"
)


class SqliteStore(CacheStore):
    """Run-cache entries in a single WAL-mode SQLite database."""

    name = "sqlite"

    def __init__(self, root: Path) -> None:
        super().__init__(root)
        self.path = self.root / DB_FILENAME
        # sqlite3 connections are not shareable across threads/forked
        # children; keep one per thread and re-open lazily after fork.
        self._local = threading.local()

    # -- connection handling -------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        import os

        conn = getattr(self._local, "conn", None)
        pid = getattr(self._local, "pid", None)
        if conn is not None and pid == os.getpid():
            return conn
        self.root.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        with conn:
            conn.execute(_SCHEMA)
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    # -- single-entry primitives ----------------------------------------

    def read(self, key: str) -> dict[str, Any] | None:
        row = self._conn().execute(
            "SELECT data FROM entries WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return self._parse(row[0])

    @staticmethod
    def _parse(data: str) -> dict[str, Any]:
        try:
            entry = json.loads(data)
        except ValueError:
            return CORRUPT
        return entry if isinstance(entry, dict) else CORRUPT

    def write(self, key: str, entry: dict[str, Any]) -> None:
        conn = self._conn()
        with conn:
            conn.execute(_INSERT, self._row(key, entry))

    def delete(self, key: str) -> None:
        conn = self._conn()
        with conn:
            conn.execute("DELETE FROM entries WHERE key = ?", (key,))

    def keys(self) -> Iterator[str]:
        if not self.path.exists():
            return iter(())
        rows = self._conn().execute(
            "SELECT key FROM entries ORDER BY key"
        ).fetchall()
        return iter([r[0] for r in rows])

    def size_bytes(self) -> int:
        total = 0
        # WAL mode spreads live data over cache.sqlite{,-wal,-shm}.
        for suffix in ("", "-wal", "-shm"):
            try:
                total += Path(str(self.path) + suffix).stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
        for suffix in ("", "-wal", "-shm"):
            Path(str(self.path) + suffix).unlink(missing_ok=True)

    # -- batched operations ---------------------------------------------

    def read_many(self, keys: Sequence[str]) -> list[dict[str, Any] | None]:
        """Batched read, trimmed to the fetch-classification fields.

        Returns entries of the shape ``{"format", "key", "payload"}`` —
        what :meth:`RunCache._classify` consumes — by reading the
        ``format`` and ``payload`` *columns* instead of parsing the full
        entry JSON (whose base64 job pickle dominates parse time but is
        only needed by ``verify``; use :meth:`read` for complete
        entries).  This is where the warm-lookup speedup over the JSON
        backend comes from at campaign scale.
        """
        if not keys:
            return []
        conn = self._conn()
        found: dict[str, tuple[str, str]] = {}
        for start in range(0, len(keys), _SELECT_CHUNK):
            chunk = keys[start : start + _SELECT_CHUNK]
            marks = ",".join("?" * len(chunk))
            for key, fmt, payload in conn.execute(
                f"SELECT key, format, payload FROM entries"
                f" WHERE key IN ({marks})",
                tuple(chunk),
            ):
                found[key] = (fmt, payload)
        payloads = self._parse_payloads([v[1] for v in found.values()])
        parsed = {
            key: {"format": fmt, "key": key, "payload": value}
            if isinstance(value, dict)
            else CORRUPT
            for (key, (fmt, _)), value in zip(found.items(), payloads)
        }
        return [parsed.get(k) for k in keys]

    @staticmethod
    def _parse_payloads(texts: list[str]) -> list[Any]:
        """Parse many payload JSON strings with **one** ``json.loads``.

        Joining into a single array and parsing once stays in the C
        decoder for the whole batch — per-call overhead is most of the
        cost of 10^4 tiny parses.  Any corrupt row poisons the joined
        parse, so fall back to per-entry parsing (returning ``CORRUPT``
        sentinels for the bad ones) only on that rare path.
        """
        try:
            return json.loads(f"[{','.join(texts)}]") if texts else []
        except ValueError:
            out: list[Any] = []
            for text in texts:
                try:
                    out.append(json.loads(text))
                except ValueError:
                    out.append(CORRUPT)
            return out

    def write_many(self, items: Iterable[tuple[str, dict[str, Any]]]) -> None:
        conn = self._conn()
        with conn:
            conn.executemany(
                _INSERT, (self._row(key, entry) for key, entry in items)
            )

    def delete_many(self, keys: Sequence[str]) -> None:
        if not keys:
            return
        conn = self._conn()
        with conn:
            conn.executemany(
                "DELETE FROM entries WHERE key = ?", [(k,) for k in keys]
            )

    @staticmethod
    def _row(
        key: str, entry: dict[str, Any]
    ) -> tuple[str, str, float, str, str]:
        stored = entry.get("stored_at")
        return (
            key,
            str(entry.get("format", "")),
            float(stored) if isinstance(stored, (int, float)) else 0.0,
            json.dumps(entry.get("payload"), sort_keys=True),
            json.dumps(entry, sort_keys=True),
        )
