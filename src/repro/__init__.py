"""repro — a reproduction of Hursey & Graham, *Building a Fault Tolerant
MPI Application: A Ring Communication Example* (DPDNS/IPDPS-W 2011).

Layered packages (see DESIGN.md for the full inventory):

* :mod:`repro.simmpi` — deterministic discrete-event simulated MPI with
  fail-stop failures, a perfect failure detector, and deadlock (hang)
  detection.
* :mod:`repro.ft` — the run-through stabilization interface of the MPI
  Forum FT Working Group proposal (paper Fig. 1), including a real
  fault-tolerant consensus behind ``MPI_Comm_validate_all``.
* :mod:`repro.core` — the paper's fault-tolerant ring in every design
  stage (baseline, naive, no-marker, marker, tagged; both termination
  schemes; §III-D root-failure tolerance).
* :mod:`repro.faults` — deterministic fault injection, randomized
  campaigns, and exhaustive failure-window exploration (§III-E).
* :mod:`repro.apps` — heat diffusion, ring allreduce, manager/worker.
* :mod:`repro.analysis` — invariants, statistics, table formatting.

Quickstart::

    from repro.simmpi import Simulation
    from repro.core import RingConfig, Termination, make_ring_main
    from repro.faults import KillAtProbe

    sim = Simulation(nprocs=8)
    sim.add_injector(KillAtProbe(rank=3, probe="post_recv", hit=2))
    cfg = RingConfig(max_iter=10, termination=Termination.VALIDATE_ALL)
    result = sim.run(make_ring_main(cfg))
    print(result.value(0)["root_completions"])
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
