"""Command-line interface: run paper scenarios without writing Python.

Subcommands
-----------

``ring``
    Run the fault-tolerant ring (any design variant / termination), with
    optional fail-stop injections, and print the per-rank reports plus an
    optional space-time diagram.

``explore``
    Exhaustively sweep a fail-stop through every reachable failure window
    of the ring (paper §III-E) and print the coverage map.  ``--workers``
    fans the per-window re-runs across a process pool.

``campaign``
    Randomized fault-injection campaign: sample many seeds, kill random
    ranks at random virtual times, check the invariant battery.
    ``--workers`` fans the runs across a process pool; the report is
    identical to a serial run.

``compare-protocols``
    Differential study of the recovery protocol families
    (``rts`` / ``shrink_repair`` / ``replication`` / ``partial_restart``)
    on identical fault schedules: per-protocol outcome classes, recovery
    latency percentiles, message overhead, and hang windows.

``heat`` / ``farm`` / ``abft``
    Run the bundled domain applications under optional failures.

``fuzz``
    Seeded schedule-space fuzzing: sample N configurations (scheduling
    policy × timing jitter × fault schedule) from one master seed, run
    them (``--workers`` fans out), classify with the invariant battery,
    shrink every failure, and optionally save ``.repro.json``
    reproducers.  The same seed always produces the same report.

``replay``
    Re-run saved ``.repro.json`` reproducers and verify each reproduces
    its recorded violations and trace digest byte-for-byte.

``trace``
    Run a named scenario preset (``fig2``/``fig6``/… mirror the paper's
    figures) and export its trace: Chrome Trace Event JSON for
    https://ui.perfetto.dev, a stable JSONL stream that loads back into
    a :class:`~repro.simmpi.trace.Trace`, or the ASCII space-time view.

``report``
    Aggregate a ``--telemetry`` JSONL stream offline: outcome histogram,
    wall-time percentiles, slowest jobs, worker utilization, cache hit
    rate.  ``--canon`` prints the canonical lines CI diffs between
    serial and pooled runs.

``spans`` / ``metrics`` / ``top``
    Pipeline observability: the sweep subcommands take ``--spans FILE``
    to record orchestration spans (rounds, chunks, wire frames,
    worker-side execution, cache batches) which ``spans`` validates,
    canonicalizes, or converts to Perfetto tracks; ``metrics serve``
    exposes Prometheus-style ``/metrics`` + ``/healthz`` over stdlib
    HTTP; ``top --telemetry FILE --follow`` is the live campaign
    console (progress, throughput, outcome histogram, per-worker
    rtt/bytes/cache columns).

``cache``
    Inspect and maintain the content-addressed run cache
    (``stats`` / ``gc`` / ``verify`` / ``migrate``).  The sweep
    subcommands (``explore``, ``campaign``, ``fuzz``) take ``--cache``
    to reuse classified outcomes across invocations; reports stay
    byte-identical (a ``[cache] hits=…`` accounting line goes to
    stderr).  Two store backends: sharded JSON files (default) and a
    single SQLite WAL database (``--cache-backend sqlite`` /
    ``$REPRO_CACHE_BACKEND``); ``cache migrate --to`` converts between
    them.

The sweep subcommands also take ``--stream``: jobs flow through the
bounded-window streaming pipeline and are folded into running counts,
so a million-run campaign needs O(failures) memory while printing the
identical report.  ``fuzz --coverage`` switches to coverage-guided
fuzzing (novel-cell corpus + mutation; see ``docs/testing.md``).

Examples::

    python -m repro ring --nprocs 8 --iters 6 --kill-probe 3:post_recv:2
    python -m repro ring --variant naive --kill-probe 2:post_recv:2
    python -m repro explore --variant ft_marker --pairs --workers 4
    python -m repro campaign --nprocs 16 --runs 200 --workers 4
    python -m repro compare-protocols --runs 25 --workers 4
    python -m repro abft --kill-probe 2:computed:3
    python -m repro fuzz --runs 200 --seed 1 --max-kills 2 --out-dir repros
    python -m repro replay repros/fuzz-1-0007.repro.json
    python -m repro explore --cache --cache-dir .repro-cache --progress
    python -m repro cache verify --sample 10
    python -m repro trace fig6 --format perfetto -o fig6.json --validate
    python -m repro campaign --runs 200 --telemetry tel.jsonl
    python -m repro report tel.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .analysis import (
    dict_table,
    render_spacetime,
    ring_summary,
)
from .apps import (
    AbftConfig,
    FarmConfig,
    HeatConfig,
    expected_results,
    make_abft_main,
    make_farm_mains,
    make_heat_main,
)
from .core import (
    RingConfig,
    RingVariant,
    Termination,
    make_ring_main,
    make_rootft_main,
)
from .faults import FailureSchedule, explore, run_campaign
from .parallel import RingScenario, StandardRingInvariants
from .simmpi import Simulation


def _add_kill_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--kill-time", action="append", default=[], metavar="RANK:TIME",
        help="fail-stop RANK at virtual TIME (repeatable)",
    )
    p.add_argument(
        "--kill-probe", action="append", default=[], metavar="RANK:PROBE:HIT",
        help="fail-stop RANK at the HIT-th occurrence of PROBE (repeatable)",
    )


def _schedule_from(args: argparse.Namespace) -> FailureSchedule:
    sched = FailureSchedule()
    for spec in args.kill_time:
        rank, time = spec.split(":")
        sched.at_time(int(rank), float(time))
    for spec in args.kill_probe:
        rank, probe, hit = spec.split(":")
        sched.at_probe(int(rank), probe, int(hit))
    return sched


def _add_fibers_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fibers", default=None, choices=["auto", "thread", "greenlet"],
        help="fiber backend for the kernel: 'greenlet' (single-threaded, "
             "zero-lock handoffs; pip install repro[fast]) or 'thread' "
             "(pure-stdlib baton fallback); 'auto' picks greenlet when "
             "importable (default: $REPRO_FIBERS, else auto)",
    )


def _apply_fibers(args: argparse.Namespace) -> None:
    """Publish ``--fibers`` as ``$REPRO_FIBERS`` for this process.

    Every :class:`~repro.simmpi.runtime.Runtime` reads the variable at
    construction, and pooled sweep workers inherit the environment, so
    one assignment covers serial runs and ``--workers`` fan-out alike.
    Traces are byte-identical across backends, so this only changes wall
    time, never a report.  An unavailable backend (greenlet without the
    package) fails here, once and cleanly, instead of deep in a run.
    """
    if getattr(args, "fibers", None):
        from .simmpi import resolve_backend

        try:
            resolve_backend(args.fibers)
        except (RuntimeError, ValueError) as exc:
            raise SystemExit(f"--fibers: {exc}")
        os.environ["REPRO_FIBERS"] = args.fibers


def _positive_int(value: str) -> int:
    """argparse type for counts that must be >= 1 (``--workers``,
    ``--stream-window``): a clear parse-time error instead of a
    traceback from the runner constructor."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {n})")
    return n


def _positive_float(value: str) -> float:
    """argparse type for durations that must be finite and > 0
    (``--heartbeat-interval``, ``--connect-timeout``): a clear
    parse-time error instead of a hang or a traceback mid-sweep."""
    try:
        x = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if not (x > 0) or x != x or x == float("inf"):
        raise argparse.ArgumentTypeError(
            f"must be a finite number > 0 (got {value})"
        )
    return x


def _worker_addrs(value: str):
    """argparse type for ``--workers-addr HOST:PORT[,HOST:PORT...]``."""
    from .parallel.remote import parse_worker_addrs

    try:
        return parse_worker_addrs(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _worker_addr(value: str):
    """argparse type for a single ``HOST:PORT``."""
    addrs = _worker_addrs(value)
    if len(addrs) != 1:
        raise argparse.ArgumentTypeError("expected exactly one HOST:PORT")
    return addrs[0]


def _bind_addr(value: str):
    """argparse type for ``worker serve --bind``: like :func:`_worker_addr`
    but port ``0`` is allowed — it asks the OS for an ephemeral port
    (the bound port is printed in the readiness line)."""
    host, sep, port_s = value.rpartition(":")
    if sep and host and port_s == "0":
        return (host, 0)
    return _worker_addr(value)


def _add_workers_arg(p: argparse.ArgumentParser, what: str = "runs") -> None:
    p.add_argument(
        "--workers", type=_positive_int, default=None,
        help=f"fan the {what} over N worker processes "
             "(default: serial; the report is identical)",
    )


def _add_transport_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--transport", default="local", choices=["local", "remote"],
        help="where sweep jobs execute: 'local' (in-process, or the "
             "--workers process pool) or 'remote' (a socket worker fleet "
             "named by --workers-addr; start workers with `repro worker "
             "serve`) — the report is byte-identical either way",
    )
    p.add_argument(
        "--workers-addr", type=_worker_addrs, default=None,
        metavar="HOST:PORT,...",
        help="comma-separated worker addresses for --transport remote",
    )
    p.add_argument(
        "--heartbeat-interval", type=_positive_float, default=2.0,
        metavar="SECONDS",
        help="how long a remote worker may stay silent before the parent "
             "probes it with a ping (default: 2.0; --transport remote only)",
    )
    p.add_argument(
        "--connect-timeout", type=_positive_float, default=5.0,
        metavar="SECONDS",
        help="socket connect budget per remote worker (default: 5.0; "
             "--transport remote only)",
    )


def _add_stream_window_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--stream-window", type=_positive_int, default=None, metavar="N",
        help="max jobs in flight for --stream (default: the runner's "
             "window, 1024 serial; any window yields submission-order "
             "results)",
    )


def _sweep_runner(args: argparse.Namespace):
    """The runner selected by --transport/--workers-addr, or ``None``
    to let the entry point build its local runner from ``--workers``."""
    addrs = getattr(args, "workers_addr", None)
    if getattr(args, "transport", "local") == "remote":
        if not addrs:
            raise SystemExit(
                "--transport remote requires --workers-addr HOST:PORT[,...]"
            )
        from .parallel.remote import RemoteRunner

        return RemoteRunner(
            addresses=addrs,
            heartbeat=getattr(args, "heartbeat_interval", 2.0),
            connect_timeout=getattr(args, "connect_timeout", 5.0),
        )
    if addrs:
        raise SystemExit("--workers-addr requires --transport remote")
    return None


def _report_remote(runner) -> None:
    """Per-worker transport telemetry on **stderr** (stdout carries the
    report and must stay byte-identical to a serial run)."""
    if runner is None:
        return
    from .obs.telemetry import runner_worker_stats

    for s in runner_worker_stats(runner):
        wire = s["bytes_out"] + s["bytes_in"]
        ratio = s.get("compression")
        print(
            f"[remote] {s['worker']} pid={s['pid']} chunks={s['chunks']} "
            f"jobs={s['jobs']} rtt={s['rtt_s'] * 1e3:.1f}ms wire={wire}B"
            + (f" ratio={ratio}x" if ratio else "")
            + f" cache_hits={s['cache_hits']} cache_misses={s['cache_misses']}"
            + f" disconnects={s['disconnects']}",
            file=sys.stderr,
        )


def _add_spans_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--spans", default=None, metavar="FILE",
        help="record orchestration spans (rounds, chunks, wire frames, "
             "worker-side execution, cache batches) to FILE as "
             "repro.spans/1 JSONL; inspect with `repro spans FILE`",
    )


def _spans_scope(args: argparse.Namespace):
    """Context manager installing a span recorder for the sweep when
    ``--spans FILE`` was given (a no-op otherwise).  The file is written
    on exit; the announcement goes to stderr so stdout stays
    byte-identical to a spans-off run."""
    from contextlib import contextmanager, nullcontext

    path = getattr(args, "spans", None)
    if not path:
        return nullcontext()
    from .obs.spans import SpanRecorder, recording, write_spans

    @contextmanager
    def scope():
        recorder = SpanRecorder(kind=args.command)
        try:
            with recording(recorder):
                yield recorder
        finally:
            write_spans(path, recorder)
            print(f"[spans] wrote {path}", file=sys.stderr)

    return scope()


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="reuse classified outcomes from the content-addressed run "
             "cache (the report is byte-identical; only wall time changes)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR, else "
             "~/.cache/repro/runs)",
    )
    p.add_argument(
        "--cache-backend", default=None, choices=["json", "sqlite"],
        help="cache store backend: 'sqlite' (one WAL database, batched "
             "lookups) or 'json' (one file per entry); default: "
             "$REPRO_CACHE_BACKEND, else whatever the directory already "
             "holds, else json",
    )


def _cache_arg(args: argparse.Namespace):
    """What the sweep entry points expect: ``None`` (off), a directory,
    or ``True`` (the default directory).

    ``--cache-backend`` is published as ``$REPRO_CACHE_BACKEND`` (the
    same pattern as ``--fibers``): every ``RunCache`` constructed in
    this process — including inside sweep entry points that only take a
    directory — resolves the backend from the environment."""
    if getattr(args, "cache_backend", None):
        os.environ["REPRO_CACHE_BACKEND"] = args.cache_backend
    if not args.cache:
        return None
    return args.cache_dir if args.cache_dir is not None else True


def _cache_counters_snapshot(args: argparse.Namespace):
    if not args.cache:
        return None
    from . import perf

    return perf.CACHE.snapshot()


def _report_cache(args: argparse.Namespace, before) -> None:
    """One ``[cache] hits=…`` line on **stderr** — stdout carries the
    report and must stay byte-identical with the cache on or off (CI
    diffs it)."""
    if before is None:
        return
    from . import perf

    d = perf.CACHE.delta(before)
    print(
        f"[cache] hits={d['hits']} misses={d['misses']} "
        f"stale={d['stale']} stores={d['stores']}",
        file=sys.stderr,
    )


def _common_sim(args: argparse.Namespace, nprocs: int) -> Simulation:
    sim = Simulation(
        nprocs=nprocs,
        seed=args.seed,
        detection_latency=args.detection_latency,
        trace_cap=getattr(args, "trace_cap", None),
    )
    sched = _schedule_from(args)
    if len(sched):
        sim.add_injector(sched.injector())
    return sim


def _add_trace_args(
    p: argparse.ArgumentParser, *, spacetime: bool = True
) -> None:
    """Post-run trace views shared by the scenario subcommands."""
    if spacetime:
        p.add_argument("--spacetime", action="store_true",
                       help="print a space-time diagram of the run")
    p.add_argument("--failure-story", action="store_true",
                   help="print only the failure-relevant events "
                        "(injections, detections, errors, validation)")
    p.add_argument("--trace-cap", type=int, default=None, metavar="N",
                   help="keep only the last N trace events (ring buffer); "
                        "bounds memory on long runs")


def _print_trace_views(
    args: argparse.Namespace, result, nprocs: int
) -> None:
    """Render the views requested via :func:`_add_trace_args`."""
    if getattr(args, "spacetime", False):
        print()
        print(render_spacetime(result.trace, nprocs))
    if getattr(args, "failure_story", False):
        from .analysis import failure_story

        print()
        print(failure_story(result.trace, nprocs))


def cmd_ring(args: argparse.Namespace) -> int:
    cfg = RingConfig(
        max_iter=args.iters,
        variant=RingVariant(args.variant),
        termination=Termination(args.termination),
        work_per_iter=args.work,
    )
    main = make_rootft_main(cfg) if args.rootft else make_ring_main(cfg)
    sim = _common_sim(args, args.nprocs)
    result = sim.run(main, on_deadlock="return")

    s = ring_summary(result)
    print(f"outcome: {'HANG' if s['hung'] else 'aborted' if s['aborted'] else 'ran through'}")
    print(f"failed ranks: {s['failed_ranks']}  survivors: {s['survivors']}")
    print(f"completions (marker, value): {s['completions']}")
    print(f"resends: {s['resends']}  duplicates discarded: "
          f"{s['duplicates_discarded']}")
    reports = [result.value(i) for i in result.completed_ranks]
    if reports:
        print()
        print(dict_table(
            reports,
            columns=["rank", "role", "left", "right", "forwards", "resends",
                     "duplicates_discarded"],
        ))
    if result.hung:
        print("\nblocked processes:")
        for rank, why in result.deadlock.blocked:
            print(f"  rank {rank}: {why}")
    _print_trace_views(args, result, args.nprocs)
    return 2 if s["hung"] else 0


def _ring_scenario(args: argparse.Namespace) -> RingScenario:
    """Picklable ring factory from CLI arguments (crosses pool boundaries)."""
    return RingScenario(
        nprocs=args.nprocs,
        iters=args.iters,
        variant=args.variant,
        termination=args.termination,
        rootft=args.rootft,
        seed=args.seed,
        detection_latency=args.detection_latency,
    )


def cmd_explore(args: argparse.Namespace) -> int:
    _apply_fibers(args)
    ranks = None if args.rootft else list(range(1, args.nprocs))
    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"[explore] {done}/{total} scenarios", file=sys.stderr)
    before = _cache_counters_snapshot(args)
    runner = _sweep_runner(args)
    with _spans_scope(args):
        rep = explore(
            _ring_scenario(args),
            invariants=StandardRingInvariants(
                args.iters, args.nprocs, allow_root_loss=args.rootft
            ),
            ranks=ranks,
            pairs=args.pairs,
            max_windows=args.limit,
            workers=args.workers,
            runner=runner,
            cache=_cache_arg(args),
            progress=progress,
            telemetry=args.telemetry,
            stream=args.stream,
            stream_window=args.stream_window,
        )
    print(rep.format())
    _report_cache(args, before)
    _report_remote(runner)
    return 1 if rep.failures else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    _apply_fibers(args)
    eligible = None
    if args.rootft:
        eligible = list(range(args.nprocs))  # the root may die too
    before = _cache_counters_snapshot(args)
    runner = _sweep_runner(args)
    with _spans_scope(args):
        rep = run_campaign(
            _ring_scenario(args),
            seeds=range(args.first_seed, args.first_seed + args.runs),
            horizon=args.horizon,
            kills_per_run=args.kills,
            eligible_ranks=eligible,
            invariants=StandardRingInvariants(
                args.iters, args.nprocs, allow_root_loss=args.rootft
            ),
            workers=args.workers,
            runner=runner,
            cache=_cache_arg(args),
            telemetry=args.telemetry,
            stream=args.stream,
            stream_window=args.stream_window,
        )
    print(rep.format())
    _report_cache(args, before)
    _report_remote(runner)
    return 1 if rep.failures else 0


def cmd_compare_protocols(args: argparse.Namespace) -> int:
    from .protocols import PROTOCOLS, run_compare_protocols

    _apply_fibers(args)
    protocols = tuple(args.protocols) if args.protocols else PROTOCOLS
    before = _cache_counters_snapshot(args)
    runner = _sweep_runner(args)
    rep = run_compare_protocols(
        nprocs=args.nprocs,
        iters=args.iters,
        seeds=range(args.first_seed, args.first_seed + args.runs),
        horizon=args.horizon,
        kills_per_run=args.kills,
        protocols=protocols,
        spares=args.spares,
        sim_seed=args.seed,
        detection_latency=args.detection_latency,
        workers=args.workers,
        runner=runner,
        cache=_cache_arg(args),
    )
    print(rep.format())
    _report_cache(args, before)
    _report_remote(runner)
    s = rep.summary()
    bad = sum(s[p]["hangs"] + s[p]["violations"] for p in protocols)
    return 1 if bad else 0


def cmd_heat(args: argparse.Namespace) -> int:
    cfg = HeatConfig(cells_per_rank=args.cells, steps=args.steps)
    sim = _common_sim(args, args.nprocs)
    result = sim.run(make_heat_main(cfg), on_deadlock="return")
    print(f"outcome: {'HANG' if result.hung else 'ran through'}")
    print(f"failed ranks: {sorted(result.failed_ranks)}")
    for i in result.completed_ranks:
        rep = result.value(i)
        print(f"rank {i}: total heat {rep['total_heat']:.4f}, "
              f"halo retries {rep['halo_retries']}")
    _print_trace_views(args, result, args.nprocs)
    return 2 if result.hung else 0


def cmd_farm(args: argparse.Namespace) -> int:
    cfg = FarmConfig(num_tasks=args.tasks, work_per_task=1e-6)
    sim = _common_sim(args, args.nprocs)
    result = sim.run(make_farm_mains(cfg, args.nprocs), on_deadlock="return")
    if result.hung:
        print("HANG")
        _print_trace_views(args, result, args.nprocs)
        return 2
    if result.aborted is not None:
        print(f"aborted: {result.aborted}")
        _print_trace_views(args, result, args.nprocs)
        return 3
    rep = result.value(0)
    ok = rep["results"] == expected_results(cfg)
    print(f"tasks complete & correct: {ok}")
    print(f"dead workers: {rep['dead_workers']}  "
          f"reassignments: {rep['reassignments']}")
    _print_trace_views(args, result, args.nprocs)
    return 0 if ok else 1


def cmd_perf(args: argparse.Namespace) -> int:
    """Run one scenario and print the kernel's performance counters."""
    _apply_fibers(args)
    sim = _common_sim(args, args.nprocs)
    if not args.trace:
        sim.runtime.trace.enabled = False
    if args.scenario == "ring":
        cfg = RingConfig(
            max_iter=args.iters,
            variant=RingVariant(args.variant),
            termination=Termination(args.termination),
        )
        main = make_rootft_main(cfg) if args.rootft else make_ring_main(cfg)
    elif args.scenario == "heat":
        main = make_heat_main(HeatConfig())
    elif args.scenario == "farm":
        main = make_farm_mains(FarmConfig(), args.nprocs)
    else:  # abft
        main = make_abft_main(AbftConfig())
    result = sim.run(main, on_deadlock="return")
    outcome = ("HANG" if result.hung
               else "aborted" if result.aborted is not None
               else "ran through")
    print(f"scenario: {args.scenario} (nprocs={args.nprocs}, "
          f"seed={args.seed}, trace={'on' if args.trace else 'off'}, "
          f"fibers={sim.runtime.fiber_backend})")
    print(f"outcome: {outcome}  virtual time: {result.final_time:.9f}")
    print()
    assert result.perf is not None
    print(result.perf.format())
    return 2 if result.hung else 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two BENCH_simperf.json files and flag regressions."""
    from .perf import BackendMismatch, diff_benchmarks, format_diff

    try:
        deltas = diff_benchmarks(
            args.baseline, args.current, metric=args.metric
        )
    except BackendMismatch as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    text, flagged = format_diff(deltas, threshold=args.threshold)
    print(text)
    return 1 if flagged else 0


def _fuzz_scenario(args: argparse.Namespace):
    """Build the picklable scenario spec the fuzz subcommand targets."""
    if args.scenario == "ring":
        return RingScenario(
            nprocs=args.nprocs,
            iters=args.iters,
            variant=args.variant,
            termination=args.termination,
            rootft=args.rootft,
            detection_latency=args.detection_latency,
        )
    from .parallel import AppScenario

    return AppScenario(
        app=args.scenario,
        nprocs=args.nprocs,
        size=args.size,
        steps=args.steps,
        detection_latency=args.detection_latency,
    )


def cmd_fuzz(args: argparse.Namespace) -> int:
    _apply_fibers(args)
    from pathlib import Path

    from .fuzz import fuzz, write_repro
    from .parallel import make_runner

    if args.coverage:
        from .fuzz import coverage_fuzz

        rep = coverage_fuzz(
            _fuzz_scenario(args),
            budget=args.runs,
            seed=args.fuzz_seed,
            runner=_sweep_runner(args) or make_runner(args.workers),
            guided=not args.coverage_uniform,
            max_jitter=args.max_jitter,
            min_kills=args.min_kills,
            max_kills=args.max_kills,
            horizon=args.horizon,
        )
        print(rep.format())
        if args.coverage_out:
            print(f"wrote {rep.write(args.coverage_out)}", file=sys.stderr)
        return 1 if rep.failures else 0

    before = _cache_counters_snapshot(args)
    runner = _sweep_runner(args)
    with _spans_scope(args):
        report = fuzz(
            _fuzz_scenario(args),
            runs=args.runs,
            seed=args.fuzz_seed,
            runner=runner or make_runner(args.workers),
            cache=_cache_arg(args),
            shrink_failures=not args.no_shrink,
            max_jitter=args.max_jitter,
            min_kills=args.min_kills,
            max_kills=args.max_kills,
            horizon=args.horizon,
            telemetry=args.telemetry,
            stream=args.stream,
            stream_window=args.stream_window,
        )
    print(report.format(verbose=args.verbose)
          if not args.stream else report.format())
    _report_cache(args, before)
    _report_remote(runner)
    if args.out_dir and report.failures:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        # Persist the *shrunk* config when available — that is the
        # reproducer a human wants to stare at.
        minimized = {
            o.index: sr.config
            for o, sr in zip(report.failures, report.shrunk)
        }
        for outcome in report.failures:
            config = minimized.get(outcome.index, outcome.config)
            path = out / f"fuzz-{args.fuzz_seed}-{outcome.index:04d}.repro.json"
            write_repro(config, path)
            print(f"wrote {path}")
    return 1 if report.failures else 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .parallel import remote

    if args.worker_cmd == "serve":
        _apply_fibers(args)
        remote.serve(args.bind)
        return 0
    # ping
    host, port = args.addr
    # --heartbeat-interval probes with the same budget a sweep's
    # liveness check would use; --timeout is the general budget.
    timeout = (args.heartbeat_interval
               if args.heartbeat_interval is not None else args.timeout)
    try:
        info = remote.ping(args.addr, timeout=timeout)
    except OSError as exc:
        print(f"[worker] {host}:{port} unreachable: {exc}", file=sys.stderr)
        return 1
    print(f"[worker] {host}:{port} pid={info['pid']} busy={info['busy']}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .fuzz import replay

    worst = 0
    for path in args.files:
        rep = replay(path)
        print(f"== {path}")
        print(rep.format())
        if args.perf:
            width = max(len(k) for k in rep.outcome.perf) if rep.outcome.perf else 0
            for name, value in sorted(rep.outcome.perf.items()):
                print(f"  {name:<{width}}  {value}")
        if not rep.ok:
            worst = 1
    return worst


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and maintain the content-addressed run cache."""
    from .cache import RunCache

    cache = RunCache.at(args.cache_dir, backend=args.backend)
    if args.cache_cmd == "stats":
        s = cache.stats()
        print(f"root:     {s['root']}")
        print(f"backend:  {s['backend']}")
        print(f"format:   {s['format']}")
        print(f"entries:  {s['entries']}")
        print(f"size:     {s['total_bytes']} bytes")
        return 0
    if args.cache_cmd == "migrate":
        counts = cache.migrate(args.to, dest=args.dest)
        where = args.dest or cache.root
        print(f"migrated {counts['migrated']} entr(ies) to "
              f"{counts['backend']} at {where}"
              + (f" ({counts['skipped']} corrupt skipped)"
                 if counts["skipped"] else ""))
        return 0
    if args.cache_cmd == "gc":
        max_age = args.max_age_days * 86400.0 if args.max_age_days else None
        counts = cache.gc(max_age_s=max_age)
        print(f"removed {counts['removed_stale']} stale-format and "
              f"{counts['removed_old']} expired entr(ies)")
        return 0
    # verify: re-execute (a sample of) entries and diff field by field.
    results = cache.verify(sample=args.sample, seed=args.seed)
    for r in results:
        print(r.format())
    bad = sum(not r.ok for r in results)
    print(f"verified {len(results)} entr(ies): "
          f"{len(results) - bad} ok, {bad} failing")
    return 1 if bad else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a named scenario and export its trace for offline viewing."""
    from .obs import (
        dumps_perfetto,
        jsonl_errors,
        make_scenario,
        perfetto_errors,
        run_report,
        trace_to_jsonl,
        trace_to_perfetto,
    )

    sim, main, nprocs = make_scenario(
        args.preset, metrics=True, trace_cap=args.trace_cap
    )
    result = sim.run(main, on_deadlock="return", raise_app_errors=False)

    if args.format == "spacetime":
        text = render_spacetime(result.trace, nprocs)
    elif args.format == "jsonl":
        text = trace_to_jsonl(result.trace, nprocs)
        if args.validate:
            errors = jsonl_errors(text)
            if errors:
                for e in errors:
                    print(f"[trace] INVALID: {e}", file=sys.stderr)
                return 1
            print("[trace] jsonl export valid", file=sys.stderr)
    else:  # perfetto
        doc = trace_to_perfetto(result.trace, nprocs, metrics=result.metrics)
        text = dumps_perfetto(doc)
        if args.validate:
            errors = perfetto_errors(doc)
            if errors:
                for e in errors:
                    print(f"[trace] INVALID: {e}", file=sys.stderr)
                return 1
            print(
                f"[trace] perfetto export valid "
                f"({len(doc['traceEvents'])} events)",
                file=sys.stderr,
            )

    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    if args.summary:
        print(run_report(result, nprocs=nprocs).format(), file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Aggregate a sweep telemetry file without re-running anything."""
    import json

    from .obs import (
        canonical_lines,
        read_telemetry,
        summarize,
        summary_dict,
        telemetry_errors,
    )

    worst = 0
    for path in args.files:
        errors = telemetry_errors(path)
        if errors:
            print(f"== {path}: INVALID", file=sys.stderr)
            for e in errors:
                print(f"  - {e}", file=sys.stderr)
            worst = 1
            continue
        if args.canon:
            # Determinism view: volatile fields dropped, lines sorted —
            # byte-diffable between serial and pooled runs of one sweep.
            for line in canonical_lines(path):
                print(line)
            continue
        summary = summarize(read_telemetry(path), top=args.top)
        if args.format == "json":
            # One compact object per file: dashboards and CI consume
            # this instead of scraping the text layout.
            print(json.dumps(summary_dict(summary), sort_keys=True,
                             separators=(",", ":")))
            continue
        if len(args.files) > 1:
            print(f"== {path}")
        print(summary.format())
    return worst


def cmd_spans(args: argparse.Namespace) -> int:
    """Validate, canonicalize, or convert a ``repro.spans/1`` stream."""
    from pathlib import Path

    from .obs import (
        canonical_spans,
        dumps_perfetto,
        perfetto_errors,
        read_spans,
        span_errors,
        spans_to_perfetto,
    )

    worst = 0
    for path in args.files:
        errors = span_errors(path)
        if errors:
            print(f"== {path}: INVALID", file=sys.stderr)
            for e in errors:
                print(f"  - {e}", file=sys.stderr)
            worst = 1
            continue
        if args.validate:
            records = read_spans(path)
            print(f"[spans] {path} valid ({len(records) - 1} span(s))",
                  file=sys.stderr)
        if args.canon:
            # Placement-independent view: volatile fields (times, ids,
            # tracks) dropped — byte-diffable serial vs pooled vs remote.
            text = "\n".join(canonical_spans(path)) + "\n"
        elif args.format == "perfetto":
            doc = spans_to_perfetto(path)
            errors = perfetto_errors(doc)
            if errors:
                for e in errors:
                    print(f"[spans] INVALID perfetto: {e}", file=sys.stderr)
                worst = 1
                continue
            text = dumps_perfetto(doc)
        elif args.validate:
            continue  # --validate alone: no re-emission
        else:
            text = Path(path).read_text()
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text, end="" if text.endswith("\n") else "\n")
    return worst


def cmd_metrics(args: argparse.Namespace) -> int:
    """Serve /metrics + /healthz over stdlib HTTP until interrupted."""
    from .obs.registry import MetricsServer

    server = MetricsServer(args.bind, telemetry=args.telemetry)
    host, port = server.address
    print(
        f"[metrics] serving on http://{host}:{port}/metrics pid={os.getpid()}",
        file=sys.stderr, flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live campaign console over a telemetry stream."""
    from .obs.console import top

    return top(
        args.telemetry,
        follow=args.follow,
        interval=args.interval,
        top_n=args.top,
    )


def cmd_abft(args: argparse.Namespace) -> int:
    cfg = AbftConfig(iterations=args.iters)
    sim = _common_sim(args, args.nprocs)
    result = sim.run(make_abft_main(cfg), on_deadlock="return")
    if result.hung:
        print("HANG")
        _print_trace_views(args, result, args.nprocs)
        return 2
    rep = result.value(min(result.completed_ranks))
    print(f"failed ranks: {sorted(result.failed_ranks)}")
    print(f"parity recoveries: {rep['recoveries']}  degraded: "
          f"{rep['degraded']}")
    for rec in rep["results"]:
        print(f"iteration {rec['iteration']}: blocks "
              f"{sorted(rec['blocks'])} recovered {rec['recovered']}")
    _print_trace_views(args, result, args.nprocs)
    return 1 if rep["degraded"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant MPI ring reproduction "
                    "(Hursey & Graham 2011) on a simulated MPI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, nprocs_default: int) -> None:
        p.add_argument("--nprocs", type=int, default=nprocs_default)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--detection-latency", type=float, default=0.0)
        _add_kill_args(p)

    ring = sub.add_parser("ring", help="run the fault-tolerant ring")
    common(ring, 8)
    ring.add_argument("--iters", type=int, default=6)
    ring.add_argument("--work", type=float, default=0.0,
                      help="virtual compute seconds per iteration")
    ring.add_argument("--variant", default="ft_marker",
                      choices=[v.value for v in RingVariant])
    ring.add_argument("--termination", default="validate_all",
                      choices=[t.value for t in Termination])
    ring.add_argument("--rootft", action="store_true",
                      help="use the §III-D root-failure-tolerant driver")
    _add_trace_args(ring)
    ring.set_defaults(fn=cmd_ring)

    ex = sub.add_parser("explore", help="exhaustive failure-window sweep")
    common(ex, 4)
    ex.add_argument("--iters", type=int, default=3)
    ex.add_argument("--variant", default="ft_marker",
                    choices=[v.value for v in RingVariant])
    ex.add_argument("--termination", default="validate_all",
                    choices=[t.value for t in Termination])
    ex.add_argument("--rootft", action="store_true")
    ex.add_argument("--pairs", action="store_true",
                    help="also sweep every pair of windows")
    ex.add_argument("--limit", type=int, default=None, metavar="N",
                    help="cap the enumeration at the first N windows "
                         "(the report names what was considered)")
    _add_workers_arg(ex, "re-runs")
    _add_transport_args(ex)
    ex.add_argument("--progress", action="store_true",
                    help="report sweep liveness on stderr as batches "
                         "complete")
    _add_fibers_arg(ex)
    ex.add_argument("--telemetry", default=None, metavar="FILE",
                    help="stream per-job telemetry (JSONL) to FILE; "
                         "aggregate later with `repro report FILE`")
    ex.add_argument("--stream", action="store_true",
                    help="pipe windows through the streaming pipeline "
                         "(O(failures) memory; same report text)")
    _add_stream_window_arg(ex)
    _add_spans_arg(ex)
    _add_cache_args(ex)
    ex.set_defaults(fn=cmd_explore)

    camp = sub.add_parser(
        "campaign", help="randomized fault-injection campaign"
    )
    common(camp, 8)
    camp.add_argument("--iters", type=int, default=6)
    camp.add_argument("--variant", default="ft_marker",
                      choices=[v.value for v in RingVariant])
    camp.add_argument("--termination", default="validate_all",
                      choices=[t.value for t in Termination])
    camp.add_argument("--rootft", action="store_true",
                      help="use the §III-D driver and let the root die too")
    camp.add_argument("--runs", type=int, default=100,
                      help="number of sampled runs (one seed each)")
    camp.add_argument("--first-seed", type=int, default=0,
                      help="first campaign seed (seeds are consecutive)")
    camp.add_argument("--horizon", type=float, default=2e-5,
                      help="kill times are sampled uniformly in [0, horizon)")
    camp.add_argument("--kills", type=int, default=1,
                      help="fail-stops injected per run")
    _add_workers_arg(camp)
    _add_transport_args(camp)
    _add_fibers_arg(camp)
    camp.add_argument("--telemetry", default=None, metavar="FILE",
                      help="stream per-job telemetry (JSONL) to FILE; "
                           "aggregate later with `repro report FILE`")
    camp.add_argument("--stream", action="store_true",
                      help="pipe runs through the streaming pipeline — "
                           "memory stays O(failures) however large --runs "
                           "gets; the report text is identical")
    _add_stream_window_arg(camp)
    _add_spans_arg(camp)
    _add_cache_args(camp)
    camp.set_defaults(fn=cmd_campaign)

    cp = sub.add_parser(
        "compare-protocols",
        help="differential study of the recovery protocol families "
             "(rts / shrink_repair / replication / partial_restart) on "
             "identical fault schedules",
    )
    cp.add_argument("--nprocs", type=int, default=6,
                    help="logical ring size (replication runs 2x physical "
                         "ranks, partial restart nprocs+spares)")
    cp.add_argument("--iters", type=int, default=6)
    cp.add_argument("--seed", type=int, default=0,
                    help="simulation seed shared by every run")
    cp.add_argument("--detection-latency", type=float, default=0.0)
    cp.add_argument("--protocols", nargs="+", default=None,
                    metavar="PROTO",
                    choices=["rts", "shrink_repair", "replication",
                             "partial_restart"],
                    help="subset of protocol families (default: all four)")
    cp.add_argument("--runs", type=int, default=25,
                    help="fault schedules per protocol (one seed each)")
    cp.add_argument("--first-seed", type=int, default=0,
                    help="first schedule seed (seeds are consecutive)")
    cp.add_argument("--horizon", type=float, default=4e-5,
                    help="kill times are sampled uniformly in [0, horizon)")
    cp.add_argument("--kills", type=int, default=1,
                    help="fail-stops injected per run")
    cp.add_argument("--spares", type=int, default=2,
                    help="spare ranks for partial_restart")
    _add_workers_arg(cp)
    _add_transport_args(cp)
    _add_fibers_arg(cp)
    _add_cache_args(cp)
    cp.set_defaults(fn=cmd_compare_protocols)

    heat = sub.add_parser("heat", help="fault-tolerant heat diffusion")
    common(heat, 6)
    heat.add_argument("--cells", type=int, default=8)
    heat.add_argument("--steps", type=int, default=20)
    _add_trace_args(heat)
    heat.set_defaults(fn=cmd_heat)

    farm = sub.add_parser("farm", help="manager/worker task farm")
    common(farm, 5)
    farm.add_argument("--tasks", type=int, default=20)
    _add_trace_args(farm)
    farm.set_defaults(fn=cmd_farm)

    abft = sub.add_parser("abft", help="ABFT parity-recovered matvec")
    common(abft, 5)
    abft.add_argument("--iters", type=int, default=5)
    _add_trace_args(abft)
    abft.set_defaults(fn=cmd_abft)

    perf = sub.add_parser(
        "perf", help="run a scenario and print kernel perf counters"
    )
    perf.add_argument("scenario", choices=["ring", "heat", "farm", "abft"],
                      help="which bundled scenario to run")
    common(perf, 8)
    perf.add_argument("--iters", type=int, default=6)
    perf.add_argument("--variant", default="ft_marker",
                      choices=[v.value for v in RingVariant])
    perf.add_argument("--termination", default="validate_all",
                      choices=[t.value for t in Termination])
    perf.add_argument("--rootft", action="store_true")
    _add_fibers_arg(perf)
    perf.add_argument("--trace", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="--no-trace measures the zero-cost disabled-"
                           "trace path")
    perf.set_defaults(fn=cmd_perf)

    fz = sub.add_parser(
        "fuzz",
        help="seeded schedule-space fuzzing with shrinking reproducers",
    )
    # No common(): for this subcommand --seed is the *fuzz* master seed
    # (policy seeds, jitter, and kills are all sampled; the simulator's
    # own base seed is irrelevant once a policy seed is configured).
    fz.add_argument("--nprocs", type=int, default=4)
    fz.add_argument("--seed", dest="fuzz_seed", type=int, default=0,
                    help="master seed: determines the whole corpus")
    fz.add_argument("--detection-latency", type=float, default=0.0)
    fz.add_argument("--scenario", default="ring",
                    choices=["ring", "heat1d", "ring_allreduce",
                             "abft_matvec", "manager_worker"],
                    help="workload to fuzz (default: the paper's ring)")
    fz.add_argument("--iters", type=int, default=3,
                    help="ring iterations (ring scenario only)")
    fz.add_argument("--variant", default="ft_marker",
                    choices=[v.value for v in RingVariant])
    fz.add_argument("--termination", default="validate_all",
                    choices=[t.value for t in Termination])
    fz.add_argument("--rootft", action="store_true")
    fz.add_argument("--size", type=int, default=8,
                    help="app size knob (cells/vector/rows/tasks)")
    fz.add_argument("--steps", type=int, default=5,
                    help="app steps knob (steps/rounds/iterations)")
    fz.add_argument("--runs", type=int, default=100,
                    help="number of sampled configurations")
    fz.add_argument("--max-jitter", type=float, default=0.3,
                    help="largest relative timing-jitter amplitude")
    fz.add_argument("--min-kills", type=int, default=0)
    fz.add_argument("--max-kills", type=int, default=2,
                    help="fail-stops injected per run (sampled range)")
    fz.add_argument("--horizon", type=float, default=None,
                    help="kill-time upper bound (default: measured from "
                         "an unperturbed run)")
    _add_workers_arg(fz)
    _add_transport_args(fz)
    fz.add_argument("--no-shrink", action="store_true",
                    help="skip delta-debugging of failures")
    fz.add_argument("--out-dir", default=None, metavar="DIR",
                    help="write a .repro.json per failure into DIR")
    fz.add_argument("--verbose", action="store_true",
                    help="list every outcome, not just failures")
    _add_fibers_arg(fz)
    fz.add_argument("--telemetry", default=None, metavar="FILE",
                    help="stream per-job telemetry (JSONL) to FILE; "
                         "aggregate later with `repro report FILE`")
    fz.add_argument("--stream", action="store_true",
                    help="pipe configs through the streaming pipeline "
                         "(O(failures) memory; --verbose unavailable)")
    _add_stream_window_arg(fz)
    _add_spans_arg(fz)
    fz.add_argument("--coverage", action="store_true",
                    help="coverage-guided mode: keep configs that hit "
                         "novel coverage cells and mutate them (--runs "
                         "becomes the total run budget)")
    fz.add_argument("--coverage-uniform", action="store_true",
                    help="disable the feedback loop (uniform baseline "
                         "for guided-vs-uniform comparisons)")
    fz.add_argument("--coverage-out", default=None, metavar="FILE",
                    help="write the coverage report (cells, outcome "
                         "histogram, failing configs) as JSON to FILE")
    _add_cache_args(fz)
    fz.set_defaults(fn=cmd_fuzz)

    ca = sub.add_parser(
        "cache", help="inspect and maintain the content-addressed run cache"
    )
    ca.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache directory (default: $REPRO_CACHE_DIR, "
                         "else ~/.cache/repro/runs)")
    ca.add_argument("--backend", default=None, choices=["json", "sqlite"],
                    help="store backend (default: $REPRO_CACHE_BACKEND, "
                         "else auto-detected from the directory)")
    casub = ca.add_subparsers(dest="cache_cmd", required=True)
    cast = casub.add_parser("stats", help="entry count and disk footprint")
    cast.set_defaults(fn=cmd_cache)
    cami = casub.add_parser(
        "migrate",
        help="copy every entry to another backend (in place by default)",
    )
    cami.add_argument("--to", required=True, choices=["json", "sqlite"],
                      help="target backend")
    cami.add_argument("--dest", default=None, metavar="DIR",
                      help="write into DIR instead of converting the cache "
                           "directory in place")
    cami.set_defaults(fn=cmd_cache)
    cagc = casub.add_parser(
        "gc", help="drop stale-format (and optionally old) entries"
    )
    cagc.add_argument("--max-age-days", type=float, default=None,
                      help="also drop entries older than this many days")
    cagc.set_defaults(fn=cmd_cache)
    cave = casub.add_parser(
        "verify",
        help="re-execute stored entries and diff payloads field by field",
    )
    cave.add_argument("--sample", type=int, default=None, metavar="N",
                      help="verify a seeded random sample of N entries "
                           "(default: all)")
    cave.add_argument("--seed", type=int, default=0,
                      help="sampling seed (default: 0)")
    cave.set_defaults(fn=cmd_cache)

    tr = sub.add_parser(
        "trace",
        help="run a named scenario and export its trace "
             "(Perfetto JSON / JSONL / spacetime)",
    )
    from .obs.scenarios import SCENARIOS

    tr.add_argument("preset", choices=list(SCENARIOS),
                    help="scenario preset (fig* presets mirror the paper's "
                         "figures)")
    tr.add_argument("--format", default="perfetto",
                    choices=["perfetto", "jsonl", "spacetime"],
                    help="export format (default: perfetto — open the file "
                         "at https://ui.perfetto.dev)")
    tr.add_argument("-o", "--output", default=None, metavar="FILE",
                    help="write to FILE instead of stdout")
    tr.add_argument("--trace-cap", type=int, default=None, metavar="N",
                    help="keep only the last N trace events (ring buffer)")
    tr.add_argument("--validate", action="store_true",
                    help="schema-validate the export before writing "
                         "(non-zero exit on any violation)")
    tr.add_argument("--summary", action="store_true",
                    help="also print the per-rank run report on stderr")
    tr.set_defaults(fn=cmd_trace)

    rep = sub.add_parser(
        "report", help="aggregate sweep telemetry JSONL (no re-running)"
    )
    rep.add_argument("files", nargs="+", metavar="TELEMETRY",
                     help="telemetry JSONL file(s) written via --telemetry")
    rep.add_argument("--top", type=int, default=5,
                     help="how many slowest jobs to list (default: 5)")
    rep.add_argument("--canon", action="store_true",
                     help="print the canonical (volatile-free, sorted) "
                          "lines instead of a summary — byte-diffable "
                          "between serial and pooled runs")
    rep.add_argument("--format", default="text", choices=["text", "json"],
                     help="summary output format: 'text' (human layout) or "
                          "'json' (one repro.report/1 object per file for "
                          "dashboards and CI)")
    rep.set_defaults(fn=cmd_report)

    sp = sub.add_parser(
        "spans",
        help="validate, canonicalize, or convert repro.spans/1 pipeline "
             "span streams (written via --spans)",
    )
    sp.add_argument("files", nargs="+", metavar="SPANS",
                    help="span JSONL file(s) written via --spans")
    sp.add_argument("--format", default="jsonl",
                    choices=["jsonl", "perfetto"],
                    help="re-emit as-is (jsonl) or as a Chrome Trace Event "
                         "document with one track per worker (perfetto — "
                         "open at https://ui.perfetto.dev)")
    sp.add_argument("--canon", action="store_true",
                    help="print the canonical (volatile-free, sorted) span "
                         "lines — byte-diffable serial vs pooled vs remote")
    sp.add_argument("-o", "--output", default=None, metavar="FILE",
                    help="write to FILE instead of stdout")
    sp.add_argument("--validate", action="store_true",
                    help="schema-validate the stream (non-zero exit on any "
                         "violation); alone, emits nothing")
    sp.set_defaults(fn=cmd_spans)

    mx = sub.add_parser(
        "metrics",
        help="Prometheus-style metrics endpoints over the sweep pipeline",
    )
    mxsub = mx.add_subparsers(dest="metrics_cmd", required=True)
    mxserve = mxsub.add_parser(
        "serve",
        help="serve /metrics (text exposition) and /healthz over stdlib "
             "HTTP until interrupted",
    )
    mxserve.add_argument("--bind", type=_bind_addr,
                         default=("127.0.0.1", 0), metavar="HOST:PORT",
                         help="listen address; port 0 picks a free port "
                              "(default: 127.0.0.1:0; the bound port is in "
                              "the readiness line)")
    mxserve.add_argument("--telemetry", default=None, metavar="FILE",
                         help="rebuild the registry from this telemetry "
                              "JSONL on every scrape (live campaign "
                              "dashboards); default: this process's own "
                              "in-process counters")
    mxserve.set_defaults(fn=cmd_metrics)

    tp = sub.add_parser(
        "top",
        help="live campaign console over a --telemetry stream "
             "(progress, throughput, outcomes, per-worker table)",
    )
    tp.add_argument("--telemetry", required=True, metavar="FILE",
                    help="telemetry JSONL a sweep is writing (or wrote)")
    tp.add_argument("--follow", action="store_true",
                    help="repaint every --interval seconds until the "
                         "declared run count has landed")
    tp.add_argument("--interval", type=_positive_float, default=2.0,
                    help="repaint interval in seconds (default: 2)")
    tp.add_argument("--top", type=_positive_int, default=3,
                    help="how many slowest jobs to list (default: 3)")
    tp.set_defaults(fn=cmd_top)

    wk = sub.add_parser(
        "worker",
        help="distributed sweep workers (the --transport remote backend)",
    )
    wksub = wk.add_subparsers(dest="worker_cmd", required=True)
    wkserve = wksub.add_parser(
        "serve",
        help="execute sweep chunks over a socket until interrupted "
             "(prints '[worker] ... listening on HOST:PORT' on stderr "
             "when ready)",
    )
    wkserve.add_argument("--bind", type=_bind_addr, default=("127.0.0.1", 0),
                         metavar="HOST:PORT",
                         help="listen address; port 0 picks a free port "
                              "(default: 127.0.0.1:0 — frames are pickles, "
                              "bind to loopback or a trusted network only)")
    _add_fibers_arg(wkserve)
    wkserve.set_defaults(fn=cmd_worker)
    wkping = wksub.add_parser(
        "ping", help="liveness-check one worker (exit 0 if it answers)"
    )
    wkping.add_argument("addr", type=_worker_addr, metavar="HOST:PORT")
    wkping.add_argument("--timeout", type=float, default=2.0,
                        help="connect/reply budget in seconds (default: 2)")
    wkping.add_argument("--heartbeat-interval", type=_positive_float,
                        default=None, metavar="SECONDS",
                        help="probe with the budget a sweep's liveness "
                             "heartbeat would use (overrides --timeout)")
    wkping.set_defaults(fn=cmd_worker)

    rp = sub.add_parser(
        "replay", help="re-run saved .repro.json reproducers and verify"
    )
    rp.add_argument("files", nargs="+", metavar="FILE",
                    help=".repro.json reproducer file(s)")
    rp.add_argument("--perf", action="store_true",
                    help="also print the replayed run's perf counters")
    rp.set_defaults(fn=cmd_replay)

    bd = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_simperf.json files, flag regressions",
    )
    bd.add_argument("baseline", help="baseline BENCH_simperf.json")
    bd.add_argument("current", help="current BENCH_simperf.json")
    bd.add_argument("--metric", default="min_wall_s",
                    help="series metric to compare (default: min_wall_s)")
    bd.add_argument("--threshold", type=float, default=0.20,
                    help="relative regression that flags a series "
                         "(default: 0.20)")
    bd.set_defaults(fn=cmd_bench_diff)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (``python -m repro`` / the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
