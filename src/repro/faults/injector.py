"""Fault injectors (paper §III-E).

An injector decides *when a process dies*.  Injectors are consulted by the
runtime at every MPI call and at every application probe point, and may
additionally arm virtual-time kill events.  All injectors are
deterministic given their parameters (and seed, where applicable), so a
failing scenario replays exactly.

Triggers provided:

* :class:`KillAtTime` — fail-stop at a virtual time (event-driven; the
  victim can die while blocked).
* :class:`KillAtCall` — die on the victim's *n*-th MPI call (optionally
  only if it is a specific operation).
* :class:`KillAtProbe` — die at the *k*-th hit of a named probe point.
  This is how the paper's precise windows ("after the receive, before the
  send") are targeted.
* :class:`KillRandomly` — seeded Bernoulli per MPI call, with a cap, for
  randomized campaigns.
* :class:`CompositeInjector` — combine any of the above.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simmpi.process import SimProcess
    from ..simmpi.runtime import Runtime


class FaultInjector:
    """Base class: by default never kills and arms nothing."""

    def arm(self, runtime: "Runtime") -> None:
        """Schedule any time-based kills (called once, before the run)."""

    def should_kill(
        self,
        proc: "SimProcess",
        op: str | None = None,
        probe: str | None = None,
    ) -> bool:
        """Return True to fail-stop *proc* at this window."""
        return False


@dataclass
class KillAtTime(FaultInjector):
    """Fail-stop *rank* at virtual time *time*."""

    rank: int
    time: float

    def arm(self, runtime: "Runtime") -> None:
        runtime.kill_at(self.rank, self.time)


@dataclass
class KillAtCall(FaultInjector):
    """Fail-stop *rank* on its *call_no*-th MPI call (1-based).

    If *op* is given, only calls of that operation count.
    """

    rank: int
    call_no: int
    op: str | None = None
    _count: int = field(default=0, repr=False)

    def should_kill(
        self,
        proc: "SimProcess",
        op: str | None = None,
        probe: str | None = None,
    ) -> bool:
        if proc.rank != self.rank or probe is not None or op is None:
            return False
        if self.op is not None and op != self.op:
            return False
        self._count += 1
        return self._count == self.call_no


@dataclass
class KillAtProbe(FaultInjector):
    """Fail-stop *rank* at the *hit*-th occurrence of probe *probe* (1-based)."""

    rank: int
    probe: str
    hit: int = 1

    def should_kill(
        self,
        proc: "SimProcess",
        op: str | None = None,
        probe: str | None = None,
    ) -> bool:
        if proc.rank != self.rank or probe != self.probe:
            return False
        return proc.probe_counts.get(self.probe, 0) == self.hit


@dataclass
class KillRandomly(FaultInjector):
    """Seeded random fail-stop: each MPI call of an eligible rank dies with
    probability *rate*, up to *max_failures* total.

    ``protect`` lists ranks that never die (e.g. the root for Fig. 11
    scenarios).
    """

    rate: float
    seed: int = 0
    max_failures: int = 1
    protect: Sequence[int] = ()
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]
    _killed: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self._rng = random.Random(self.seed)

    def should_kill(
        self,
        proc: "SimProcess",
        op: str | None = None,
        probe: str | None = None,
    ) -> bool:
        if probe is not None or op is None:
            return False
        if self._killed >= self.max_failures or proc.rank in self.protect:
            return False
        if self._rng.random() < self.rate:
            self._killed += 1
            return True
        return False


class CompositeInjector(FaultInjector):
    """Run several injectors as one (first positive answer wins)."""

    def __init__(self, injectors: Iterable[FaultInjector]) -> None:
        self.injectors = list(injectors)

    def arm(self, runtime: "Runtime") -> None:
        for inj in self.injectors:
            inj.arm(runtime)

    def should_kill(
        self,
        proc: "SimProcess",
        op: str | None = None,
        probe: str | None = None,
    ) -> bool:
        return any(i.should_kill(proc, op=op, probe=probe) for i in self.injectors)
