"""Exhaustive failure-scenario exploration (paper §III-E).

The paper closes with the testing question: *how can a developer know when
they have addressed all of the problematic fault scenarios?*  Fault
injection alone samples; this module enumerates.  Because the simulator is
deterministic, the set of reachable failure windows of a program is
exactly the set of probe-point hits of its failure-free reference run —
so we can:

1. run the scenario once with no failures and collect every
   ``(rank, probe, hit)`` window from the trace;
2. re-run the scenario once per window, killing that rank at that window
   (optionally: once per *pair* of windows, for double failures);
3. classify every run with user-supplied invariants.

The result is a complete map of "what happens if a process dies *here*"
— the tool the paper wishes existed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..simmpi.runtime import Simulation, SimulationResult
from ..simmpi.trace import TraceKind
from .injector import CompositeInjector, FaultInjector, KillAtProbe

#: Builds a fresh, un-run Simulation plus its per-rank main(s).
ScenarioFactory = Callable[[], tuple[Simulation, Any]]

#: An invariant inspects a result and returns a violation message or None.
Invariant = Callable[[SimulationResult], str | None]


@dataclass(frozen=True)
class Window:
    """One reachable failure window: rank dies at the hit-th probe."""

    rank: int
    probe: str
    hit: int

    def injector(self) -> FaultInjector:
        return KillAtProbe(rank=self.rank, probe=self.probe, hit=self.hit)

    def __str__(self) -> str:
        return f"r{self.rank}@{self.probe}#{self.hit}"


@dataclass
class ScenarioOutcome:
    """Classification of one fault-injected run."""

    windows: tuple[Window, ...]
    hung: bool
    aborted: bool
    violations: list[str] = field(default_factory=list)
    result: SimulationResult | None = None

    @property
    def ok(self) -> bool:
        """No invariant violation and no hang (aborts may be legitimate —
        invariants decide whether an abort is acceptable)."""
        return not self.hung and not self.violations


@dataclass
class ExplorationReport:
    """Aggregate of a full exploration sweep."""

    reference_windows: list[Window]
    outcomes: list[ScenarioOutcome]

    @property
    def failures(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def hangs(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.hung]

    def summary(self) -> dict[str, int]:
        return {
            "windows": len(self.reference_windows),
            "runs": len(self.outcomes),
            "ok": sum(o.ok for o in self.outcomes),
            "hangs": len(self.hangs),
            "violations": sum(bool(o.violations) for o in self.outcomes),
        }

    def format(self) -> str:
        s = self.summary()
        lines = [
            f"explored {s['runs']} scenario(s) over {s['windows']} window(s): "
            f"{s['ok']} ok, {s['hangs']} hang(s), {s['violations']} violating"
        ]
        for o in self.failures:
            tag = "HANG" if o.hung else "VIOLATION"
            wins = "+".join(str(w) for w in o.windows)
            lines.append(f"  [{tag}] {wins}: {'; '.join(o.violations) or 'deadlock'}")
        return "\n".join(lines)


def enumerate_windows(
    factory: ScenarioFactory,
    probes: Sequence[str] | None = None,
    ranks: Sequence[int] | None = None,
) -> list[Window]:
    """Run the failure-free reference and list every reachable window.

    ``probes``/``ranks`` filter the enumeration (e.g. only ``post_recv``
    windows, or only non-root ranks for the Fig. 11 contract).
    """
    sim, main = factory()
    result = sim.run(main, on_deadlock="return")
    windows: list[Window] = []
    for ev in result.trace.filter(kind=TraceKind.PROBE):
        name = ev.detail["name"]
        if probes is not None and name not in probes:
            continue
        if ranks is not None and ev.rank not in ranks:
            continue
        windows.append(Window(rank=ev.rank, probe=name, hit=ev.detail["hit"]))
    return windows


def run_window(
    factory: ScenarioFactory,
    windows: Window | Iterable[Window],
    invariants: Sequence[Invariant] = (),
    keep_results: bool = False,
) -> ScenarioOutcome:
    """Re-run the scenario with fail-stop injected at the given window(s)."""
    if isinstance(windows, Window):
        windows = (windows,)
    wins = tuple(windows)
    sim, main = factory()
    sim.add_injector(CompositeInjector(w.injector() for w in wins))
    result = sim.run(main, on_deadlock="return")
    violations = [v for inv in invariants if (v := inv(result)) is not None]
    return ScenarioOutcome(
        windows=wins,
        hung=result.hung,
        aborted=result.aborted is not None,
        violations=violations,
        result=result if keep_results else None,
    )


def explore(
    factory: ScenarioFactory,
    invariants: Sequence[Invariant] = (),
    probes: Sequence[str] | None = None,
    ranks: Sequence[int] | None = None,
    max_windows: int | None = None,
    pairs: bool = False,
    keep_results: bool = False,
) -> ExplorationReport:
    """Exhaustively inject a failure at every reachable window.

    With ``pairs=True`` additionally injects every ordered pair of windows
    on *distinct* ranks (double-failure scenarios).  ``max_windows`` caps
    the enumeration for large scenarios (a cap is reported, never silent:
    the report's ``reference_windows`` shows what was considered).
    """
    windows = enumerate_windows(factory, probes=probes, ranks=ranks)
    if max_windows is not None:
        windows = windows[:max_windows]
    outcomes = [
        run_window(factory, w, invariants, keep_results=keep_results)
        for w in windows
    ]
    if pairs:
        for a, b in itertools.combinations(windows, 2):
            if a.rank == b.rank:
                continue
            outcomes.append(
                run_window(factory, (a, b), invariants, keep_results=keep_results)
            )
    return ExplorationReport(reference_windows=windows, outcomes=outcomes)
