"""Exhaustive failure-scenario exploration (paper §III-E).

The paper closes with the testing question: *how can a developer know when
they have addressed all of the problematic fault scenarios?*  Fault
injection alone samples; this module enumerates.  Because the simulator is
deterministic, the set of reachable failure windows of a program is
exactly the set of probe-point hits of its failure-free reference run —
so we can:

1. run the scenario once with no failures and collect every
   ``(rank, probe, hit)`` window from the trace;
2. re-run the scenario once per window, killing that rank at that window
   (optionally: once per *pair* of windows, for double failures);
3. classify every run with user-supplied invariants.

The result is a complete map of "what happens if a process dies *here*"
— the tool the paper wishes existed.

Step 2 is a batch of independent deterministic simulations, so
:func:`explore` fans it out through a
:class:`~repro.parallel.SweepRunner`: one picklable :class:`WindowJob`
per window (and per pair), merged back in enumeration order so the
:class:`ExplorationReport` is bit-identical to a serial sweep.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..parallel.jobs import (
    Invariant,
    InvariantSpec,
    ScenarioFactory,
    check_invariants,
)
from ..parallel.runner import SweepRunner, make_runner
from ..simmpi.runtime import SimulationResult
from ..simmpi.trace import TraceKind
from .injector import CompositeInjector, FaultInjector, KillAtProbe

__all__ = [
    "ExplorationReport",
    "ExplorationSummary",
    "Invariant",
    "ScenarioFactory",
    "ScenarioOutcome",
    "Window",
    "WindowJob",
    "enumerate_windows",
    "explore",
    "run_window",
]


@dataclass(frozen=True)
class Window:
    """One reachable failure window: rank dies at the hit-th probe."""

    rank: int
    probe: str
    hit: int

    def injector(self) -> FaultInjector:
        return KillAtProbe(rank=self.rank, probe=self.probe, hit=self.hit)

    def __str__(self) -> str:
        return f"r{self.rank}@{self.probe}#{self.hit}"


@dataclass
class ScenarioOutcome:
    """Classification of one fault-injected run."""

    windows: tuple[Window, ...]
    hung: bool
    aborted: bool
    violations: list[str] = field(default_factory=list)
    result: SimulationResult | None = None

    @property
    def ok(self) -> bool:
        """No invariant violation and no hang (aborts may be legitimate —
        invariants decide whether an abort is acceptable)."""
        return not self.hung and not self.violations


def _format_exploration(
    s: dict[str, int], failures: Sequence[ScenarioOutcome]
) -> str:
    """One report body shared by :class:`ExplorationReport` and
    :class:`ExplorationSummary`, so streamed and materialized sweeps
    render byte-identical reports."""
    lines = [
        f"explored {s['runs']} scenario(s) over {s['windows']} window(s): "
        f"{s['ok']} ok, {s['hangs']} hang(s), {s['violations']} violating"
    ]
    for o in failures:
        tag = "HANG" if o.hung else "VIOLATION"
        wins = "+".join(str(w) for w in o.windows)
        lines.append(f"  [{tag}] {wins}: {'; '.join(o.violations) or 'deadlock'}")
    return "\n".join(lines)


@dataclass
class ExplorationReport:
    """Aggregate of a full exploration sweep."""

    reference_windows: list[Window]
    outcomes: list[ScenarioOutcome]

    @property
    def failures(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def hangs(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.hung]

    def summary(self) -> dict[str, int]:
        return {
            "windows": len(self.reference_windows),
            "runs": len(self.outcomes),
            "ok": sum(o.ok for o in self.outcomes),
            "hangs": len(self.hangs),
            "violations": sum(bool(o.violations) for o in self.outcomes),
        }

    def format(self) -> str:
        return _format_exploration(self.summary(), self.failures)


@dataclass
class ExplorationSummary:
    """Streaming counterpart of :class:`ExplorationReport`: running
    counts plus the (rare) failing outcomes, never the full outcome
    list.

    Produced by ``explore(..., stream=True)`` — a ``pairs=True`` sweep
    whose job count grows quadratically in the window count holds
    O(failures) memory instead of O(runs).  ``summary()`` and
    ``format()`` are byte-identical to the materialized report's.
    """

    reference_windows: list[Window] = field(default_factory=list)
    runs: int = 0
    ok: int = 0
    hangs: int = 0
    violations: int = 0
    failures: list[ScenarioOutcome] = field(default_factory=list)

    def add(self, outcome: ScenarioOutcome) -> None:
        self.runs += 1
        self.ok += outcome.ok
        self.hangs += outcome.hung
        self.violations += bool(outcome.violations)
        if not outcome.ok:
            self.failures.append(outcome)

    def summary(self) -> dict[str, int]:
        return {
            "windows": len(self.reference_windows),
            "runs": self.runs,
            "ok": self.ok,
            "hangs": self.hangs,
            "violations": self.violations,
        }

    def format(self) -> str:
        return _format_exploration(self.summary(), self.failures)


def enumerate_windows(
    factory: ScenarioFactory,
    probes: Sequence[str] | None = None,
    ranks: Sequence[int] | None = None,
) -> list[Window]:
    """Run the failure-free reference and list every reachable window.

    ``probes``/``ranks`` filter the enumeration (e.g. only ``post_recv``
    windows, or only non-root ranks for the Fig. 11 contract).
    """
    sim, main = factory()
    result = sim.run(main, on_deadlock="return")
    windows: list[Window] = []
    for ev in result.trace.filter(kind=TraceKind.PROBE):
        name = ev.detail["name"]
        if probes is not None and name not in probes:
            continue
        if ranks is not None and ev.rank not in ranks:
            continue
        windows.append(Window(rank=ev.rank, probe=name, hit=ev.detail["hit"]))
    return windows


@dataclass
class WindowJob:
    """Picklable unit of exploration work: one fault-injected re-run.

    ``trace=False`` disables trace recording for the re-run — a large
    win for big sweeps (the kernel's disabled-trace path records
    nothing), but only safe when the invariants do not inspect
    ``result.trace`` (the standard ring battery does not) and
    ``keep_results`` is off or the caller does not need traces.
    """

    factory: ScenarioFactory
    windows: tuple[Window, ...]
    invariants: InvariantSpec = ()
    keep_results: bool = False
    trace: bool = True

    def __call__(self) -> ScenarioOutcome:
        return self._execute()[0]

    def _execute(self) -> tuple[ScenarioOutcome, SimulationResult]:
        sim, main = self.factory()
        sim.add_injector(
            CompositeInjector(w.injector() for w in self.windows)
        )
        if not self.trace:
            sim.runtime.trace.enabled = False
        result = sim.run(main, on_deadlock="return")
        violations = check_invariants(self.invariants, result)
        outcome = ScenarioOutcome(
            windows=self.windows,
            hung=result.hung,
            aborted=result.aborted is not None,
            violations=violations,
            result=result if self.keep_results else None,
        )
        return outcome, result

    # -- cache contract (see repro/parallel/jobs.py) -------------------

    @property
    def cacheable(self) -> bool:
        """A job that must return the full ``SimulationResult`` cannot be
        served from the cache (traces are never stored)."""
        return not self.keep_results

    def cache_payload(self) -> tuple[ScenarioOutcome, dict[str, Any]]:
        from ..analysis.digest import perf_dict, result_digest

        outcome, result = self._execute()
        return outcome, {
            "violations": list(outcome.violations),
            "hung": outcome.hung,
            "aborted": outcome.aborted,
            "digest": result_digest(result),
            "final_time": result.final_time,
            "perf": perf_dict(result),
        }

    def from_cached(self, payload: dict[str, Any]) -> ScenarioOutcome:
        return ScenarioOutcome(
            windows=self.windows,
            hung=bool(payload["hung"]),
            aborted=bool(payload["aborted"]),
            violations=list(payload["violations"]),
            result=None,
        )


def run_window(
    factory: ScenarioFactory,
    windows: Window | Iterable[Window],
    invariants: InvariantSpec = (),
    keep_results: bool = False,
    trace: bool = True,
) -> ScenarioOutcome:
    """Re-run the scenario with fail-stop injected at the given window(s)."""
    if isinstance(windows, Window):
        windows = (windows,)
    return WindowJob(
        factory=factory,
        windows=tuple(windows),
        invariants=invariants,
        keep_results=keep_results,
        trace=trace,
    )()


def explore(
    factory: ScenarioFactory,
    invariants: InvariantSpec = (),
    probes: Sequence[str] | None = None,
    ranks: Sequence[int] | None = None,
    max_windows: int | None = None,
    pairs: bool = False,
    keep_results: bool = False,
    workers: int | None = None,
    runner: SweepRunner | None = None,
    trace: bool = True,
    cache: Any = None,
    progress: Callable[[int, int], None] | None = None,
    telemetry: str | None = None,
    stream: bool = False,
    stream_window: int | None = None,
) -> "ExplorationReport | ExplorationSummary":
    """Exhaustively inject a failure at every reachable window.

    With ``pairs=True`` additionally injects every ordered pair of windows
    on *distinct* ranks (double-failure scenarios).  ``max_windows`` caps
    the enumeration for large scenarios (a cap is reported, never silent:
    the report's ``reference_windows`` shows what was considered).

    ``cache`` enables the content-addressed run cache (:mod:`repro.cache`):
    pass ``True`` for the default directory, a path, or a ``RunCache``.
    Cached outcomes are reused only when the job's full determinism
    surface matches; the report is byte-identical either way (only
    ``keep_results=False`` jobs participate — traces are never cached).

    ``progress`` is called as ``progress(done, total)`` — once up front
    with ``done=0`` and again as batches of re-runs complete — so long
    enumerations (``pairs=True`` grows quadratically) report liveness.

    ``telemetry`` names a JSONL file to stream per-job telemetry into
    (see :mod:`repro.obs.telemetry`): start/end, wall time, outcome
    class, worker id, retries, cache disposition.  The canonical form of
    the stream is identical between serial and pooled runs.

    ``trace=False`` turns off trace recording in the per-window re-runs
    (the reference run always traces — that is where the windows come
    from).  Classification is unchanged as long as the invariants do not
    read ``result.trace``; for trace-free invariant batteries this makes
    large sweeps substantially faster.

    The reference run executes in-process; the per-window re-runs go
    through a :class:`~repro.parallel.SweepRunner` — serial by default,
    a process pool with ``workers`` > 1 (``factory``/``invariants`` must
    then be picklable).  Outcomes keep enumeration order either way, so
    the report does not depend on the worker count.

    ``stream=True`` builds the jobs lazily (the quadratic ``pairs``
    enumeration included), pipes them through the runner's
    ``run_stream``, and folds outcomes into an
    :class:`ExplorationSummary` as they complete — memory stays
    O(windows + failures) regardless of the job count, and
    ``summary()``/``format()`` are byte-identical to the materialized
    report's.
    """
    windows = enumerate_windows(factory, probes=probes, ranks=ranks)
    if max_windows is not None:
        windows = windows[:max_windows]

    def iter_jobs():
        for w in windows:
            yield WindowJob(
                factory=factory,
                windows=(w,),
                invariants=invariants,
                keep_results=keep_results,
                trace=trace,
            )
        if pairs:
            for a, b in itertools.combinations(windows, 2):
                if a.rank == b.rank:
                    continue
                yield WindowJob(
                    factory=factory,
                    windows=(a, b),
                    invariants=invariants,
                    keep_results=keep_results,
                    trace=trace,
                )

    total = len(windows)
    if pairs:
        # Count cross-rank pairs without enumerating them: all pairs
        # minus the same-rank ones.
        per_rank: dict[int, int] = {}
        for w in windows:
            per_rank[w.rank] = per_rank.get(w.rank, 0) + 1
        n = len(windows)
        total += n * (n - 1) // 2 - sum(
            c * (c - 1) // 2 for c in per_rank.values()
        )
    if runner is None:
        runner = make_runner(workers)
    if cache is not None and cache is not False:
        from ..cache import attach_cache

        runner = attach_cache(runner, cache)
    writer = None
    if telemetry:
        from ..obs.telemetry import TelemetryWriter

        writer = TelemetryWriter(
            telemetry, kind="explore", total=total, workers=workers
        )
    if stream:
        summary = ExplorationSummary(reference_windows=windows)
        try:
            if writer is not None:
                from ..obs.telemetry import run_recorded_stream

                values = run_recorded_stream(
                    runner, iter_jobs(), writer, window=stream_window
                )
            else:
                values = runner.run_stream(iter_jobs(), window=stream_window)
            if progress is not None:
                progress(0, total)
            step = max(1, math.ceil(total / 16))
            for done, outcome in enumerate(values, start=1):
                summary.add(outcome)
                if progress is not None and (
                    done % step == 0 or done == total
                ):
                    progress(done, total)
        finally:
            if writer is not None:
                writer.close()
        return summary
    jobs = list(iter_jobs())
    try:
        outcomes = _run_with_progress(runner, jobs, progress, writer)
    finally:
        if writer is not None:
            writer.close()
    return ExplorationReport(
        reference_windows=windows,
        outcomes=outcomes,
    )


def _run_with_progress(
    runner: SweepRunner,
    jobs: list[WindowJob],
    progress: Callable[[int, int], None] | None,
    writer: Any = None,
) -> list[ScenarioOutcome]:
    """Run *jobs*, optionally splitting into at most ~16 batches so the
    *progress* callback fires while work is still in flight.  Results
    keep submission order either way, so batching never changes the
    report — only its liveness.  ``writer`` (a
    :class:`repro.obs.telemetry.TelemetryWriter`) records per-job
    telemetry with sweep-global indices, batched or not."""
    if progress is None and writer is None:
        return runner.run(jobs)
    total = len(jobs)
    if progress is not None:
        progress(0, total)
    step = total if progress is None else max(1, math.ceil(total / 16))
    outcomes: list[ScenarioOutcome] = []
    for i in range(0, max(total, 1), max(step, 1)):
        batch = jobs[i : i + step]
        if not batch:
            break
        if writer is not None:
            wrapped = runner.run(writer.wrap(batch, start=i))
            outcomes.extend(writer.record(
                wrapped, retries=getattr(runner, "job_retries", None)
            ))
        else:
            outcomes.extend(runner.run(batch))
        if progress is not None:
            progress(len(outcomes), total)
    if writer is not None:
        from ..obs.telemetry import runner_worker_stats

        writer.record_workers(runner_worker_stats(runner))
    return outcomes
