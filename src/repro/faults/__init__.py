"""``repro.faults`` — deterministic fault injection and scenario coverage.

Three layers, in increasing thoroughness (paper §III-E):

* :mod:`~repro.faults.injector` — kill triggers (virtual time, n-th MPI
  call, named probe window, seeded random) attachable to a
  :class:`~repro.simmpi.runtime.Simulation`.
* :mod:`~repro.faults.campaign` — randomized campaigns over many seeds.
* :mod:`~repro.faults.explorer` — exhaustive enumeration of every
  reachable failure window (single and paired), with invariant checking:
  the "have I covered *all* scenarios?" tool the paper calls for.
"""

from .campaign import CampaignReport, CampaignRun, CampaignSummary, run_campaign
from .explorer import (
    ExplorationReport,
    ExplorationSummary,
    ScenarioOutcome,
    Window,
    enumerate_windows,
    explore,
    run_window,
)
from .schedule import FailureSchedule, KillSpec
from .injector import (
    CompositeInjector,
    FaultInjector,
    KillAtCall,
    KillAtProbe,
    KillAtTime,
    KillRandomly,
)

__all__ = [
    "CampaignReport",
    "CampaignRun",
    "CampaignSummary",
    "CompositeInjector",
    "ExplorationReport",
    "ExplorationSummary",
    "FailureSchedule",
    "FaultInjector",
    "KillAtCall",
    "KillAtProbe",
    "KillAtTime",
    "KillRandomly",
    "KillSpec",
    "ScenarioOutcome",
    "Window",
    "enumerate_windows",
    "explore",
    "run_campaign",
    "run_window",
]
