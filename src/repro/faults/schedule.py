"""Serializable failure schedules.

A :class:`FailureSchedule` is a declarative, JSON-friendly description of
*who dies when* — the artifact a fault-injection campaign stores so any
interesting run replays exactly (determinism guarantee of the simulator).

Spec format (``to_dict``/``from_dict``)::

    {"kills": [
        {"trigger": "time",  "rank": 2, "time": 1.5e-6},
        {"trigger": "probe", "rank": 0, "probe": "post_recv", "hit": 2},
        {"trigger": "call",  "rank": 1, "call_no": 17, "op": "send"},
    ]}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .injector import (
    CompositeInjector,
    FaultInjector,
    KillAtCall,
    KillAtProbe,
    KillAtTime,
)


@dataclass(frozen=True)
class KillSpec:
    """One declarative kill."""

    trigger: str  # "time" | "probe" | "call"
    rank: int
    time: float | None = None
    probe: str | None = None
    hit: int = 1
    call_no: int | None = None
    op: str | None = None

    def __post_init__(self) -> None:
        if self.trigger == "time":
            if self.time is None:
                raise ValueError("time trigger needs 'time'")
        elif self.trigger == "probe":
            if not self.probe:
                raise ValueError("probe trigger needs 'probe'")
        elif self.trigger == "call":
            if self.call_no is None:
                raise ValueError("call trigger needs 'call_no'")
        else:
            raise ValueError(f"unknown trigger {self.trigger!r}")

    def injector(self) -> FaultInjector:
        """Materialize the corresponding injector."""
        if self.trigger == "time":
            assert self.time is not None
            return KillAtTime(rank=self.rank, time=self.time)
        if self.trigger == "probe":
            assert self.probe is not None
            return KillAtProbe(rank=self.rank, probe=self.probe, hit=self.hit)
        assert self.call_no is not None
        return KillAtCall(rank=self.rank, call_no=self.call_no, op=self.op)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"trigger": self.trigger, "rank": self.rank}
        if self.trigger == "time":
            out["time"] = self.time
        elif self.trigger == "probe":
            out["probe"] = self.probe
            out["hit"] = self.hit
        else:
            out["call_no"] = self.call_no
            if self.op is not None:
                out["op"] = self.op
        return out

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "KillSpec":
        return cls(
            trigger=d["trigger"],
            rank=d["rank"],
            time=d.get("time"),
            probe=d.get("probe"),
            hit=d.get("hit", 1),
            call_no=d.get("call_no"),
            op=d.get("op"),
        )


@dataclass
class FailureSchedule:
    """An ordered collection of :class:`KillSpec` entries."""

    kills: list[KillSpec] = field(default_factory=list)

    # -- construction helpers --------------------------------------------------

    def at_time(self, rank: int, time: float) -> "FailureSchedule":
        """Append a virtual-time kill (chainable)."""
        self.kills.append(KillSpec(trigger="time", rank=rank, time=time))
        return self

    def at_probe(self, rank: int, probe: str, hit: int = 1) -> "FailureSchedule":
        """Append a probe-window kill (chainable)."""
        self.kills.append(
            KillSpec(trigger="probe", rank=rank, probe=probe, hit=hit)
        )
        return self

    def at_call(self, rank: int, call_no: int, op: str | None = None) -> "FailureSchedule":
        """Append an MPI-call-count kill (chainable)."""
        self.kills.append(
            KillSpec(trigger="call", rank=rank, call_no=call_no, op=op)
        )
        return self

    # -- use --------------------------------------------------------------------

    def injector(self) -> FaultInjector:
        """Materialize the whole schedule as one composite injector."""
        return CompositeInjector(spec.injector() for spec in self.kills)

    def victims(self) -> set[int]:
        """The ranks this schedule targets."""
        return {spec.rank for spec in self.kills}

    def __len__(self) -> int:
        return len(self.kills)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"kills": [spec.to_dict() for spec in self.kills]}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FailureSchedule":
        return cls(kills=[KillSpec.from_dict(k) for k in d.get("kills", [])])

    @classmethod
    def from_specs(cls, specs: Iterable[KillSpec]) -> "FailureSchedule":
        return cls(kills=list(specs))
