"""Randomized fault-injection campaigns.

Complements the exhaustive :mod:`repro.faults.explorer`: where the
explorer enumerates probe-point windows, a campaign samples *timing-level*
failure placements (virtual-time kills and seeded per-call coin flips)
across many seeds — the style of testing the paper's §III-E describes as
"intensive use of fault injection tools".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..simmpi.runtime import Simulation, SimulationResult
from .explorer import Invariant, ScenarioFactory
from .injector import CompositeInjector, KillAtTime


@dataclass
class CampaignRun:
    """One sampled run: where failures were placed and what happened."""

    seed: int
    kills: tuple[tuple[int, float], ...]  # (rank, time) pairs
    hung: bool
    aborted: bool
    violations: list[str] = field(default_factory=list)
    result: SimulationResult | None = None

    @property
    def ok(self) -> bool:
        return not self.hung and not self.violations


@dataclass
class CampaignReport:
    """Aggregate over all sampled runs."""

    runs: list[CampaignRun]

    @property
    def failures(self) -> list[CampaignRun]:
        return [r for r in self.runs if not r.ok]

    def summary(self) -> dict[str, int]:
        return {
            "runs": len(self.runs),
            "ok": sum(r.ok for r in self.runs),
            "hangs": sum(r.hung for r in self.runs),
            "violations": sum(bool(r.violations) for r in self.runs),
            "aborts": sum(r.aborted for r in self.runs),
        }

    def format(self) -> str:
        s = self.summary()
        lines = [
            f"campaign: {s['runs']} runs, {s['ok']} ok, {s['hangs']} hangs, "
            f"{s['violations']} violating, {s['aborts']} aborts"
        ]
        for r in self.failures:
            tag = "HANG" if r.hung else "VIOLATION"
            kills = ", ".join(f"r{k}@{t:.3g}" for k, t in r.kills)
            lines.append(
                f"  [{tag}] seed={r.seed} kills=[{kills}]: "
                f"{'; '.join(r.violations) or 'deadlock'}"
            )
        return "\n".join(lines)


def run_campaign(
    factory: ScenarioFactory,
    *,
    seeds: Sequence[int],
    horizon: float,
    kills_per_run: int = 1,
    eligible_ranks: Sequence[int] | None = None,
    invariants: Sequence[Invariant] = (),
    keep_results: bool = False,
) -> CampaignReport:
    """Sample ``len(seeds)`` runs, each killing ``kills_per_run`` distinct
    ranks at uniform-random virtual times in ``[0, horizon)``.

    ``eligible_ranks`` restricts who may die (default: every rank of the
    scenario except rank 0 — matching the paper's root-survives
    assumption; pass an explicit list to include the root).
    """
    runs: list[CampaignRun] = []
    for seed in seeds:
        rng = random.Random(seed)
        sim, main = factory()
        ranks = (
            list(eligible_ranks)
            if eligible_ranks is not None
            else list(range(1, sim.nprocs))
        )
        if kills_per_run > len(ranks):
            raise ValueError("kills_per_run exceeds eligible ranks")
        victims = rng.sample(ranks, kills_per_run)
        kills = tuple(
            sorted((v, rng.uniform(0.0, horizon)) for v in victims)
        )
        sim.add_injector(
            CompositeInjector(KillAtTime(rank=v, time=t) for v, t in kills)
        )
        result = sim.run(main, on_deadlock="return")
        violations = [v for inv in invariants if (v := inv(result)) is not None]
        runs.append(
            CampaignRun(
                seed=seed,
                kills=kills,
                hung=result.hung,
                aborted=result.aborted is not None,
                violations=violations,
                result=result if keep_results else None,
            )
        )
    return CampaignReport(runs=runs)
