"""Randomized fault-injection campaigns.

Complements the exhaustive :mod:`repro.faults.explorer`: where the
explorer enumerates probe-point windows, a campaign samples *timing-level*
failure placements (virtual-time kills and seeded per-call coin flips)
across many seeds — the style of testing the paper's §III-E describes as
"intensive use of fault injection tools".

Every sampled run is an independent deterministic simulation, so a
campaign is embarrassingly parallel: :func:`run_campaign` builds one
picklable :class:`CampaignJob` per seed and hands the batch to a
:class:`~repro.parallel.SweepRunner`.  Results are merged in seed order
regardless of completion order, making the :class:`CampaignReport`
bit-identical between serial and pooled execution (see
``docs/parallel.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..parallel.jobs import (
    InvariantSpec,
    ScenarioFactory,
    check_invariants,
)
from ..parallel.runner import SweepRunner, make_runner
from ..simmpi.runtime import SimulationResult
from .injector import CompositeInjector, KillAtTime


@dataclass
class CampaignRun:
    """One sampled run: where failures were placed and what happened."""

    seed: int
    kills: tuple[tuple[int, float], ...]  # (rank, time) pairs
    hung: bool
    aborted: bool
    violations: list[str] = field(default_factory=list)
    result: SimulationResult | None = None

    @property
    def ok(self) -> bool:
        return not self.hung and not self.violations


def _format_campaign(s: dict[str, int], failures: Sequence[CampaignRun]) -> str:
    """One report body shared by :class:`CampaignReport` and
    :class:`CampaignSummary`, so streamed and materialized campaigns
    render byte-identical reports."""
    lines = [
        f"campaign: {s['runs']} runs, {s['ok']} ok, {s['hangs']} hangs, "
        f"{s['violations']} violating, {s['aborts']} aborts"
    ]
    for r in failures:
        tag = "HANG" if r.hung else "VIOLATION"
        kills = ", ".join(f"r{k}@{t:.3g}" for k, t in r.kills)
        lines.append(
            f"  [{tag}] seed={r.seed} kills=[{kills}]: "
            f"{'; '.join(r.violations) or 'deadlock'}"
        )
    return "\n".join(lines)


@dataclass
class CampaignReport:
    """Aggregate over all sampled runs."""

    runs: list[CampaignRun]

    @property
    def failures(self) -> list[CampaignRun]:
        return [r for r in self.runs if not r.ok]

    def summary(self) -> dict[str, int]:
        return {
            "runs": len(self.runs),
            "ok": sum(r.ok for r in self.runs),
            "hangs": sum(r.hung for r in self.runs),
            "violations": sum(bool(r.violations) for r in self.runs),
            "aborts": sum(r.aborted for r in self.runs),
        }

    def format(self) -> str:
        return _format_campaign(self.summary(), self.failures)


@dataclass
class CampaignSummary:
    """Streaming counterpart of :class:`CampaignReport`: running counts
    plus the (rare) failing runs, never the full run list.

    Produced by ``run_campaign(..., stream=True)`` — a 10^6-seed
    campaign holds O(failures) memory instead of O(runs).
    ``summary()`` and ``format()`` are byte-identical to the
    materialized report's.
    """

    runs: int = 0
    ok: int = 0
    hangs: int = 0
    violations: int = 0
    aborts: int = 0
    failures: list[CampaignRun] = field(default_factory=list)

    def add(self, run: CampaignRun) -> None:
        self.runs += 1
        self.ok += run.ok
        self.hangs += run.hung
        self.violations += bool(run.violations)
        self.aborts += run.aborted
        if not run.ok:
            self.failures.append(run)

    def summary(self) -> dict[str, int]:
        return {
            "runs": self.runs,
            "ok": self.ok,
            "hangs": self.hangs,
            "violations": self.violations,
            "aborts": self.aborts,
        }

    def format(self) -> str:
        return _format_campaign(self.summary(), self.failures)


@dataclass
class CampaignJob:
    """Picklable unit of campaign work: one seed's sampled run.

    The failure placement is derived from ``seed`` alone (the scenario's
    rank count is read from a freshly built simulation), so the job can
    execute in any process and still land exactly where the serial loop
    would have placed it.
    """

    factory: ScenarioFactory
    seed: int
    horizon: float
    kills_per_run: int = 1
    eligible_ranks: tuple[int, ...] | None = None
    invariants: InvariantSpec = ()
    keep_results: bool = False

    def __call__(self) -> CampaignRun:
        return self._execute()[0]

    def _execute(self) -> tuple[CampaignRun, SimulationResult]:
        rng = random.Random(self.seed)
        sim, main = self.factory()
        ranks = (
            list(self.eligible_ranks)
            if self.eligible_ranks is not None
            else list(range(1, sim.nprocs))
        )
        if self.kills_per_run > len(ranks):
            raise ValueError("kills_per_run exceeds eligible ranks")
        victims = rng.sample(ranks, self.kills_per_run)
        kills = tuple(
            sorted((v, rng.uniform(0.0, self.horizon)) for v in victims)
        )
        sim.add_injector(
            CompositeInjector(KillAtTime(rank=v, time=t) for v, t in kills)
        )
        result = sim.run(main, on_deadlock="return")
        violations = check_invariants(self.invariants, result)
        run = CampaignRun(
            seed=self.seed,
            kills=kills,
            hung=result.hung,
            aborted=result.aborted is not None,
            violations=violations,
            result=result if self.keep_results else None,
        )
        return run, result

    # -- cache contract (see repro/parallel/jobs.py) -------------------

    @property
    def cacheable(self) -> bool:
        """A job that must return the full ``SimulationResult`` cannot be
        served from the cache (traces are never stored)."""
        return not self.keep_results

    def cache_payload(self) -> tuple[CampaignRun, dict[str, Any]]:
        from ..analysis.digest import perf_dict, result_digest

        run, result = self._execute()
        return run, {
            # JSON turns the (rank, time) pairs into 2-lists; floats
            # round-trip exactly (repr is shortest-round-trip).
            "kills": [[rank, time] for rank, time in run.kills],
            "violations": list(run.violations),
            "hung": run.hung,
            "aborted": run.aborted,
            "digest": result_digest(result),
            "final_time": result.final_time,
            "perf": perf_dict(result),
        }

    def from_cached(self, payload: dict[str, Any]) -> CampaignRun:
        return CampaignRun(
            seed=self.seed,
            kills=tuple((rank, time) for rank, time in payload["kills"]),
            hung=bool(payload["hung"]),
            aborted=bool(payload["aborted"]),
            violations=list(payload["violations"]),
            result=None,
        )


def run_campaign(
    factory: ScenarioFactory,
    *,
    seeds: Sequence[int],
    horizon: float,
    kills_per_run: int = 1,
    eligible_ranks: Sequence[int] | None = None,
    invariants: InvariantSpec = (),
    keep_results: bool = False,
    workers: int | None = None,
    runner: SweepRunner | None = None,
    cache: Any = None,
    telemetry: str | None = None,
    stream: bool = False,
    stream_window: int | None = None,
) -> "CampaignReport | CampaignSummary":
    """Sample ``len(seeds)`` runs, each killing ``kills_per_run`` distinct
    ranks at uniform-random virtual times in ``[0, horizon)``.

    ``eligible_ranks`` restricts who may die (default: every rank of the
    scenario except rank 0 — matching the paper's root-survives
    assumption; pass an explicit list to include the root).

    ``workers`` > 1 fans the runs out across a process pool (``factory``
    and ``invariants`` must then be picklable — see
    :mod:`repro.parallel.scenarios`); pass ``runner`` to control
    chunking, timeouts, and retries directly.  The report is identical
    either way.

    ``cache`` enables the content-addressed run cache (:mod:`repro.cache`):
    ``True`` for the default directory, a path, or a ``RunCache``.  A
    warm campaign replays classified outcomes without executing the
    simulations; the report is byte-identical to a cold or uncached one.

    ``telemetry`` names a JSONL file that receives one line per run —
    wall time, outcome class, worker id, retries, cache disposition
    (see :mod:`repro.obs.telemetry`); its canonical form is identical
    between serial and pooled campaigns.

    ``stream=True`` pipes the jobs through the runner's ``run_stream``
    (bounded in-flight windows, lazily built jobs) and folds runs into
    a :class:`CampaignSummary` as they complete — memory stays
    O(failures) regardless of ``len(seeds)``, and ``summary()`` /
    ``format()`` are byte-identical to the materialized report's.
    ``stream_window`` overrides the runner's in-flight window size
    (``--stream-window`` on the CLI); any window, including 1, yields
    the same submission-order results.
    """
    eligible = tuple(eligible_ranks) if eligible_ranks is not None else None

    def make_job(seed: int) -> CampaignJob:
        return CampaignJob(
            factory=factory,
            seed=seed,
            horizon=horizon,
            kills_per_run=kills_per_run,
            eligible_ranks=eligible,
            invariants=invariants,
            keep_results=keep_results,
        )

    if runner is None:
        runner = make_runner(workers)
    if cache is not None and cache is not False:
        from ..cache import attach_cache

        runner = attach_cache(runner, cache)
    if stream:
        jobs_iter = (make_job(seed) for seed in seeds)
        summary = CampaignSummary()
        if telemetry:
            from ..obs.telemetry import TelemetryWriter, run_recorded_stream

            writer = TelemetryWriter(
                telemetry, kind="campaign", total=len(seeds), workers=workers
            )
            try:
                for run in run_recorded_stream(
                    runner, jobs_iter, writer, window=stream_window
                ):
                    summary.add(run)
            finally:
                writer.close()
        else:
            for run in runner.run_stream(jobs_iter, window=stream_window):
                summary.add(run)
        return summary
    jobs = [make_job(seed) for seed in seeds]
    if telemetry:
        from ..obs.telemetry import TelemetryWriter, run_recorded

        writer = TelemetryWriter(
            telemetry, kind="campaign", total=len(jobs), workers=workers
        )
        try:
            return CampaignReport(runs=run_recorded(runner, jobs, writer))
        finally:
            writer.close()
    return CampaignReport(runs=runner.run(jobs))
