"""Active rank replication: mask failures instead of recovering from them.

Modeled on FTHP-MPI (arXiv:2504.09989): every logical rank runs as two
physical replicas executing the same deterministic program.  The
:class:`ReplicatedRing` shim intercepts ring sends and receives:

* a logical **send** posts one physical copy to *each* live replica of
  the destination (honest per-copy cost: the sender's clock advances per
  copy, and every copy counts in the message totals);
* a logical **receive** de-duplicates by per-source sequence number —
  both replicas of a sender emit the identical ``(src, seq)`` stream, so
  the receiver consumes exactly the first arrival of each sequence
  number and drops the rest.

The de-duplication *is* the failover.  There is no detection window on
the critical path: when one replica dies, the copy from its twin is
already in flight (or already buffered), so the receiver never observes
a gap — zero client-visible recovery latency, the property the protocol
matrix pins.  The failure detector is consulted only off the critical
path, to stop sending to dead replicas and to classify the one
unsurvivable pathology: both replicas of a logical rank gone
(:data:`~repro.protocols.base.ABORT_REPLICAS_EXHAUSTED`).

Physical layout: ``2n`` ranks for a logical ring of ``n``; world rank
``w`` runs replica ``w // n`` of logical rank ``w % n``.  The shim rides
a dedicated reserved context id so replica traffic can never collide
with communicator traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.messages import TAG_DONE, TAG_NORMAL, RingMsg
from ..core.state import RingStats
from ..simmpi.communicator import CONTEXTS_PER_COMM
from ..simmpi.errors import ErrorClass, RankFailStopError
from ..simmpi.p2p import wait
from ..simmpi.process import SimProcess
from ..simmpi.request import Request, RequestKind, Status
from .base import ABORT_REPLICAS_EXHAUSTED, ProtocolRingConfig, protocol_report


class ReplicasExhaustedError(RuntimeError):
    """Both replicas of a logical peer have failed — unmaskable."""

    def __init__(self, logical: int) -> None:
        super().__init__(f"both replicas of logical rank {logical} failed")
        self.logical = logical


@dataclass(slots=True)
class _RepMsg:
    """Wire format of one replicated logical message."""

    src: int  # logical source rank
    seq: int  # per-(src -> this dst) sequence number
    tag: int
    payload: Any


class ReplicatedRing:
    """Replica-aware send/recv shim for one physical rank.

    All replicas of a logical rank run the same deterministic program, so
    their outgoing ``(dst, seq)`` streams are identical — which is what
    makes receiver-side sequence de-duplication sound.
    """

    def __init__(self, mpi: SimProcess, logical_n: int) -> None:
        assert mpi.size == 2 * logical_n, "replication needs 2n physical ranks"
        self.proc = mpi
        self.n = logical_n
        self.logical = mpi.rank % logical_n
        self.replica = mpi.rank // logical_n
        runtime = mpi.runtime
        cid = runtime.cid_for(0, -1, color="replication")
        self.ctx = cid * CONTEXTS_PER_COMM
        runtime.register_am_handler(mpi.rank, self.ctx, self._on_message)
        runtime.add_failure_listener(mpi.rank, self._on_failure)
        self._out_seq: dict[int, int] = {}
        self._expected: dict[int, int] = {}
        self._buffer: dict[tuple[int, int], _RepMsg] = {}
        self._pending: tuple[int, Request] | None = None
        self.copies_sent = 0
        self.dups_discarded = 0

    # -- helpers -----------------------------------------------------------

    def _replicas(self, logical: int) -> tuple[int, int]:
        return (logical, logical + self.n)

    def _live_replicas(self, logical: int) -> list[int]:
        dead = self.proc.runtime.known_by[self.proc.rank]
        return [w for w in self._replicas(logical) if w not in dead]

    # -- logical operations ------------------------------------------------

    def send(self, payload: Any, dst_logical: int, tag: int) -> None:
        """Send one logical message: a physical copy per live replica."""
        seq = self._out_seq.get(dst_logical, 0)
        self._out_seq[dst_logical] = seq + 1
        for phys in self._live_replicas(dst_logical):
            self.proc.runtime.post_send(
                self.proc,
                dst_world=phys,
                tag=tag,
                context=self.ctx,
                payload=_RepMsg(src=self.logical, seq=seq, tag=tag, payload=payload),
            )
            self.copies_sent += 1

    def recv(self, src_logical: int) -> tuple[Any, int]:
        """Receive the next logical message from *src_logical*.

        Raises :class:`ReplicasExhaustedError` if (and only if) both
        replicas of the source are known-failed before the message shows
        up — a message buffered pre-failure still masks the failure.
        """
        while True:
            exp = self._expected.get(src_logical, 0)
            wire = self._buffer.pop((src_logical, exp), None)
            if wire is not None:
                self._expected[src_logical] = exp + 1
                return wire.payload, wire.tag
            if not self._live_replicas(src_logical):
                raise ReplicasExhaustedError(src_logical)
            req = Request(
                RequestKind.GENERIC, self.proc, comm=None,
                peer=src_logical, label="replicated_recv",
            )
            self._pending = (src_logical, req)
            try:
                wait(req)
            except RankFailStopError:
                raise ReplicasExhaustedError(src_logical) from None
            finally:
                self._pending = None

    # -- event-context inputs ----------------------------------------------

    def _on_message(self, msg: Any, time: float) -> None:
        wire: _RepMsg = msg.payload
        exp = self._expected.get(wire.src, 0)
        if wire.seq < exp or (wire.src, wire.seq) in self._buffer:
            self.dups_discarded += 1
            return
        self._buffer[(wire.src, wire.seq)] = wire
        if self._pending is not None:
            src, req = self._pending
            if src == wire.src and wire.seq == exp and not req.done:
                req.complete(time, status=Status(source=wire.src, tag=wire.tag))

    def _on_failure(self, observer: int, failed: int, time: float) -> None:
        if self._pending is None:
            return
        src, req = self._pending
        if req.done or self._live_replicas(src):
            return
        req.complete(
            time,
            error=ErrorClass.ERR_RANK_FAIL_STOP,
            status=Status(source=src, error=ErrorClass.ERR_RANK_FAIL_STOP),
        )


def make_replication_mains(
    cfg: ProtocolRingConfig, logical_n: int
) -> Callable[[SimProcess], dict[str, Any]]:
    """Build the (SPMD) per-rank main for the replicated ring.

    Run it on ``2 * logical_n`` physical ranks; each derives its logical
    role from its world rank.
    """

    def main(mpi: SimProcess) -> dict[str, Any]:
        shim = ReplicatedRing(mpi, logical_n)
        me = shim.logical
        left = (me - 1) % logical_n
        right = (me + 1) % logical_n
        stats = RingStats()
        cur_marker = 0
        try:
            if me == 0:
                for it in range(cfg.max_iter):
                    if cfg.work_per_iter:
                        mpi.compute(cfg.work_per_iter)
                    mpi.probe_point("root_post_send")
                    shim.send(RingMsg(1, it), right, TAG_NORMAL)
                    mpi.probe_point("root_post_recv")
                    back, _tag = shim.recv(left)
                    stats.root_completions.append((back.marker, back.value))
                    stats.iterations_completed += 1
                    cur_marker = it + 1
                shim.send(RingMsg(None, cfg.max_iter), right, TAG_DONE)
                shim.recv(left)
            else:
                while True:
                    mpi.probe_point("post_recv")
                    msg, tag = shim.recv(left)
                    if tag == TAG_DONE:
                        shim.send(msg, right, TAG_DONE)
                        break
                    # Copy before mutating: both dst replicas were handed
                    # the same payload object by reference.
                    msg = msg.copy()
                    if cfg.work_per_iter:
                        mpi.compute(cfg.work_per_iter)
                    msg.value += 1
                    cur_marker = max(cur_marker, msg.marker + 1)
                    mpi.probe_point("post_send")
                    shim.send(msg, right, TAG_NORMAL)
                    stats.forwards += 1
        except ReplicasExhaustedError:
            mpi.abort(ABORT_REPLICAS_EXHAUSTED)
        stats.duplicates_discarded = shim.dups_discarded
        return protocol_report(
            rank=mpi.rank,
            role="root" if me == 0 else "worker",
            left=left,
            right=right,
            root=0,
            cur_marker=cur_marker,
            stats=stats,
            protocol="replication",
            logical_rank=me,
            replica=shim.replica,
            copies_sent=shim.copies_sent,
        )

    return main
