"""ULFM-style shrink/repair ring driver.

The recovery strategy (contrast with the paper's RTS ring, which keeps
the communicator and *recognizes* failures):

1. Run the ring fault-unaware on the current communicator, in *epochs*.
2. Any member that hits an error — ``MPI_ERR_RANK_FAIL_STOP`` from a
   dead neighbor, or ``MPI_ERR_REVOKED`` from someone else's step 3 —
   **revokes** the communicator, kicking every other member out of its
   blocking call (the kernel completes their pending receives with
   ``ERR_REVOKED``).
3. All live members converge on a ``comm_agree`` of an "epoch clean?"
   flag.  Unanimously clean means the ring completed: exit.  Otherwise
   everyone calls ``comm_shrink`` — agree on the dead set, rebuild a
   survivor communicator with a fresh context id — and re-enters the
   epoch loop on the new communicator.
4. The root re-injects the first uncompleted iteration on the new
   communicator.  The fresh context id quarantines every stale in-flight
   message of the old epoch, so no duplicate detection is needed — the
   structural opposite of partial restart, which keeps the context and
   must de-duplicate.

Termination rides the same machinery: the root circulates a DONE token,
and the per-epoch agree doubles as the exit barrier, so a failure during
termination simply triggers one more (trivially short) epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.messages import TAG_DONE, TAG_NORMAL, RingMsg
from ..core.state import RingStats
from ..ft.ulfm import comm_agree, comm_shrink
from ..simmpi.communicator import Comm
from ..simmpi.constants import ANY_TAG
from ..simmpi.errors import CommRevokedError, ErrorHandler, MPIError, RankFailStopError
from ..simmpi.process import SimProcess
from .base import ABORT_RING_ALONE, ProtocolRingConfig, protocol_report


@dataclass
class _RingState:
    """Progress that must survive a failed epoch.

    Mutated *in place* as the epoch advances: an epoch that dies halfway
    through must not roll back completed work, or the retry would replay
    (and at the root, re-log) iterations that already finished — the
    duplicate-completion pathology the protocol exists to avoid.
    """

    completed: int = 0
    cur_marker: int = 0


def _epoch(
    mpi: SimProcess,
    comm: Comm,
    cfg: ProtocolRingConfig,
    stats: RingStats,
    st: _RingState,
) -> None:
    """One failure-free attempt at the remaining ring work.

    Returns on clean completion (root: all iterations done and the DONE
    token came back; worker: the DONE token passed through).  Any MPI
    error propagates to the caller, with *st* reflecting true progress.
    """
    me, size = comm.rank, comm.size
    right = (me + 1) % size
    left = (me - 1) % size
    if me == 0:
        while st.completed < cfg.max_iter:
            if cfg.work_per_iter:
                mpi.compute(cfg.work_per_iter)
            mpi.probe_point("root_post_send")
            comm.send(RingMsg(1, st.completed), right, TAG_NORMAL)
            mpi.probe_point("root_post_recv")
            back, _status = comm.recv(source=left, tag=TAG_NORMAL)
            stats.root_completions.append((back.marker, back.value))
            stats.iterations_completed += 1
            st.completed += 1
            st.cur_marker = st.completed
        comm.send(RingMsg(None, st.completed), right, TAG_DONE)
        comm.recv(source=left, tag=TAG_DONE)
        return
    while True:
        mpi.probe_point("post_recv")
        msg, status = comm.recv(source=left, tag=ANY_TAG)
        if status.tag == TAG_DONE:
            comm.send(msg, right, TAG_DONE)
            st.completed = max(st.completed, msg.marker)
            st.cur_marker = max(st.cur_marker, msg.marker)
            return
        if cfg.work_per_iter:
            mpi.compute(cfg.work_per_iter)
        msg.value += 1
        st.cur_marker = max(st.cur_marker, msg.marker + 1)
        mpi.probe_point("post_send")
        comm.send(msg, right, TAG_NORMAL)
        stats.forwards += 1


def make_shrink_repair_main(
    cfg: ProtocolRingConfig,
) -> Callable[[SimProcess], dict[str, Any]]:
    """Build the per-rank main for the shrink/repair protocol."""

    def main(mpi: SimProcess) -> dict[str, Any]:
        comm = mpi.comm_world
        comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
        stats = RingStats()
        st = _RingState()
        epochs = 0
        recovery_time = 0.0
        while True:
            clean = 1
            err_at = None
            try:
                _epoch(mpi, comm, cfg, stats, st)
            except (RankFailStopError, CommRevokedError):
                err_at = mpi.now
                clean = 0
                try:
                    comm.revoke()
                except MPIError:  # pragma: no cover - revoke never raises
                    pass
            if comm_agree(comm, clean, op="min"):
                break
            t0 = err_at if err_at is not None else mpi.now
            comm = comm_shrink(comm)
            comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
            epochs += 1
            recovery_time += mpi.now - t0
            if comm.size < 2:
                mpi.abort(ABORT_RING_ALONE)
        me, size = comm.rank, comm.size
        return protocol_report(
            rank=me,
            role="root" if me == 0 else "worker",
            left=(me - 1) % size,
            right=(me + 1) % size,
            root=0,
            cur_marker=st.cur_marker,
            stats=stats,
            protocol="shrink_repair",
            epochs=epochs,
            recoveries=epochs,
            recovery_time=recovery_time,
            final_size=size,
        )

    return main
