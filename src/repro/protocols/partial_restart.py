"""Partial restart: repair the failed slot in place, recover from neighbors.

Modeled on the SNIPPETS ``partial-restart.c`` ring: instead of running
*through* the failure (RTS) or running *around* it (shrink), the job
keeps its shape — a failed rank's slot is re-filled by a spare process
and the recruit recovers its position in the computation from state its
neighbors already hold.  The communicator keeps its context id; only the
group binding of the repaired slot changes (``Comm.replace_rank``), so
in-flight messages of live members stay valid.

Roles (over ``n + spares`` physical ranks):

* **Root (slot 0, world rank 0)** — ring root *and* repair coordinator.
  On detecting a member failure it assigns the next live spare to the
  dead slot, ships the recruit a post-repair group snapshot
  (``TAG_RECRUIT`` on the world communicator), and notifies every other
  live member (``TAG_REPAIR``).  Per-channel FIFO from the root gives
  all members the same repair order — the protocol's agreement needs no
  consensus round, at the price of a liveness assumption on the root
  (root death is the classified abort
  :data:`~repro.protocols.base.ABORT_ROOT_LOST`, exactly as in the
  snippet, which never restarts rank 0).
* **Workers** — run the ring with an ANY_SOURCE watchdog receive
  (``TAG_WATCHDOG``, completed in error by the failure sweep) as their
  failure wake, apply repair notices, and perform the two neighbor
  duties: the *left* neighbor of a repaired slot sends the recruit its
  recovery state (``TAG_RECOVER``: the marker of its last forward) and
  resends its last message; a member whose *left* was repaired re-posts
  its data receive against the new occupant.
* **Spares** — park on a world-comm receive until recruited (or told to
  retire once the ring completes).

Duplicate suppression is the paper's marker rule: every member discards
tokens with ``marker < cur_marker``, so a resend that races a survived
original is harmless.  Spare exhaustion is the classified abort
:data:`~repro.protocols.base.ABORT_SPARES_EXHAUSTED`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.messages import TAG_DONE, TAG_NORMAL, TAG_RESEND, RingMsg
from ..core.state import RingStats
from ..simmpi.communicator import Comm
from ..simmpi.constants import ANY_SOURCE, ANY_TAG
from ..simmpi.errors import ErrorHandler, MPIError, RankFailStopError
from ..simmpi.p2p import waitany
from ..simmpi.process import SimProcess
from ..simmpi.request import Request
from .base import (
    ABORT_ROOT_LOST,
    ABORT_SPARES_EXHAUSTED,
    TAG_RECOVER,
    TAG_RECRUIT,
    TAG_REPAIR,
    TAG_RETIRE,
    TAG_WATCHDOG,
    ProtocolRingConfig,
    protocol_report,
)


def _ring_cid(mpi: SimProcess) -> int:
    """The ring communicator's context id — deterministic, so actives at
    start and recruits mid-run construct the identical handle."""
    return mpi.runtime.cid_for(0, 0, color="partial_restart")


def _known_dead(mpi: SimProcess) -> set[int]:
    return mpi.runtime.known_by[mpi.rank]


def _slot_alive(mpi: SimProcess, comm: Comm, slot: int) -> bool:
    return comm.group[slot] not in _known_dead(mpi)


def _drop_failed(*reqs: "Request | None") -> "list[Request | None]":
    """Replace requests consumed by an error completion with ``None``."""
    return [None if (r is not None and r.failed()) else r for r in reqs]


# ---------------------------------------------------------------------------
# Worker / recruit
# ---------------------------------------------------------------------------


def _worker_loop(
    mpi: SimProcess,
    cfg: ProtocolRingConfig,
    comm: Comm,
    *,
    recruited: bool,
) -> dict[str, Any]:
    world = mpi.comm_world
    slot = comm.rank
    left = (slot - 1) % comm.size
    right = (slot + 1) % comm.size
    stats = RingStats()
    cur_marker = 0
    #: Last message forwarded right, with the tag a resend would use.
    last_sent: tuple[RingMsg, int] | None = None
    done_forwarded = False
    recovered_marker: int | None = None
    repairs_seen = 0

    data: Request | None = None
    watchdog: Request | None = None
    notice: Request = world.irecv(source=0, tag=ANY_TAG)

    def resend_right() -> None:
        """Neighbor duty: hand the new right occupant its recovery state."""
        nonlocal last_sent
        if last_sent is None:
            return
        msg, rtag = last_sent
        try:
            comm.send(msg.marker, right, TAG_RECOVER)
            comm.send(msg.copy(), right, rtag)
            stats.resends += 1
        except RankFailStopError:
            pass  # recruit already died; the next repair notice retries

    while True:
        if data is None and _slot_alive(mpi, comm, left):
            mpi.probe_point("post_recv")
            data = comm.irecv(source=left, tag=ANY_TAG)
        if watchdog is None and not comm.known_failed_comm_ranks():
            watchdog = comm.irecv(source=ANY_SOURCE, tag=TAG_WATCHDOG)
        reqs = [r for r in (data, notice, watchdog) if r is not None]
        try:
            i, status = waitany(reqs)
            req = reqs[i]
        except (RankFailStopError, MPIError):
            if 0 in _known_dead(mpi):
                mpi.abort(ABORT_ROOT_LOST)
            data, watchdog = _drop_failed(data, watchdog)
            continue
        if req is notice:
            payload = notice.data
            tag = status.tag
            notice = world.irecv(source=0, tag=ANY_TAG)
            if tag == TAG_RETIRE:
                break
            assert tag == TAG_REPAIR
            bad_slot, w_new = payload
            comm.replace_rank(bad_slot, w_new)
            repairs_seen += 1
            if bad_slot == left:
                stats.left_retargets += 1
                if data is not None and not data.done:
                    data.cancel()
                if data is None or not data.done:
                    data = None  # re-post against the new occupant
            if bad_slot == right:
                stats.right_retargets += 1
                resend_right()
            continue
        if req is watchdog:  # pragma: no cover - watchdog only errors
            watchdog = None
            continue
        # -- ring data -----------------------------------------------------
        payload, tag = data.data, status.tag
        data = None
        if tag == TAG_RECOVER:
            # Neighbor-held state: the marker our left last forwarded.
            if recovered_marker is None:
                recovered_marker = payload
            cur_marker = max(cur_marker, payload)
            continue
        if tag == TAG_DONE:
            if done_forwarded:
                stats.duplicates_discarded += 1
                continue
            done_forwarded = True
            cur_marker = max(cur_marker, payload.marker)
            last_sent = (payload, TAG_DONE)
            try:
                comm.send(payload, right, TAG_DONE)
            except RankFailStopError:
                pass  # resent when the dead right neighbor is repaired
            continue
        if payload.marker < cur_marker:
            stats.duplicates_discarded += 1
            continue
        msg = payload.copy()
        if cfg.work_per_iter:
            mpi.compute(cfg.work_per_iter)
        msg.value += 1
        cur_marker = msg.marker + 1
        mpi.probe_point("post_send")
        last_sent = (msg, TAG_RESEND)
        try:
            comm.send(msg.copy(), right, TAG_NORMAL)
        except RankFailStopError:
            pass  # resent when the dead right neighbor is repaired
        stats.forwards += 1

    for r in (data, watchdog, notice):
        if r is not None and not r.done:
            r.cancel()
    return protocol_report(
        rank=mpi.rank,
        role="recruit" if recruited else "worker",
        left=left,
        right=right,
        root=0,
        cur_marker=cur_marker,
        stats=stats,
        protocol="partial_restart",
        slot=slot,
        recruited=recruited,
        recovered_marker=recovered_marker,
        repairs_seen=repairs_seen,
    )


# ---------------------------------------------------------------------------
# Root (ring root + repair coordinator)
# ---------------------------------------------------------------------------


def _root_loop(
    mpi: SimProcess,
    cfg: ProtocolRingConfig,
    comm: Comm,
    spare_pool: tuple[int, ...],
) -> dict[str, Any]:
    world = mpi.comm_world
    left = comm.size - 1
    right = 1
    stats = RingStats()
    completed = 0
    cur_marker = 0
    last_sent: tuple[RingMsg, int] | None = None
    next_spare = 0
    repairs = 0
    recovery_time = 0.0
    need_inject = True
    done_back = False

    data: Request | None = None
    watchdog: Request | None = None

    def repair() -> None:
        """Assign spares to every known-dead slot and notify the ring."""
        nonlocal next_spare, repairs, data
        while True:
            bad_slots = sorted(comm.known_failed_comm_ranks())
            if not bad_slots:
                return
            for bad_slot in bad_slots:
                w_new = None
                while next_spare < len(spare_pool):
                    cand = spare_pool[next_spare]
                    next_spare += 1
                    if cand not in _known_dead(mpi):
                        w_new = cand
                        break
                if w_new is None:
                    mpi.abort(ABORT_SPARES_EXHAUSTED)
                comm.replace_rank(bad_slot, w_new)
                repairs += 1
                world.send((bad_slot, tuple(comm.group)), w_new, TAG_RECRUIT)
                for cr, wr in enumerate(comm.group):
                    if cr in (0, bad_slot) or wr in _known_dead(mpi):
                        continue
                    world.send((bad_slot, w_new), wr, TAG_REPAIR)
                if bad_slot == right and last_sent is not None:
                    stats.right_retargets += 1
                    msg, rtag = last_sent
                    try:
                        comm.send(msg.marker, right, TAG_RECOVER)
                        comm.send(msg.copy(), right, rtag)
                        stats.resends += 1
                    except RankFailStopError:
                        pass  # re-detected; the outer while retries
                if bad_slot == left:
                    stats.left_retargets += 1
                    if data is not None and not data.done:
                        data.cancel()
                    if data is None or not data.done:
                        data = None

    while not done_back:
        if comm.known_failed_comm_ranks():
            t0 = mpi.now
            repair()
            recovery_time += mpi.now - t0
        if need_inject:
            if completed < cfg.max_iter:
                if cfg.work_per_iter:
                    mpi.compute(cfg.work_per_iter)
                mpi.probe_point("root_post_send")
                msg = RingMsg(1, completed)
                last_sent = (msg, TAG_RESEND)
                try:
                    comm.send(msg.copy(), right, TAG_NORMAL)
                except RankFailStopError:
                    pass  # repaired and resent on the next pass
            else:
                done = RingMsg(None, cfg.max_iter)
                last_sent = (done, TAG_DONE)
                try:
                    comm.send(done, right, TAG_DONE)
                except RankFailStopError:
                    pass
            need_inject = False
        if data is None and _slot_alive(mpi, comm, left):
            mpi.probe_point("root_post_recv")
            data = comm.irecv(source=left, tag=ANY_TAG)
        if watchdog is None and not comm.known_failed_comm_ranks():
            watchdog = comm.irecv(source=ANY_SOURCE, tag=TAG_WATCHDOG)
        reqs = [r for r in (data, watchdog) if r is not None]
        if not reqs:
            continue  # a repair is pending; loop to perform it
        try:
            i, status = waitany(reqs)
            req = reqs[i]
        except (RankFailStopError, MPIError):
            data, watchdog = _drop_failed(data, watchdog)
            continue
        if req is watchdog:  # pragma: no cover - watchdog only errors
            watchdog = None
            continue
        payload, tag = data.data, status.tag
        data = None
        if tag == TAG_DONE:
            done_back = True
            cur_marker = max(cur_marker, payload.marker)
            break
        if payload.marker != completed:
            stats.duplicates_discarded += 1
            continue
        stats.root_completions.append((payload.marker, payload.value))
        stats.iterations_completed += 1
        completed += 1
        cur_marker = completed
        need_inject = True

    for cr, wr in enumerate(comm.group):
        if cr == 0 or wr in _known_dead(mpi):
            continue
        try:
            world.send(0, wr, TAG_RETIRE)
        except RankFailStopError:
            pass
    for cand in spare_pool[next_spare:]:
        if cand in _known_dead(mpi):
            continue
        try:
            world.send(0, cand, TAG_RETIRE)
        except RankFailStopError:
            pass
    for r in (data, watchdog):
        if r is not None and not r.done:
            r.cancel()
    return protocol_report(
        rank=mpi.rank,
        role="root",
        left=left,
        right=right,
        root=0,
        cur_marker=cur_marker,
        stats=stats,
        protocol="partial_restart",
        slot=0,
        recruited=False,
        repairs=repairs,
        spares_used=next_spare,
        recovery_time=recovery_time,
    )


# ---------------------------------------------------------------------------
# Spare
# ---------------------------------------------------------------------------


def _spare_main(
    mpi: SimProcess, cfg: ProtocolRingConfig
) -> dict[str, Any]:
    world = mpi.comm_world
    try:
        payload, status = world.recv(source=0, tag=ANY_TAG)
    except RankFailStopError:
        mpi.abort(ABORT_ROOT_LOST)
    if status.tag == TAG_RETIRE:
        return protocol_report(
            rank=mpi.rank,
            role="spare",
            left=-1,
            right=-1,
            root=0,
            cur_marker=0,
            stats=RingStats(),
            protocol="partial_restart",
            slot=-1,
            recruited=False,
            recovered_marker=None,
            repairs_seen=0,
        )
    assert status.tag == TAG_RECRUIT
    slot, group = payload
    comm = Comm(mpi, _ring_cid(mpi), tuple(group), "ring.pr")
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    assert comm.rank == slot
    return _worker_loop(mpi, cfg, comm, recruited=True)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def make_partial_restart_mains(
    cfg: ProtocolRingConfig, logical_n: int, spares: int
) -> Callable[[SimProcess], dict[str, Any]]:
    """Build the (SPMD) per-rank main: ``logical_n`` actives + spares.

    Run it on ``logical_n + spares`` physical ranks; ranks below
    ``logical_n`` start as ring members, the rest park as spares.
    """

    def main(mpi: SimProcess) -> dict[str, Any]:
        mpi.comm_world.set_errhandler(ErrorHandler.ERRORS_RETURN)
        if mpi.rank >= logical_n:
            return _spare_main(mpi, cfg)
        cid = _ring_cid(mpi)
        comm = Comm(mpi, cid, tuple(range(logical_n)), "ring.pr")
        comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
        spare_pool = tuple(range(logical_n, logical_n + spares))
        if mpi.rank == 0:
            return _root_loop(mpi, cfg, comm, spare_pool)
        return _worker_loop(mpi, cfg, comm, recruited=False)

    return main
