"""Cross-protocol differential comparison on identical fault schedules.

The point of having four protocol families behind one knob is to compare
them *fairly*: same logical workload (an ``nprocs``-rank token ring for
``iters`` iterations), same fault schedules (derived from the campaign
seed over logical ranks ``1..nprocs-1``, so every protocol faces the
identical ``(rank, time)`` kill list), different recovery strategies.

For each protocol the study runs one failure-free **baseline** plus one
faulted run per seed, then reports per protocol:

* outcome classes — ok / hang / violation / classified abort;
* **recovery latency** — the virtual-time slowdown of each surviving
  faulted run over the protocol's own baseline (p50/p90/p99/max,
  nearest-rank percentiles).  This charges each protocol its true
  end-to-end cost: re-execution epochs for shrink/repair, respawn +
  state transfer for partial restart, ~nothing for replication;
* **message overhead** — baseline message count (replication pays its
  2x-and-change up front, failures or not) and the mean faulted-run
  count;
* **hang window** — the latest virtual time at which a hung run was
  still making no progress (0 when nothing hangs, which is the
  acceptance bar).

Every run is an independent deterministic simulation, so the whole study
is embarrassingly parallel and cache-friendly: :class:`ProtocolCompareJob`
is picklable, carries the cache contract, and derives everything from
plain-data fields — serial, pooled, and cache-warm executions produce
byte-identical reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Sequence

from ..faults.injector import CompositeInjector, KillAtTime
from ..parallel.jobs import check_invariants
from ..parallel.runner import SweepRunner, make_runner
from ..parallel.scenarios import RingScenario, StandardRingInvariants
from ..simmpi.runtime import SimulationResult
from .base import PROTOCOLS


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (matches the telemetry summarizer)."""
    if not values:
        return 0.0
    s = sorted(values)
    k = max(1, math.ceil(q / 100.0 * len(s)))
    return s[k - 1]


@dataclass(frozen=True)
class ProtocolRunRecord:
    """One run of one protocol: schedule faced and outcome observed."""

    protocol: str
    seed: int
    baseline: bool
    kills: tuple[tuple[int, float], ...]
    outcome: str  # "ok" | "hang" | "violation" | "abort"
    abort_code: int | None
    violations: tuple[str, ...]
    final_time: float
    messages_sent: int


@dataclass(frozen=True)
class ProtocolCompareJob:
    """Picklable unit of comparison work: one protocol x one schedule.

    The kill schedule is derived from ``seed`` over the *logical* rank
    range ``1..nprocs-1`` — independent of the protocol, so jobs that
    share a seed face the identical schedule (replication's physical
    rank ``v`` is replica 0 of logical rank ``v``; partial restart's
    spares are never scheduled victims).  ``baseline=True`` runs the
    failure-free reference instead.

    All determinants are plain-data fields, so the job canonicalizes
    into a run-cache key (:mod:`repro.cache.keys`) in which the protocol
    participates — a cached RTS outcome can never serve a shrink/repair
    run of the same shape.
    """

    protocol: str
    nprocs: int
    iters: int
    seed: int = 0
    baseline: bool = False
    horizon: float = 1e-4
    kills_per_run: int = 1
    spares: int = 2
    sim_seed: int = 0
    detection_latency: float = 0.0
    work_per_iter: float = 0.0

    def _kills(self) -> tuple[tuple[int, float], ...]:
        if self.baseline:
            return ()
        rng = random.Random(self.seed)
        victims = rng.sample(range(1, self.nprocs), self.kills_per_run)
        return tuple(
            sorted((v, rng.uniform(0.0, self.horizon)) for v in victims)
        )

    def _execute(self) -> tuple[ProtocolRunRecord, SimulationResult]:
        from ..analysis.digest import perf_dict

        scenario = RingScenario(
            nprocs=self.nprocs,
            iters=self.iters,
            seed=self.sim_seed,
            detection_latency=self.detection_latency,
            work_per_iter=self.work_per_iter,
            protocol=self.protocol,
            spares=self.spares,
        )
        sim, main = scenario()
        kills = self._kills()
        if kills:
            sim.add_injector(
                CompositeInjector(KillAtTime(rank=v, time=t) for v, t in kills)
            )
        result = sim.run(main, on_deadlock="return")
        violations = check_invariants(
            StandardRingInvariants(self.iters, self.nprocs), result
        )
        if result.hung:
            outcome = "hang"
        elif violations:
            outcome = "violation"
        elif result.aborted is not None:
            outcome = "abort"
        else:
            outcome = "ok"
        record = ProtocolRunRecord(
            protocol=self.protocol,
            seed=self.seed,
            baseline=self.baseline,
            kills=kills,
            outcome=outcome,
            abort_code=(
                result.aborted.code if result.aborted is not None else None
            ),
            violations=tuple(violations),
            final_time=result.final_time,
            messages_sent=int(perf_dict(result).get("messages_sent", 0)),
        )
        return record, result

    def __call__(self) -> ProtocolRunRecord:
        return self._execute()[0]

    # -- cache contract (see repro/parallel/jobs.py) -------------------

    def cache_payload(self) -> tuple[ProtocolRunRecord, dict[str, Any]]:
        from ..analysis.digest import result_digest

        record, result = self._execute()
        return record, {
            "kills": [[rank, time] for rank, time in record.kills],
            "outcome": record.outcome,
            "abort_code": record.abort_code,
            "violations": list(record.violations),
            "final_time": record.final_time,
            "messages_sent": record.messages_sent,
            "digest": result_digest(result),
        }

    def from_cached(self, payload: dict[str, Any]) -> ProtocolRunRecord:
        return ProtocolRunRecord(
            protocol=self.protocol,
            seed=self.seed,
            baseline=self.baseline,
            kills=tuple((rank, time) for rank, time in payload["kills"]),
            outcome=str(payload["outcome"]),
            abort_code=payload["abort_code"],
            violations=tuple(payload["violations"]),
            final_time=float(payload["final_time"]),
            messages_sent=int(payload["messages_sent"]),
        )


@dataclass
class CompareProtocolsReport:
    """The cross-protocol study: all records plus deterministic rollups."""

    records: list[ProtocolRunRecord]
    protocols: tuple[str, ...]
    horizon: float
    kills_per_run: int

    def _for(self, protocol: str) -> list[ProtocolRunRecord]:
        return [r for r in self.records if r.protocol == protocol]

    def summary(self) -> dict[str, dict[str, Any]]:
        """Per-protocol rollup, keyed in :data:`PROTOCOLS` order."""
        out: dict[str, dict[str, Any]] = {}
        for protocol in self.protocols:
            recs = self._for(protocol)
            base = next((r for r in recs if r.baseline), None)
            faulted = [r for r in recs if not r.baseline]
            ok = [r for r in faulted if r.outcome == "ok"]
            lat = [
                max(0.0, r.final_time - base.final_time)
                for r in ok
                if base is not None
            ]
            hangs = [r for r in faulted if r.outcome == "hang"]
            out[protocol] = {
                "runs": len(faulted),
                "ok": len(ok),
                "hangs": len(hangs),
                "violations": sum(
                    r.outcome == "violation" for r in faulted
                ),
                "aborts": sum(r.outcome == "abort" for r in faulted),
                "abort_codes": sorted(
                    {
                        r.abort_code
                        for r in faulted
                        if r.abort_code is not None
                    }
                ),
                "baseline_time": base.final_time if base else 0.0,
                "baseline_msgs": base.messages_sent if base else 0,
                "recovery_latency": {
                    "p50": _percentile(lat, 50),
                    "p90": _percentile(lat, 90),
                    "p99": _percentile(lat, 99),
                    "max": max(lat) if lat else 0.0,
                },
                "mean_msgs": (
                    sum(r.messages_sent for r in ok) / len(ok) if ok else 0.0
                ),
                "hang_window": max(
                    (r.final_time for r in hangs), default=0.0
                ),
            }
        return out

    def format(self) -> str:
        """Human-readable comparison table (byte-deterministic)."""
        s = self.summary()
        nruns = s[self.protocols[0]]["runs"] if self.protocols else 0
        lines = [
            f"protocol comparison: {len(self.protocols)} protocols x "
            f"{nruns} schedules ({self.kills_per_run} kill(s) in "
            f"[0, {self.horizon:.3g}))",
            f"{'protocol':<16} {'ok':>4} {'hang':>4} {'viol':>4} "
            f"{'abort':>5}  {'base_t':>9} {'rec_p50':>9} {'rec_p90':>9} "
            f"{'rec_max':>9}  {'base_msg':>8} {'mean_msg':>8} {'hangwin':>8}",
        ]
        for protocol in self.protocols:
            d = s[protocol]
            rec = d["recovery_latency"]
            lines.append(
                f"{protocol:<16} {d['ok']:>4} {d['hangs']:>4} "
                f"{d['violations']:>4} {d['aborts']:>5}  "
                f"{d['baseline_time']:>9.3g} {rec['p50']:>9.3g} "
                f"{rec['p90']:>9.3g} {rec['max']:>9.3g}  "
                f"{d['baseline_msgs']:>8} {d['mean_msgs']:>8.1f} "
                f"{d['hang_window']:>8.3g}"
            )
            if d["abort_codes"]:
                codes = ", ".join(str(c) for c in d["abort_codes"])
                lines.append(f"{'':<16}   abort codes: {codes}")
        return "\n".join(lines)


def run_compare_protocols(
    *,
    nprocs: int = 6,
    iters: int = 6,
    seeds: Sequence[int],
    horizon: float,
    kills_per_run: int = 1,
    protocols: Sequence[str] = PROTOCOLS,
    spares: int = 2,
    sim_seed: int = 0,
    detection_latency: float = 0.0,
    work_per_iter: float = 0.0,
    workers: int | None = None,
    runner: SweepRunner | None = None,
    cache: Any = None,
) -> CompareProtocolsReport:
    """Run the cross-protocol study and return its report.

    For each protocol in *protocols*: one failure-free baseline, then one
    faulted run per seed in *seeds* — every protocol facing the identical
    seed-derived kill schedules.  ``workers``/``runner``/``cache`` follow
    the :func:`repro.faults.run_campaign` conventions; the report is
    byte-identical across serial, pooled, and cache-warm executions
    (records are folded in job order, never completion order).
    """
    jobs: list[ProtocolCompareJob] = []
    for protocol in protocols:
        for baseline, seed in [(True, 0)] + [(False, s) for s in seeds]:
            jobs.append(
                ProtocolCompareJob(
                    protocol=protocol,
                    nprocs=nprocs,
                    iters=iters,
                    seed=seed,
                    baseline=baseline,
                    horizon=horizon,
                    kills_per_run=kills_per_run,
                    spares=spares,
                    sim_seed=sim_seed,
                    detection_latency=detection_latency,
                    work_per_iter=work_per_iter,
                )
            )
    if runner is None:
        runner = make_runner(workers)
    if cache is not None and cache is not False:
        from ..cache import attach_cache

        runner = attach_cache(runner, cache)
    records = runner.run(jobs)
    return CompareProtocolsReport(
        records=list(records),
        protocols=tuple(protocols),
        horizon=horizon,
        kills_per_run=kills_per_run,
    )
