"""``repro.protocols`` — recovery-protocol families beyond RTS.

The paper's run-through stabilization (RTS) ring is one point in the
FT-MPI design space.  This package implements the neighboring points as
first-class, scenario-pluggable strategies over the same simulated MPI,
so they can be compared head-to-head on identical fault schedules
(ROADMAP item 4):

``"rts"``
    The paper's model, unchanged: validate / recognized-failure
    semantics, implemented in :mod:`repro.core` (this package only
    routes to it).

``"shrink_repair"`` (:mod:`repro.protocols.shrink_repair`)
    ULFM-style: on failure, **revoke** the communicator, **agree** on
    the outcome, **shrink** to the survivors, and restart the broken
    iteration on the new communicator (Rocco & Palermo, 2209.01849).

``"replication"`` (:mod:`repro.protocols.replication`)
    Active rank replication (FTHP-MPI, 2504.09989): every logical rank
    runs twice; each send goes to both replicas of the destination and
    receivers de-duplicate by sequence number, so the loss of one
    replica is masked with **zero client-visible recovery gap**.

``"partial_restart"`` (:mod:`repro.protocols.partial_restart`)
    Checkpoint-free partial restart modeled on the SNIPPETS
    ``partial-restart.c`` ring: spare ranks are recruited into the
    failed slot of the *same* communicator (in-place reparation) and
    recover their counter from the neighbors that hold it.

Selection is by the ``protocol=`` knob on
:class:`repro.parallel.RingScenario`; the cross-protocol study lives in
:mod:`repro.protocols.compare` (``repro compare-protocols``).
"""

from .base import (
    PROTOCOLS,
    ABORT_REPLICAS_EXHAUSTED,
    ABORT_RING_ALONE,
    ABORT_ROOT_LOST,
    ABORT_SPARES_EXHAUSTED,
    ProtocolRingConfig,
    ring_mains,
)
from .compare import (
    CompareProtocolsReport,
    ProtocolCompareJob,
    run_compare_protocols,
)
from .partial_restart import make_partial_restart_mains
from .replication import ReplicatedRing, make_replication_mains
from .shrink_repair import make_shrink_repair_main

__all__ = [
    "PROTOCOLS",
    "ABORT_REPLICAS_EXHAUSTED",
    "ABORT_RING_ALONE",
    "ABORT_ROOT_LOST",
    "ABORT_SPARES_EXHAUSTED",
    "CompareProtocolsReport",
    "ProtocolCompareJob",
    "ProtocolRingConfig",
    "ReplicatedRing",
    "make_partial_restart_mains",
    "make_replication_mains",
    "make_shrink_repair_main",
    "ring_mains",
    "run_compare_protocols",
]
