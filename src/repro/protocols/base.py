"""Shared plumbing for the protocol drivers.

Every protocol runs the *same logical workload* — the paper's token ring
(root injects value 1 with an iteration marker, each rank increments and
forwards, the root logs the completion) — and reports through the same
per-rank dictionary shape as :func:`repro.core.ring.ring_report`, so the
existing invariant battery (:func:`repro.analysis.standard_ring_invariants`)
classifies every protocol's runs without translation.  What differs is
purely the *recovery strategy*, which is the point of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.state import RingStats

#: The supported protocol families, in comparison-report order.
PROTOCOLS: tuple[str, ...] = (
    "rts",
    "shrink_repair",
    "replication",
    "partial_restart",
)

#: Classified abort codes (distinct per pathology, asserted by tests).
ABORT_RING_ALONE = 61  # shrink left a single-rank ring
ABORT_SPARES_EXHAUSTED = 62  # partial restart ran out of spare ranks
ABORT_ROOT_LOST = 63  # partial restart does not restart the root slot
ABORT_REPLICAS_EXHAUSTED = 64  # both replicas of a logical rank died

#: Extra ring-communicator tags used by the protocol drivers (the core
#: ring owns 1-3; see :mod:`repro.core.messages`).
TAG_WATCHDOG = 9  # never carries data: ANY_SOURCE failure watchdog
TAG_RECOVER = 10  # neighbor-held state transfer to a recruited spare
TAG_RECRUIT = 11  # world-comm control: spare, join this slot
TAG_RETIRE = 12  # world-comm control: spare, job is done, exit
TAG_REPAIR = 13  # world-comm control: slot s is now world rank w


@dataclass(frozen=True)
class ProtocolRingConfig:
    """The logical ring workload, protocol-independent."""

    max_iter: int
    work_per_iter: float = 0.0


def protocol_report(
    *,
    rank: int,
    role: str,
    left: int,
    right: int,
    root: int,
    cur_marker: int,
    stats: RingStats,
    protocol: str,
    **extra: Any,
) -> dict[str, Any]:
    """Per-rank report in the :func:`repro.core.ring.ring_report` shape,
    plus the protocol name and protocol-specific fields."""
    out: dict[str, Any] = {
        "rank": rank,
        "role": role,
        "left": left,
        "right": right,
        "root": root,
        "cur_marker": cur_marker,
        "protocol": protocol,
    }
    out.update(stats.as_dict())
    out.update(extra)
    return out


def ring_mains(
    protocol: str,
    cfg: ProtocolRingConfig,
    nprocs: int,
    *,
    spares: int = 2,
) -> tuple[int, "Callable[..., Any] | Sequence[Callable[..., Any]]"]:
    """Build the ``(physical nprocs, main-or-mains)`` pair for a protocol.

    ``nprocs`` is the *logical* ring size; replication doubles it and
    partial restart appends ``spares`` parked ranks.  The returned value
    plugs straight into :meth:`repro.simmpi.Simulation.run`.
    """
    if protocol == "shrink_repair":
        from .shrink_repair import make_shrink_repair_main

        return nprocs, make_shrink_repair_main(cfg)
    if protocol == "replication":
        from .replication import make_replication_mains

        return 2 * nprocs, make_replication_mains(cfg, nprocs)
    if protocol == "partial_restart":
        from .partial_restart import make_partial_restart_mains

        return nprocs + spares, make_partial_restart_mains(cfg, nprocs, spares)
    raise ValueError(
        f"unknown protocol {protocol!r} (known: {PROTOCOLS})"
    )
