"""Fault-tolerant ring allreduce built on the paper's ring machinery.

A second domain workload exercising the public ring API with a non-trivial
payload: every rank contributes a numpy vector; two ring passes compute
the elementwise sum of the *surviving* contributions at every rank.

Phase 1 (accumulate): the root circulates a buffer carrying
``(partial_sum, contributor_set)``; each rank adds its vector exactly once
(the contributor set makes the addition idempotent under resends — the
vector-payload analogue of the paper's duplicate-message lesson: a marker
alone dedups *messages*, the contributor set dedups *side effects*).

Phase 2 (distribute): the root circulates the final sum; each rank keeps a
copy as it forwards.

Both phases run on :func:`~repro.core.send.ft_send_right` /
:func:`~repro.core.recv.ft_recv_left` with markers, so any non-root
failure is survived exactly like the ring example; the termination
rendezvous is the Fig. 13 consensus validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.messages import RingMsg
from ..core.neighbors import get_current_root, to_left_of, to_right_of
from ..core.recv import ft_recv_left
from ..core.ring import ring_report
from ..core.send import ft_send_right
from ..core.state import RingState
from ..core.termination import ft_termination_validate_all
from ..simmpi.errors import ErrorHandler
from ..simmpi.process import SimProcess


@dataclass(frozen=True)
class AllreduceConfig:
    """Parameters of one fault-tolerant ring allreduce."""

    vector_len: int = 8
    #: Number of independent allreduce rounds to run back-to-back.
    rounds: int = 1
    work_per_round: float = 0.0


def _contribution(rank: int, length: int) -> np.ndarray:
    """Deterministic per-rank vector: ``rank + 1`` in every slot."""
    return np.full(length, float(rank + 1))


def allreduce_main(mpi: SimProcess, cfg: AllreduceConfig) -> dict[str, Any]:
    """Per-rank main: ``cfg.rounds`` fault-tolerant vector allreduces.

    The report includes the final reduced vector and the contributor set
    of each round, so tests can verify the sum matches exactly the ranks
    that were alive to contribute.
    """
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    me = comm.rank
    st = RingState(
        comm,
        left=to_left_of(comm, me),
        right=to_right_of(comm, me),
        root=get_current_root(comm),
        dedup=True,
    )
    mine = _contribution(me, cfg.vector_len)
    results: list[dict[str, Any]] = []

    # Each round consumes two ring iterations (markers): accumulate and
    # distribute.  Marker numbering stays global across rounds so the
    # standard dedup rule applies unchanged.
    for rnd in range(cfg.rounds):
        if cfg.work_per_round:
            mpi.compute(cfg.work_per_round)
        acc_marker = 2 * rnd
        dist_marker = 2 * rnd + 1
        if st.is_root():
            # Phase 1: accumulate.
            st.cur_marker = acc_marker
            payload = {"sum": mine.copy(), "contributors": {me}}
            ft_send_right(st, RingMsg(value=payload, marker=acc_marker))
            mpi.probe_point("root_post_send")
            msg = ft_recv_left(st)
            total = msg.value["sum"]
            contributors = set(msg.value["contributors"])
            # Phase 2: distribute.
            st.cur_marker = dist_marker
            out = {"sum": total, "contributors": contributors}
            ft_send_right(st, RingMsg(value=out, marker=dist_marker))
            mpi.probe_point("root_post_send")
            msg = ft_recv_left(st)
            st.stats.root_completions.append((dist_marker, len(contributors)))
        else:
            # Phase 1: add my vector exactly once (contributor-set guard).
            msg = ft_recv_left(st)
            mpi.probe_point("post_recv")
            if me not in msg.value["contributors"]:
                msg.value["sum"] = msg.value["sum"] + mine
                msg.value["contributors"] = set(msg.value["contributors"]) | {me}
            ft_send_right(st, msg)
            mpi.probe_point("post_send")
            st.cur_marker += 1
            # Phase 2: keep a copy of the final sum as it passes.
            msg = ft_recv_left(st)
            mpi.probe_point("post_recv")
            total = msg.value["sum"]
            contributors = set(msg.value["contributors"])
            ft_send_right(st, msg)
            mpi.probe_point("post_send")
            st.cur_marker += 1
        results.append(
            {
                "round": rnd,
                "sum": np.asarray(total).tolist(),
                "contributors": sorted(contributors),
            }
        )
        st.stats.iterations_completed += 1

    ft_termination_validate_all(st)
    report = ring_report(st, "root" if st.is_root() else "nonroot")
    report["allreduce"] = results
    return report


def make_allreduce_main(cfg: AllreduceConfig):
    """Bind an :class:`AllreduceConfig` into a ``main(mpi)`` callable."""
    return lambda mpi: allreduce_main(mpi, cfg)


def expected_sum(contributors: list[int], length: int) -> list[float]:
    """The reference result for a given contributor set."""
    total = np.zeros(length)
    for r in contributors:
        total += _contribution(r, length)
    return total.tolist()
