"""Fault-tolerant 1-D heat diffusion (paper §IV's "other domains").

The paper's related work cites heat-transfer ABFT (Ltaief et al.) and
*natural fault tolerance* (Engelmann & Geist): algorithms that survive
process loss with an approximately-correct answer.  This app shows the
ring paper's communication-level lessons transplanted to a stencil code:

* the domain is block-partitioned across ranks; each step is a Jacobi
  update of the explicit heat equation needing one halo cell per side;
* halo exchange resolves neighbors through the validate API like the
  ring's Fig. 4 (but without wraparound: the outermost alive ranks apply
  the fixed boundary condition);
* when a neighbor dies mid-exchange, the survivor recognizes the failure
  (``comm_validate_clear``), re-resolves its neighbor, and redoes the
  exchange — run-through stabilization.  The gap left by dead ranks
  becomes an insulated (zero-flux) edge, degrading the answer gracefully
  instead of killing the job (natural fault tolerance);
* every halo message carries its **step number** — the stencil analogue
  of the ring's iteration marker (§III-B).  This matters beyond mere
  dedup: after a repair, the two ranks flanking a dead gap may be *one
  step apart* (one of them completed the torn step, the other had to redo
  it).  A future-step halo is therefore *stashed* for the step it belongs
  to and the current step treats that side as insulated; a past-step halo
  is discarded.  Without this, the neighbors deadlock waiting for each
  other's past — a bug the repository's own property-based fault
  campaign found in an earlier version of this very file;
* a rank that finishes all its steps sends a **done marker** to its
  current neighbors so a slower neighbor never blocks on a peer that has
  exited (it treats that side as insulated from then on).

The returned report carries each survivor's subdomain so tests can check
diffusion/conservation properties against a failure-free reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..ft.rank_info import RankState
from ..ft.validate import comm_validate_clear, rank_state
from ..simmpi.communicator import Comm
from ..simmpi.errors import ErrorHandler, RankFailStopError
from ..simmpi.p2p import wait
from ..simmpi.process import SimProcess

#: Single tag for all halo traffic; messages carry ``(step, value)``.
TAG_HALO = 100


@dataclass(frozen=True)
class HeatConfig:
    """Parameters of one heat run."""

    cells_per_rank: int = 16
    steps: int = 20
    #: Diffusion number ``alpha * dt / dx^2`` — stable for <= 0.5.
    nu: float = 0.25
    #: Fixed (Dirichlet) temperature at the global domain edges.
    boundary: float = 0.0
    #: Virtual compute time per step (lands time-based failures in
    #: interesting windows).
    work_per_step: float = 1e-6


def _alive_left(comm: Comm, me: int) -> int | None:
    """Nearest alive rank to the left, no wraparound (``None`` = edge)."""
    n = me - 1
    while n >= 0:
        if rank_state(comm, n) is RankState.OK:
            return n
        n -= 1
    return None


def _alive_right(comm: Comm, me: int) -> int | None:
    """Nearest alive rank to the right, no wraparound (``None`` = edge)."""
    n = me + 1
    while n < comm.size:
        if rank_state(comm, n) is RankState.OK:
            return n
        n += 1
    return None


def _recognize_failures(comm: Comm) -> None:
    """Locally recognize every known failure (keeps p2p usable)."""
    unrecognized = comm.known_failed_comm_ranks() - comm.recognized
    if unrecognized:
        comm_validate_clear(comm, sorted(unrecognized))


@dataclass
class _SideState:
    """Per-side exchange bookkeeping that outlives individual steps."""

    #: Future halos received early, keyed by step.
    stash: dict[int, float] = field(default_factory=dict)
    #: The neighbor announced it finished all its steps.
    neighbor_done: bool = False


class _HaloExchanger:
    """Step-marked, repair-tolerant halo exchange for one rank."""

    def __init__(self, mpi: SimProcess, comm: Comm, steps: int) -> None:
        self.mpi = mpi
        self.comm = comm
        self.steps = steps
        self.sides = {"L": _SideState(), "R": _SideState()}
        self.retries = 0

    def _neighbor(self, side: str) -> int | None:
        me = self.comm.rank
        return _alive_left(self.comm, me) if side == "L" else _alive_right(
            self.comm, me
        )

    def _send_halo(self, side: str, step: int, value: float) -> None:
        peer = self._neighbor(side)
        if peer is None:
            return
        try:
            self.comm.send((step, value), peer, TAG_HALO)
        except RankFailStopError:
            pass  # the peer died between resolution and send; next
            # recognize/resolve pass handles it

    def _recv_side(
        self, side: str, step: int, sent_to: int | None
    ) -> float | None:
        """Obtain this side's halo for *step*, or ``None`` => insulated."""
        state = self.sides[side]
        if step in state.stash:
            return state.stash.pop(step)
        if state.stash and max(state.stash) > step:
            # The stash proves the neighbor already completed this step
            # (halos arrive in order): it will never send a step-`step`
            # halo, so waiting would deadlock.  Insulate and catch up.
            return None
        if state.neighbor_done:
            return None
        peer = self._neighbor(side)
        if peer is None:
            return None
        if peer != sent_to:
            # The neighbor changed between our send and this receive (its
            # predecessor died while we were busy on the other side): the
            # new neighbor never got our halo — send it before waiting.
            self._send_halo(side, step, self._edge_value(side))
        while True:
            try:
                req = self.comm.irecv(source=peer, tag=TAG_HALO)
                wait(req)
            except RankFailStopError:
                # Peer died: recognize, re-resolve, resend to the new
                # neighbor (it may still need our halo for this step),
                # and keep waiting on whoever now flanks the gap.
                self.retries += 1
                self.mpi.probe_point("halo_retry")
                _recognize_failures(self.comm)
                new_peer = self._neighbor(side)
                if new_peer is None:
                    return None
                if new_peer != peer:
                    self._send_halo(side, step, self._edge_value(side))
                peer = new_peer
                continue
            s, value = req.data
            if s == step:
                return float(value)
            if s >= self.steps:
                # Done marker: the neighbor finished every step.
                state.neighbor_done = True
                return None
            if s > step:
                # The neighbor is one step ahead (it completed the step we
                # had to redo): keep its halo for when we get there and
                # treat the torn step as insulated.
                state.stash[s] = float(value)
                return None
            # s < step: stale duplicate from a repair; ignore.

    def _edge_value(self, side: str) -> float:
        return self._edge_l if side == "L" else self._edge_r

    def exchange(self, step: int, u: np.ndarray) -> tuple[float | None, float | None]:
        """Exchange halos for *step*; returns (left, right) or None = edge."""
        self._edge_l = float(u[0])
        self._edge_r = float(u[-1])
        _recognize_failures(self.comm)
        sent_l = self._neighbor("L")
        sent_r = self._neighbor("R")
        self._send_halo("L", step, self._edge_l)
        self._send_halo("R", step, self._edge_r)
        self.mpi.probe_point("halos_posted")
        halo_l = self._recv_side("L", step, sent_l)
        halo_r = self._recv_side("R", step, sent_r)
        return halo_l, halo_r

    def finish(self) -> None:
        """Announce completion so slower ranks never block on us.

        The marker goes to *every* alive rank, not just the current
        neighbors: a later failure can re-resolve a distant survivor's
        gap onto this (already exited) rank, and it must find the done
        marker waiting.  Same linear-broadcast shape as the ring paper's
        Fig. 11 termination message.
        """
        _recognize_failures(self.comm)
        me = self.comm.rank
        for peer in range(self.comm.size):
            if peer == me or rank_state(self.comm, peer) is not RankState.OK:
                continue
            try:
                self.comm.send((self.steps, 0.0), peer, TAG_HALO)
            except RankFailStopError:
                pass


def heat_main(mpi: SimProcess, cfg: HeatConfig) -> dict[str, Any]:
    """Per-rank main: run ``cfg.steps`` fault-tolerant Jacobi steps."""
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    me, size = comm.rank, comm.size
    n = cfg.cells_per_rank
    # Initial condition: a unit hot bump at the global center cell(s).
    u = np.zeros(n, dtype=float)
    global_cells = n * size
    for j in range(n):
        g = me * n + j
        if g in (global_cells // 2, (global_cells - 1) // 2):
            u[j] = 1.0

    exchanger = _HaloExchanger(mpi, comm, cfg.steps)
    for step in range(cfg.steps):
        if cfg.work_per_step:
            mpi.compute(cfg.work_per_step)
        mpi.probe_point("step_top")
        halo_l, halo_r = exchanger.exchange(step, u)
        # Edges: the true domain boundary gets the Dirichlet value; a gap
        # left by dead ranks (or a briefly out-of-step neighbor) becomes
        # insulated: mirror the edge cell => zero flux into the hole.
        if halo_l is None:
            halo_l = cfg.boundary if me == 0 else float(u[0])
        if halo_r is None:
            halo_r = cfg.boundary if me == size - 1 else float(u[-1])
        padded = np.empty(n + 2, dtype=float)
        padded[0] = halo_l
        padded[1:-1] = u
        padded[-1] = halo_r
        u = padded[1:-1] + cfg.nu * (padded[:-2] - 2 * padded[1:-1] + padded[2:])
        mpi.probe_point("step_done")
    exchanger.finish()

    return {
        "rank": me,
        "field": u.tolist(),
        "halo_retries": exchanger.retries,
        "total_heat": float(u.sum()),
        "steps": cfg.steps,
    }


def make_heat_main(cfg: HeatConfig):
    """Bind a :class:`HeatConfig` into a ``main(mpi)`` callable."""
    return lambda mpi: heat_main(mpi, cfg)
