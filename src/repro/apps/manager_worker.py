"""Fault-tolerant manager/worker farm (paper §IV related work).

Gropp & Lusk's classic observation — a manager/worker program can survive
worker loss by "forgetting" lost workers — predates the run-through
stabilization proposal; this app shows how much simpler the same design
becomes *with* the proposal (the comparison the paper's related-work
section draws):

* the manager (rank 0) deals tasks to workers and collects results;
* a worker death surfaces as ``MPI_ERR_RANK_FAIL_STOP`` on the pending
  result receive; the manager recognizes the failure
  (``comm_validate_clear``), requeues the worker's in-flight task, and
  carries on — no intercommunicator juggling required;
* tasks are idempotent and carry ids, so a reassigned task that was
  already half-computed by the dead worker causes no duplicate results.

The manager assumes it does not fail (the paper's root assumption; the
ring's §III-D shows what lifting it takes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..ft.validate import comm_validate_clear
from ..simmpi.constants import ANY_SOURCE
from ..simmpi.errors import ErrorHandler, RankFailStopError
from ..simmpi.p2p import waitany
from ..simmpi.process import SimProcess

TAG_TASK = 21
TAG_RESULT = 22
TAG_STOP = 23


@dataclass(frozen=True)
class FarmConfig:
    """Parameters of one manager/worker run."""

    num_tasks: int = 20
    #: Virtual compute time per task at a worker.
    work_per_task: float = 1e-6


def _task_result(task_id: int) -> int:
    """The (deterministic, idempotent) work: a toy function of the id."""
    return task_id * task_id + 1


def manager_main(mpi: SimProcess, cfg: FarmConfig) -> dict[str, Any]:
    """Rank 0: deal tasks, harvest results, survive worker deaths."""
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    queue = list(range(cfg.num_tasks))
    in_flight: dict[int, int] = {}  # worker -> task id
    results: dict[int, int] = {}
    reassignments = 0
    workers = set(range(1, comm.size))

    def alive_workers() -> set[int]:
        return {w for w in workers if w not in comm.recognized}

    def deal(worker: int) -> None:
        # Never deal to a recognized-dead worker: the send would be a
        # silent PROC_NULL no-op and the task would be lost in flight.
        # (A dead worker can re-enter here when its final result arrives
        # after its failure was recognized.)
        if worker not in alive_workers():
            return
        if queue and worker not in in_flight:
            task = queue.pop(0)
            try:
                comm.send(("task", task), worker, TAG_TASK)
                in_flight[worker] = task
            except RankFailStopError:
                queue.insert(0, task)

    def handle_death() -> None:
        nonlocal reassignments
        newly = comm.known_failed_comm_ranks() - comm.recognized
        comm_validate_clear(comm, sorted(newly))
        for w in sorted(newly):
            task = in_flight.pop(w, None)
            if task is not None and task not in results:
                queue.insert(0, task)
                reassignments += 1

    for w in sorted(workers):
        deal(w)
    while len(results) < cfg.num_tasks:
        if not alive_workers():
            mpi.abort(-1)  # every worker died: nothing can finish the farm
        req = comm.irecv(source=ANY_SOURCE, tag=TAG_RESULT)
        try:
            waitany([req])
        except RankFailStopError:
            handle_death()
            for w in sorted(alive_workers()):
                deal(w)
            continue
        task, value, worker = req.data
        results[task] = value
        in_flight.pop(worker, None)
        # Deal to every idle alive worker, not just the reporter: the
        # reporter may be a dead worker whose final result was in flight.
        for w in sorted(alive_workers()):
            deal(w)
    for w in sorted(alive_workers()):
        try:
            comm.send(("stop", -1), w, TAG_TASK)
        except RankFailStopError:
            pass
    return {
        "rank": 0,
        "role": "manager",
        "results": results,
        "reassignments": reassignments,
        "dead_workers": sorted(comm.recognized),
    }


def worker_main(mpi: SimProcess, cfg: FarmConfig) -> dict[str, Any]:
    """Ranks 1..n-1: loop on tasks until told to stop."""
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    done = 0
    while True:
        kind, task = comm.recv(source=0, tag=TAG_TASK)[0]
        if kind == "stop":
            break
        mpi.probe_point("task_begin")
        if cfg.work_per_task:
            mpi.compute(cfg.work_per_task)
        mpi.probe_point("task_computed")
        comm.send((task, _task_result(task), comm.rank), 0, TAG_RESULT)
        mpi.probe_point("task_reported")
        done += 1
    return {"rank": comm.rank, "role": "worker", "tasks_done": done}


def make_farm_mains(cfg: FarmConfig, nprocs: int):
    """Per-rank mains: rank 0 manages, everyone else works."""
    mains = [lambda mpi: manager_main(mpi, cfg)]
    mains += [(lambda mpi: worker_main(mpi, cfg)) for _ in range(nprocs - 1)]
    return mains


def expected_results(cfg: FarmConfig) -> dict[int, int]:
    """Ground-truth results for every task id."""
    return {t: _task_result(t) for t in range(cfg.num_tasks)}
