"""ABFT matrix–vector products with parity-block recovery (paper §IV).

The paper's related work traces ABFT to Huang & Abraham's checksum-encoded
matrix operations and Plank's diskless checkpointing.  This app implements
the simplest honest member of that family on the run-through
stabilization substrate:

* the matrix ``A`` is row-block distributed over the compute ranks; one
  extra **parity rank** holds the block-sum ``P = Σ_i A_i`` (a diskless
  checkpoint of the encoding);
* each iteration computes ``y_i = A_i x`` locally and the parity rank
  computes ``y_P = P x = Σ_i y_i`` — the invariant that makes lost blocks
  recoverable;
* when a compute rank dies, the survivors run ``MPI_Comm_validate_all``
  (re-enabling collectives over the shrunken membership), allgather their
  ``y_i`` and the parity ``y_P``, and reconstruct the dead rank's block as
  ``y_lost = y_P − Σ_{alive} y_i`` — algorithm-based recovery, no restart,
  no disk;
* a second failure (or loss of the parity rank itself) exceeds the code's
  strength: survivors detect this and degrade to reporting only their own
  blocks (documented, tested).

Each iteration's ``x`` is derived deterministically from the iteration
number so results are exactly checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..ft.recovery import run_recovery_block
from ..simmpi.errors import ErrorHandler
from ..simmpi.process import SimProcess


@dataclass(frozen=True)
class AbftConfig:
    """Parameters of one ABFT matvec run.

    ``nprocs = compute_ranks + 1``; the parity rank is the highest rank.
    """

    rows_per_rank: int = 4
    cols: int = 8
    iterations: int = 5
    work_per_iter: float = 1e-6
    seed: int = 7


def _block(rank: int, cfg: AbftConfig) -> np.ndarray:
    """Deterministic matrix block for a compute rank."""
    rng = np.random.default_rng(cfg.seed + rank)
    return rng.integers(-3, 4, size=(cfg.rows_per_rank, cfg.cols)).astype(float)


def _x(iteration: int, cfg: AbftConfig) -> np.ndarray:
    rng = np.random.default_rng(cfg.seed * 1000 + iteration)
    return rng.integers(-2, 3, size=cfg.cols).astype(float)


def reference_result(cfg: AbftConfig, nprocs: int, iteration: int) -> dict[int, list[float]]:
    """Ground truth ``y_i`` for every compute rank at one iteration."""
    x = _x(iteration, cfg)
    return {
        r: (_block(r, cfg) @ x).tolist() for r in range(nprocs - 1)
    }


def abft_main(mpi: SimProcess, cfg: AbftConfig) -> dict[str, Any]:
    """Per-rank main: iterate matvecs, recover lost blocks via parity."""
    comm = mpi.comm_world
    comm.set_errhandler(ErrorHandler.ERRORS_RETURN)
    me, size = comm.rank, comm.size
    parity_rank = size - 1
    is_parity = me == parity_rank
    if is_parity:
        blk = sum(_block(r, cfg) for r in range(size - 1))
    else:
        blk = _block(me, cfg)

    recoveries = 0
    degraded = False
    results: list[dict[str, Any]] = []

    for it in range(cfg.iterations):
        if cfg.work_per_iter:
            mpi.compute(cfg.work_per_iter)
        mpi.probe_point("iter_top")
        x = _x(it, cfg)
        y_mine = blk @ x
        mpi.probe_point("computed")

        # Agreed recovery block: the retry decision is a pure function of
        # the consensus output, so every rank stays aligned on which
        # allgather call is which (see repro/ft/recovery.py for why the
        # naive try/validate/retry loop deadlocks).
        gathered = run_recovery_block(
            comm, lambda: comm.allgather((me, y_mine.tolist()))
        )

        blocks: dict[int, np.ndarray] = {}
        parity: np.ndarray | None = None
        for item in gathered:
            if item is None:
                continue
            rank, y = item
            if rank == parity_rank:
                parity = np.asarray(y)
            else:
                blocks[rank] = np.asarray(y)

        lost = [r for r in range(size - 1) if r not in blocks]
        if lost:
            if parity is not None and len(lost) == 1:
                # The parity identity: y_lost = y_P - sum(alive blocks).
                blocks[lost[0]] = parity - sum(blocks.values())
                recoveries += 1
                mpi.probe_point("recovered")
            else:
                degraded = True  # beyond the code's strength
        results.append(
            {
                "iteration": it,
                "blocks": {r: b.tolist() for r, b in sorted(blocks.items())},
                "recovered": list(lost) if lost and not degraded else [],
            }
        )
        mpi.probe_point("iter_done")

    return {
        "rank": me,
        "role": "parity" if is_parity else "compute",
        "results": results,
        "recoveries": recoveries,
        "degraded": degraded,
    }


def make_abft_main(cfg: AbftConfig):
    """Bind an :class:`AbftConfig` into a ``main(mpi)`` callable."""
    return lambda mpi: abft_main(mpi, cfg)
