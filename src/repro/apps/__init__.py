"""``repro.apps`` — domain applications built on the public FT ring API.

Three workloads demonstrating the paper's communication-level lessons
beyond the ring example itself:

* :mod:`~repro.apps.heat1d` — 1-D heat diffusion with fault-tolerant halo
  exchange (natural-fault-tolerance degradation over dead subdomains).
* :mod:`~repro.apps.ring_allreduce` — vector allreduce over the FT ring
  machinery, with idempotent (contributor-set guarded) accumulation.
* :mod:`~repro.apps.manager_worker` — a Gropp–Lusk style task farm that
  requeues the tasks of dead workers via the validate API.
* :mod:`~repro.apps.abft_matvec` — Huang–Abraham style ABFT matrix–vector
  products with a parity rank: lost result blocks are reconstructed
  algebraically after a collective validate.
"""

from .abft_matvec import AbftConfig, abft_main, make_abft_main, reference_result

from .heat1d import HeatConfig, heat_main, make_heat_main
from .manager_worker import (
    FarmConfig,
    expected_results,
    make_farm_mains,
    manager_main,
    worker_main,
)
from .ring_allreduce import (
    AllreduceConfig,
    allreduce_main,
    expected_sum,
    make_allreduce_main,
)

__all__ = [
    "AbftConfig",
    "AllreduceConfig",
    "FarmConfig",
    "HeatConfig",
    "abft_main",
    "allreduce_main",
    "expected_results",
    "expected_sum",
    "heat_main",
    "make_allreduce_main",
    "make_farm_mains",
    "make_abft_main",
    "make_heat_main",
    "manager_main",
    "reference_result",
    "worker_main",
]
