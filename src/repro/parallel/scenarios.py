"""Picklable scenario and invariant specs for the bundled workloads.

The CLI and the benchmarks used to describe scenarios as closures; a
process-pool sweep needs descriptions that *pickle*.  These dataclasses
are that serialization layer: plain-data fields in, ``(Simulation,
main)`` out, built fresh inside whichever process runs the job.

Enum-valued knobs are stored as their string values so a pickled spec
stays readable and stable across refactors of the enum classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core import (
    RingConfig,
    RingVariant,
    Termination,
    make_ring_main,
    make_rootft_main,
)
from ..simmpi import Simulation
from .jobs import Invariant


@dataclass(frozen=True)
class RingScenario:
    """Picklable factory for the paper's ring in any design variant.

    Calling the instance returns a fresh ``(Simulation, main)`` pair —
    the :data:`~repro.parallel.jobs.ScenarioFactory` contract used by
    :func:`repro.faults.run_campaign`, :func:`repro.faults.explore`, and
    :class:`repro.parallel.SimJob`.
    """

    nprocs: int = 8
    iters: int = 6
    variant: str = RingVariant.FT_MARKER.value
    termination: str = Termination.VALIDATE_ALL.value
    rootft: bool = False
    seed: int = 0
    detection_latency: float = 0.0
    work_per_iter: float = 0.0

    def __call__(self) -> tuple[Simulation, Any]:
        cfg = RingConfig(
            max_iter=self.iters,
            variant=RingVariant(self.variant),
            termination=Termination(self.termination),
            work_per_iter=self.work_per_iter,
        )
        main = make_rootft_main(cfg) if self.rootft else make_ring_main(cfg)
        sim = Simulation(
            nprocs=self.nprocs,
            seed=self.seed,
            detection_latency=self.detection_latency,
        )
        return sim, main


@dataclass(frozen=True)
class StandardRingInvariants:
    """Picklable stand-in for :func:`repro.analysis.standard_ring_invariants`.

    The underlying battery contains closures (which cannot pickle), so
    this spec carries only the parameters and rebuilds the battery inside
    the worker — the *invariant factory* form of
    :data:`repro.parallel.jobs.InvariantSpec`.
    """

    max_iter: int
    nprocs: int
    allow_root_loss: bool = False

    def __call__(self) -> list[Invariant]:
        from ..analysis import standard_ring_invariants

        return standard_ring_invariants(
            self.max_iter, self.nprocs, allow_root_loss=self.allow_root_loss
        )
