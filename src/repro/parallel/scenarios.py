"""Picklable scenario and invariant specs for the bundled workloads.

The CLI and the benchmarks used to describe scenarios as closures; a
process-pool sweep needs descriptions that *pickle*.  These dataclasses
are that serialization layer: plain-data fields in, ``(Simulation,
main)`` out, built fresh inside whichever process runs the job.

Enum-valued knobs are stored as their string values so a pickled spec
stays readable and stable across refactors of the enum classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core import (
    RingConfig,
    RingVariant,
    Termination,
    make_ring_main,
    make_rootft_main,
)
from ..simmpi import Simulation
from .jobs import Invariant


@dataclass(frozen=True)
class RingScenario:
    """Picklable factory for the paper's ring in any design variant.

    Calling the instance returns a fresh ``(Simulation, main)`` pair —
    the :data:`~repro.parallel.jobs.ScenarioFactory` contract used by
    :func:`repro.faults.run_campaign`, :func:`repro.faults.explore`, and
    :class:`repro.parallel.SimJob`.
    """

    nprocs: int = 8
    iters: int = 6
    variant: str = RingVariant.FT_MARKER.value
    termination: str = Termination.VALIDATE_ALL.value
    rootft: bool = False
    seed: int = 0
    detection_latency: float = 0.0
    work_per_iter: float = 0.0
    #: Recovery protocol family (see :mod:`repro.protocols`): ``"rts"``
    #: runs the paper's ring; the other families share the same logical
    #: workload but recover differently.  ``nprocs`` stays the *logical*
    #: ring size — replication runs ``2 * nprocs`` physical ranks and
    #: partial restart ``nprocs + spares``.  The field participates in
    #: the run-cache key (``repro.cache.keys`` hashes every spec field),
    #: so an RTS outcome is never served for another protocol.
    protocol: str = "rts"
    #: Spare ranks for ``protocol="partial_restart"`` (ignored otherwise).
    spares: int = 2

    def __post_init__(self) -> None:
        from ..protocols import PROTOCOLS

        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r} (known: {PROTOCOLS})"
            )
        if self.rootft and self.protocol != "rts":
            raise ValueError("rootft applies to the rts protocol only")

    def __call__(self) -> tuple[Simulation, Any]:
        if self.protocol != "rts":
            from ..protocols import ProtocolRingConfig, ring_mains

            nproc, main = ring_mains(
                self.protocol,
                ProtocolRingConfig(
                    max_iter=self.iters, work_per_iter=self.work_per_iter
                ),
                self.nprocs,
                spares=self.spares,
            )
            sim = Simulation(
                nprocs=nproc,
                seed=self.seed,
                detection_latency=self.detection_latency,
            )
            return sim, main
        cfg = RingConfig(
            max_iter=self.iters,
            variant=RingVariant(self.variant),
            termination=Termination(self.termination),
            work_per_iter=self.work_per_iter,
        )
        main = make_rootft_main(cfg) if self.rootft else make_ring_main(cfg)
        sim = Simulation(
            nprocs=self.nprocs,
            seed=self.seed,
            detection_latency=self.detection_latency,
        )
        return sim, main


#: App name -> builder, so :class:`AppScenario` stays a plain-data spec.
_APP_BUILDERS = {
    "heat1d": "_build_heat1d",
    "ring_allreduce": "_build_ring_allreduce",
    "abft_matvec": "_build_abft_matvec",
    "manager_worker": "_build_manager_worker",
}


@dataclass(frozen=True)
class AppScenario:
    """Picklable factory for the bundled domain applications.

    The same :data:`~repro.parallel.jobs.ScenarioFactory` contract as
    :class:`RingScenario`, covering the four workloads under
    :mod:`repro.apps`.  ``size`` and ``steps`` map onto each app's
    natural knobs:

    =================  =======================  ==================
    app                ``size``                 ``steps``
    =================  =======================  ==================
    heat1d             cells per rank           diffusion steps
    ring_allreduce     vector length            allreduce rounds
    abft_matvec        rows per rank            matvec iterations
    manager_worker     number of tasks          (unused)
    =================  =======================  ==================
    """

    app: str
    nprocs: int = 6
    size: int = 8
    steps: int = 5
    seed: int = 0
    detection_latency: float = 0.0
    #: The bundled apps implement their fault tolerance natively in RTS
    #: terms (validate / recognized-failure semantics); the alternative
    #: protocol families of :mod:`repro.protocols` are ring-workload
    #: strategies and do not retrofit onto them.  The field exists so app
    #: and ring specs share one knob vocabulary (and one cache-key
    #: surface), but only ``"rts"`` is accepted.
    protocol: str = "rts"

    def __post_init__(self) -> None:
        if self.app not in _APP_BUILDERS:
            raise ValueError(
                f"unknown app {self.app!r} (known: {sorted(_APP_BUILDERS)})"
            )
        if self.protocol != "rts":
            raise ValueError(
                f"app scenarios support protocol='rts' only, got "
                f"{self.protocol!r}; the alternative families in "
                "repro.protocols are ring strategies"
            )

    def __call__(self) -> tuple[Simulation, Any]:
        sim = Simulation(
            nprocs=self.nprocs,
            seed=self.seed,
            detection_latency=self.detection_latency,
        )
        return sim, getattr(self, _APP_BUILDERS[self.app])()

    def _build_heat1d(self) -> Any:
        from ..apps import HeatConfig, make_heat_main

        return make_heat_main(
            HeatConfig(cells_per_rank=self.size, steps=self.steps)
        )

    def _build_ring_allreduce(self) -> Any:
        from ..apps import AllreduceConfig, make_allreduce_main

        return make_allreduce_main(
            AllreduceConfig(vector_len=self.size, rounds=self.steps)
        )

    def _build_abft_matvec(self) -> Any:
        from ..apps import AbftConfig, make_abft_main

        return make_abft_main(
            AbftConfig(rows_per_rank=self.size, iterations=self.steps)
        )

    def _build_manager_worker(self) -> Any:
        from ..apps import FarmConfig, make_farm_mains

        return make_farm_mains(FarmConfig(num_tasks=self.size), self.nprocs)


@dataclass(frozen=True)
class StandardRingInvariants:
    """Picklable stand-in for :func:`repro.analysis.standard_ring_invariants`.

    The underlying battery contains closures (which cannot pickle), so
    this spec carries only the parameters and rebuilds the battery inside
    the worker — the *invariant factory* form of
    :data:`repro.parallel.jobs.InvariantSpec`.
    """

    max_iter: int
    nprocs: int
    allow_root_loss: bool = False

    def __call__(self) -> list[Invariant]:
        from ..analysis import standard_ring_invariants

        return standard_ring_invariants(
            self.max_iter, self.nprocs, allow_root_loss=self.allow_root_loss
        )


@dataclass(frozen=True)
class GenericInvariants:
    """Workload-agnostic battery: no hang, and every survivor finishes.

    The fuzzer's default classification for the domain apps, whose
    correctness contracts beyond liveness are app-specific (and live in
    their own test modules).
    """

    def __call__(self) -> list[Invariant]:
        from ..analysis import no_hang, survivors_done

        return [no_hang, survivors_done]
