"""Sweep runners: execute batches of independent simulation jobs.

A *job* is any picklable zero-argument callable returning a picklable
value (see :mod:`repro.parallel.jobs` for the standard job shapes).  A
:class:`SweepRunner` executes a batch of jobs and returns their results
**in submission order** — never in completion order — so a parallel sweep
is a drop-in replacement for a serial loop: because every job is an
independent deterministic simulation, the merged result list is
bit-identical to what the serial loop would have produced.

Three implementations share the interface:

* :class:`SerialRunner` — runs the jobs in-process, in order.  Zero
  overhead, no picklability requirement; the reference semantics.
* :class:`ProcessPoolRunner` — fans the jobs out over a
  ``concurrent.futures.ProcessPoolExecutor`` with chunked scheduling,
  a per-job wall-clock timeout, and bounded retries for wedged or
  crashed workers.  Jobs (and their results) must be picklable:
  module-level functions or dataclass instances, not bare closures.
* :class:`repro.parallel.remote.RemoteRunner` — the same scheduling
  loop over a fleet of socket workers (``repro worker serve``).

The pooled and remote runners share :class:`TransportRunner`, which
owns the scheduling loop and delegates chunk execution to a pluggable
:class:`repro.parallel.transport.Transport`.

Timeout/retry semantics (documented contract, tested in
``tests/test_parallel.py``):

* ``timeout`` is a per-job budget in wall-clock seconds.  A scheduling
  round is abandoned when its jobs collectively exceed their cumulative
  budget; the unfinished chunks are retried on a fresh pool (wedged
  worker processes are terminated, not awaited).
* each chunk is retried at most ``retries`` times; after that a
  :class:`SweepError` is raised naming the job indices that never
  completed.  A deterministic job that wedges will wedge on every
  attempt — retries exist for infrastructure failures (a worker killed
  by the OS, a broken pool), not to paper over simulation hangs.
* a job that *raises* is an application error, not an infrastructure
  failure: the exception propagates to the caller immediately and is
  never retried (deterministic jobs would fail identically again).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..obs import registry as metrics
from ..obs.spans import SpanRecorder, active as spans_active, outcome_label
from .transport import LocalPoolTransport, Transport, run_chunk

#: A sweep job: picklable, zero-argument, returns a picklable result.
SweepJob = Callable[[], Any]

_UNSET = object()


class SweepError(RuntimeError):
    """Jobs could not be completed after exhausting all retries.

    Attributes
    ----------
    indices:
        Submission-order indices of the jobs that never produced a result.
    """

    def __init__(self, message: str, indices: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.indices = list(indices)


#: Default jobs-per-window for :meth:`SweepRunner.run_stream` — big
#: enough to amortize pool IPC and batched cache lookups, small enough
#: that a 10^6-job campaign never holds more than one window of jobs
#: and results in memory.
DEFAULT_STREAM_WINDOW = 1024


class SweepRunner:
    """Executes a batch of independent jobs, results in submission order.

    After :meth:`run` returns, :attr:`job_retries` holds one int per job
    (submission order): how many times the chunk carrying that job was
    re-submitted.  Always zero for serial runs; the telemetry layer
    (:mod:`repro.obs.telemetry`) reads it to attribute infrastructure
    retries to jobs.  It is a per-*instance* list — two runners never
    alias each other's retry accounting (regression-tested).
    """

    def __init__(self) -> None:
        #: Per-job retry counts of the most recent :meth:`run` (see above).
        self.job_retries: list[int] = []

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:  # pragma: no cover
        raise NotImplementedError

    def run_stream(
        self, jobs: Iterable[SweepJob], *, window: int | None = None
    ) -> Iterator[Any]:
        """Incremental :meth:`run`: yield results in submission order
        while consuming *jobs* lazily, at most *window* jobs in flight.

        Same semantics as :meth:`run` — submission-order results,
        chunking/timeout/retries per window, application errors raised
        at the offending result's position — but neither the job list
        nor the result list is ever materialized beyond one window, so
        a 10^6-config campaign runs in O(window) memory.

        :attr:`job_retries` grows as results are yielded (one entry per
        job yielded so far) and is complete when the iterator is
        exhausted, so streamed telemetry sees the same counts as a
        materialized run.
        """
        window = int(window) if window is not None else self._stream_window()
        if window < 1:
            raise ValueError("window must be >= 1")
        it = iter(jobs)
        retries: list[int] = []
        self.job_retries = retries
        while True:
            batch = list(islice(it, window))
            if not batch:
                return
            recorder = spans_active()
            if recorder is not None:
                # Job spans must carry campaign-global indices, but
                # run() only sees this window; the offset bridges them.
                recorder.index_offset = len(retries)
            results = self.run(batch)
            # run() replaced job_retries with this batch's counts; fold
            # them into the cumulative stream-wide list.
            retries.extend(self.job_retries)
            self.job_retries = retries
            yield from results

    def _stream_window(self) -> int:
        """Default in-flight window for :meth:`run_stream`."""
        return DEFAULT_STREAM_WINDOW

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Convenience: run ``fn`` once per item (``fn`` must be picklable
        for pooled runners; use a module-level function or partial)."""
        return self.run([_BoundJob(fn, item) for item in items])


@dataclass(frozen=True)
class _BoundJob:
    """Picklable ``fn(item)`` thunk used by :meth:`SweepRunner.map`."""

    fn: Callable[[Any], Any]
    item: Any

    def __call__(self) -> Any:
        return self.fn(self.item)


class SerialRunner(SweepRunner):
    """Run every job in-process, in submission order (reference runner)."""

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:
        self.job_retries = [0] * len(jobs)
        recorder = spans_active()
        if recorder is None:
            return [job() for job in jobs]
        return self._run_traced(recorder, jobs)

    @staticmethod
    def _run_traced(
        recorder: SpanRecorder, jobs: Sequence[SweepJob]
    ) -> list[Any]:
        base = recorder.index_offset
        values = []
        with recorder.span(
            "sweep.run", "sweep", attrs={"jobs": len(jobs)}
        ) as root:
            for offset, job in enumerate(jobs):
                with recorder.span(
                    "job", "job", parent=root.id,
                    attrs={"index": base + offset},
                ) as span:
                    value = job()
                    span.attrs["outcome"] = outcome_label(value)
                values.append(value)
        return values

    def run_stream(
        self, jobs: Iterable[SweepJob], *, window: int | None = None
    ) -> Iterator[Any]:
        # Fully lazy: one job in memory at a time, no window needed.
        retries: list[int] = []
        self.job_retries = retries
        for job in jobs:
            recorder = spans_active()
            if recorder is None:
                result = job()
            else:
                with recorder.span(
                    "job", "job", attrs={"index": len(retries)}
                ) as span:
                    result = job()
                    span.attrs["outcome"] = outcome_label(result)
            retries.append(0)
            yield result


# Back-compat alias: the worker-side chunk entry point moved to the
# transport seam (it is shared by the pool and the socket workers).
_run_chunk = run_chunk


class TransportRunner(SweepRunner):
    """The generic chunked scheduling loop over a pluggable transport.

    Subclasses provide ``chunk_size`` / ``timeout`` / ``retries``
    attributes and a :meth:`_transport` factory; this class owns the
    semantics documented in the module docstring — chunking, the
    cumulative timeout budget, bounded chunk retries with deterministic
    attribution, immediate propagation of application errors — so every
    transport (in-process pool, socket fleet) behaves identically to
    the pinned :class:`ProcessPoolRunner` contract.
    """

    chunk_size: int | None
    timeout: float | None
    retries: int

    def _transport(self) -> Transport:  # pragma: no cover
        raise NotImplementedError

    def _auto_chunk(self, n_jobs: int, width: int) -> int:
        """Default chunk size: roughly four chunks per worker, balancing
        dispatch overhead against load balance (transports may cap it)."""
        return max(1, math.ceil(n_jobs / (width * 4)))

    # -- scheduling --------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> list[Any]:
        jobs = list(jobs)
        if not jobs:
            return []
        recorder = spans_active()
        if recorder is None:
            return self._run(jobs, None)
        with recorder.span("sweep.run", "sweep", attrs={"jobs": len(jobs)}):
            return self._run(jobs, recorder)

    def _run(
        self, jobs: list[SweepJob], recorder: SpanRecorder | None
    ) -> list[Any]:
        transport = self._transport()
        width = max(1, transport.parallelism())
        chunk = self.chunk_size or self._auto_chunk(len(jobs), width)
        #: (start_index, jobs_slice) descriptors; a chunk is the retry unit.
        chunks = [
            (i, jobs[i : i + chunk]) for i in range(0, len(jobs), chunk)
        ]
        results: list[Any] = [_UNSET] * len(jobs)
        attempts = {start: 0 for start, _ in chunks}
        pending = chunks
        while pending:
            # Sort by start index: _run_round collects failures in
            # completion order (effectively arbitrary), and both the
            # retry submissions and the exhausted-chunk raise below must
            # not depend on that order for attribution to be
            # deterministic.
            pending = sorted(
                self._run_round(transport, width, pending, results, recorder)
            )
            if pending:
                metrics.SWEEP_RETRIES.inc(len(pending))
            for start, part in pending:
                attempts[start] += 1
                if attempts[start] > self.retries:
                    indices = [
                        start + k
                        for k in range(len(part))
                        if results[start + k] is _UNSET
                    ]
                    raise SweepError(
                        f"{len(indices)} job(s) did not complete after "
                        f"{self.retries} retr{'y' if self.retries == 1 else 'ies'} "
                        f"(indices {indices}); a deterministic job that "
                        f"exceeds its timeout will do so on every attempt",
                        indices=indices,
                    )
        self.job_retries = [0] * len(jobs)
        for start, part in chunks:
            for k in range(len(part)):
                self.job_retries[start + k] = attempts[start]
        return results

    def _run_round(
        self,
        transport: Transport,
        width: int,
        chunks: list[tuple[int, list[SweepJob]]],
        results: list[Any],
        recorder: SpanRecorder | None = None,
    ) -> list[tuple[int, list[SweepJob]]]:
        """Submit *chunks* on a fresh round; fill *results*; return the
        chunks that must be retried (timed out or lost in transit)."""
        metrics.SWEEP_ROUNDS.inc()
        round_span = None
        if recorder is not None:
            round_span = recorder.begin(
                "round.run", "round",
                attrs={"chunks": len(chunks),
                       "jobs": sum(len(part) for _s, part in chunks)},
            )
        round_ = transport.open_round()
        try:
            for start, part in chunks:
                if recorder is not None:
                    recorder.chunk_begin(start, len(part))
                round_.submit(start, part)
            deadline_at = None
            if self.timeout is not None:
                total = sum(len(part) for _s, part in chunks)
                # Cumulative budget: jobs run `width` at a time, so the
                # round as a whole gets ceil(total/width) job-budgets
                # (plus one for scheduling slack).
                budget = self.timeout * (math.ceil(total / width) + 1)
                deadline_at = time.monotonic() + budget
            failed: list[tuple[int, list[SweepJob]]] = []
            while round_.pending():
                remaining = None
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:  # budget exhausted, jobs still running
                        failed.extend(
                            self._lose(round_.pending(), recorder)
                        )
                        round_.abandon()
                        return failed
                for start, part, values in round_.wait(remaining):
                    if values is None:
                        failed.append((start, part))
                        if recorder is not None:
                            recorder.chunk_end(start, "lost")
                        metrics.SWEEP_CHUNKS.inc(status="lost")
                    else:
                        for k, value in enumerate(values):
                            results[start + k] = value
                        if recorder is not None:
                            dispatch = recorder.chunk_end(start, "done")
                            if dispatch is not None:
                                recorder.chunk_merge(dispatch)
                        metrics.SWEEP_CHUNKS.inc(status="done")
                        metrics.SWEEP_JOBS.inc(len(values))
                if round_.broken:
                    # No capacity left; everything unfinished is lost.
                    failed.extend(self._lose(round_.pending(), recorder))
                    round_.abandon()
                    return failed
            round_.close()
            return failed
        except BaseException:
            # Application errors and interrupts alike: terminate wedged
            # workers instead of awaiting them, then propagate.
            round_.abandon()
            raise
        finally:
            if round_span is not None:
                recorder.end(round_span)

    @staticmethod
    def _lose(
        chunks: list[tuple[int, list[SweepJob]]],
        recorder: SpanRecorder | None,
    ) -> list[tuple[int, list[SweepJob]]]:
        """Account chunks abandoned in-flight (timeout/broken round)."""
        if chunks:
            metrics.SWEEP_CHUNKS.inc(len(chunks), status="lost")
        if recorder is not None:
            for start, _part in chunks:
                recorder.chunk_end(start, "lost")
        return chunks


@dataclass
class ProcessPoolRunner(TransportRunner):
    """Fan jobs out across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``workers=1`` still uses a pool (one
        worker) — useful for verifying that jobs survive the process
        boundary; use :class:`SerialRunner` for a true in-process run.
    chunk_size:
        Jobs per pool task.  ``None`` auto-chunks to roughly four tasks
        per worker, balancing IPC overhead against load balance.
    timeout:
        Per-job wall-clock budget in seconds (``None``: no timeout).
    retries:
        How many times a failed/timed-out chunk is re-submitted on a
        fresh pool before :class:`SweepError` is raised.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  ``None`` picks ``"fork"`` where available
        (cheap, inherits imported modules) and the platform default
        elsewhere.
    """

    workers: int
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    mp_context: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        # The dataclass-generated __init__ bypasses SweepRunner.__init__.
        self.job_retries = []

    def _stream_window(self) -> int:
        # Keep every worker busy across a window: explicit chunk sizes
        # scale the window, auto-chunking gets the shared default.
        if self.chunk_size is not None:
            return max(DEFAULT_STREAM_WINDOW, self.chunk_size * self.workers * 4)
        return max(DEFAULT_STREAM_WINDOW, self.workers * 128)

    # -- transport ---------------------------------------------------------

    def _transport(self) -> Transport:
        return LocalPoolTransport(workers=self.workers, mp_context=self.mp_context)


def make_runner(
    workers: int | None = None,
    *,
    chunk_size: int | None = None,
    timeout: float | None = None,
    retries: int = 1,
    mp_context: str | None = None,
    cache: Any = None,
    addresses: Any = None,
) -> SweepRunner:
    """Build the right runner for a worker count.

    ``workers`` of ``None``, ``0`` or ``1`` gives the in-process
    :class:`SerialRunner`; anything larger gives a
    :class:`ProcessPoolRunner`.  (Construct :class:`ProcessPoolRunner`
    directly to force a single-worker pool.)  ``addresses`` (a
    ``"host:port,..."`` string or ``(host, port)`` tuples) selects the
    distributed :class:`~repro.parallel.remote.RemoteRunner` instead —
    ``workers`` is ignored; parallelism is the fleet size.

    ``cache`` (``True`` for the default directory, a path, or a
    ``repro.cache.RunCache``) wraps either runner in a
    ``repro.cache.CachedRunner``: jobs implementing the cache contract
    (see :mod:`repro.parallel.jobs`) are answered from the
    content-addressed store, everything else executes as usual.  Serial
    and pooled runners share the same store and the same
    submission-order merge, so a cached sweep's report is byte-identical
    to an uncached one.  The remote runner instead performs lookups
    *worker-side* (see ``RemoteRunner.attach_cache``) — same store,
    same counters, but warm entries never cross the wire.
    """
    runner: SweepRunner
    if addresses:
        from .remote import RemoteRunner

        runner = RemoteRunner(
            addresses=addresses,
            chunk_size=chunk_size,
            timeout=timeout,
            retries=retries,
        )
        if cache is not None and cache is not False:
            runner.attach_cache(cache)
        return runner
    if workers is None or workers <= 1:
        runner = SerialRunner()
    else:
        runner = ProcessPoolRunner(
            workers=workers,
            chunk_size=chunk_size,
            timeout=timeout,
            retries=retries,
            mp_context=mp_context,
        )
    if cache is not None and cache is not False:
        # Imported lazily: repro.cache.runner imports this module.
        from ..cache import CachedRunner, RunCache

        runner = CachedRunner(cache=RunCache.at(cache), inner=runner)
    return runner
